//! Example 4.3: subtree pruning, and its composition with magic sets.
//!
//! On full bottom-up evaluation of an IC-consistent database, conditional
//! pruning cannot reject anything (the IC guarantees the pruned pattern
//! never materializes) — the win appears when the *query* binds the
//! pruning condition: asking for the descendants of a person aged ≤ 50
//! makes the committed (≥ 3 level) chain statically dead, so goal-directed
//! evaluation explores a bounded neighbourhood. This mirrors the paper's
//! §6 remark that pushing semantics inside recursion is the semantic
//! analogue of magic sets — and the two compose.
//!
//! ```sh
//! cargo run --example genealogy_pruning
//! ```

use semrec::core::optimizer::Optimizer;
use semrec::datalog::parser::parse_atom;
use semrec::datalog::{Term, Value};
use semrec::engine::magic::evaluate_query;
use semrec::engine::{evaluate, Strategy};
use semrec::gen::{genealogy, parse_scenario};

fn main() {
    let scenario = parse_scenario(genealogy::PROGRAM);
    println!("=== program ===\n{}", scenario.program);
    for ic in &scenario.constraints {
        println!("{ic}\n");
    }

    let plan = Optimizer::new(&scenario.program)
        .with_constraints(&scenario.constraints)
        .run()
        .expect("optimizes");
    for a in &plan.applied {
        println!("applied {}: {} [{}]", a.kind, a.residue, a.note);
    }

    let db = genealogy::generate(&genealogy::GenealogyParams {
        families: 6,
        depth: 6,
        branching: 2,
        seed: 7,
    });
    for ic in &scenario.constraints {
        assert!(db.satisfies(ic));
    }
    println!("\npar facts: {}", db.count("par"));

    // Full evaluation: equivalent answers (pruning is a no-op here because
    // the data already satisfies the IC — the honest negative result).
    let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
    let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap();
    assert_eq!(
        base.relation("anc").unwrap().sorted_tuples(),
        opt.relation("anc").unwrap().sorted_tuples()
    );
    println!(
        "full evaluation:  anc = {} tuples both ways (original rows {} / optimized rows {})",
        base.relation("anc").unwrap().len(),
        base.stats.rows_scanned,
        opt.stats.rows_scanned,
    );

    // Goal-directed evaluation with the ancestor's age bound: a young
    // ancestor (≤ 50) makes the pruned chain dead.
    println!(
        "\n{:>12} {:>14} {:>14} {:>16}",
        "bound age", "orig rows", "pruned rows", "answers"
    );
    let ages: Vec<i64> = {
        // Pick one young and one old parent age present in the data.
        let rel = db.get(semrec::datalog::Pred::new("par")).unwrap();
        let mut young = None;
        let mut old = None;
        for t in rel.iter() {
            if let Value::Int(a) = t[3] {
                if a <= 50 && young.is_none() {
                    young = Some(a);
                }
                if a > 100 && old.is_none() {
                    old = Some(a);
                }
            }
        }
        vec![young.expect("young parent"), old.expect("old ancestor")]
    };
    for age in ages {
        let mut goal = parse_atom("anc(X, Xa, Y, Ya)").unwrap();
        goal.args[3] = Term::Const(Value::Int(age));
        let (a1, r1) = evaluate_query(&db, &plan.rectified, &goal, Strategy::SemiNaive).unwrap();
        let (a2, r2) = evaluate_query(&db, &plan.program, &goal, Strategy::SemiNaive).unwrap();
        assert_eq!(a1, a2, "magic answers equal at age {age}");
        println!(
            "{:>12} {:>14} {:>14} {:>16}",
            age,
            r1.stats.rows_scanned,
            r2.stats.rows_scanned,
            a1.len()
        );
    }
    println!("\n(answers equal at every setting ✓)");
}
