//! Example 5.1: intelligent query answering via semantic optimization
//! machinery (§5, after Motro & Yuan).
//!
//! ```sh
//! cargo run --example intelligent_answers
//! ```

use semrec::datalog::parser::parse_unit;
use semrec::iqa::{answer, parse_describe};

fn main() {
    // The deductive database of Example 5.1 (GPA scaled ×10 to stay in
    // integers: 3.8 → 38).
    let source = "
        honors(Stud) :- transcript(Stud, Major, Cred, Gpa), Cred >= 30, Gpa >= 38.
        honors(Stud) :- transcript(Stud, Major, Cred, Gpa), Gpa >= 38, exceptional(Stud).
        exceptional(Stud) :- publication(Stud, P), appears(P, Jl), reputed(Jl).
        honors(Stud) :- graduated(Stud, College), topten(College).
    ";
    let program = parse_unit(source).expect("parses").program();
    println!("=== knowledge base ===\n{program}");

    // "Describe honors students given that they are in computer science,
    //  come from one of the top ten colleges, and play chess."
    let queries = [
        "describe honors(Stud) where major(Stud, cs), graduated(Stud, College), \
         topten(College), hobby(Stud, chess).",
        "describe honors(Stud) where transcript(Stud, M, C, G), G >= 38.",
        "describe honors(Stud).",
    ];

    for q in queries {
        println!("---\n{q}");
        let query = parse_describe(q).expect("query parses");
        let a = answer(&program, &query, 4);
        println!("{a}");
    }
}
