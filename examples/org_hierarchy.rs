//! Example 4.1: atom elimination on the organizational database.
//!
//! The IC "executive-ranked bosses are experienced" makes the
//! `experienced(U)` subgoal redundant in proof trees where, four levels
//! down, the same person appears as an executive boss. The optimizer finds
//! the residue w.r.t. the sequence r2·r2·r2·r2 and deletes the atom from
//! the committed chain, guarded by the `R = executive` condition at the
//! level where `R` is visible.
//!
//! ```sh
//! cargo run --example org_hierarchy
//! ```

use semrec::core::optimizer::Optimizer;
use semrec::engine::{evaluate, Strategy};
use semrec::gen::{org, parse_scenario};

fn main() {
    let scenario = parse_scenario(org::PROGRAM);
    println!("=== program ===\n{}", scenario.program);
    for ic in &scenario.constraints {
        println!("{ic}\n");
    }

    let plan = Optimizer::new(&scenario.program)
        .with_constraints(&scenario.constraints)
        .run()
        .expect("optimizes");
    for a in &plan.applied {
        println!("applied {}: {} [{}]", a.kind, a.residue, a.note);
    }
    println!(
        "isolated sequence for triple: {:?}\n",
        plan.chosen[&semrec::datalog::Pred::new("triple")]
    );

    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>16}",
        "employees", "exec_frac", "orig probes", "opt probes", "experienced probes saved"
    );
    for &frac in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        let db = org::generate(&org::OrgParams {
            employees: 400,
            executive_frac: frac,
            ..org::OrgParams::default()
        });
        for ic in &scenario.constraints {
            assert!(db.satisfies(ic));
        }
        let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
        let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap();
        assert_eq!(
            base.relation("triple").unwrap().sorted_tuples(),
            opt.relation("triple").unwrap().sorted_tuples(),
            "equivalence at executive_frac {frac}"
        );
        let saved = base.stats.probes as i64 - opt.stats.probes as i64;
        println!(
            "{:>10} {:>12.2} {:>14} {:>14} {:>16}",
            400, frac, base.stats.probes, opt.stats.probes, saved
        );
    }
    println!("\n(answers equal at every setting ✓)");
}
