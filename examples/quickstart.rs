//! Quickstart: parse a recursive program with an integrity constraint,
//! optimize it, and evaluate both versions on a small database.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use semrec::core::optimizer::Optimizer;
use semrec::datalog::parser::parse_unit;
use semrec::engine::{evaluate, Database, Strategy};

fn main() {
    // Example 4.3 from the paper: ancestors with ages, and the constraint
    // that people of age ≤ 50 have no 3 generations of descendants.
    let source = "
        anc(X, Xa, Y, Ya) :- par(X, Xa, Y, Ya).
        anc(X, Xa, Y, Ya) :- anc(X, Xa, Z, Za), par(Z, Za, Y, Ya).

        ic ic1: Ya <= 50, par(Z, Za, Y, Ya), par(Z1, Z1a, Z, Za),
                par(Z2, Z2a, Z1, Z1a) -> .

        % A small consistent family: ages grow by ~30 per generation.
        par(dan, 20, carl, 48).
        par(carl, 48, bob, 77).
        par(bob, 77, alice, 104).
        par(eve, 25, carl, 48).
    ";

    let unit = parse_unit(source).expect("parses");
    let program = unit.program();
    let db = Database::from_facts(&unit.facts);

    println!("=== input program ===\n{program}");
    for ic in &unit.constraints {
        println!("{ic}");
        assert!(db.satisfies(ic), "the sample database satisfies the IC");
    }

    // Compile-time semantic optimization: detect residues (Algorithm 3.1)
    // and push them inside the recursion (§4).
    let plan = Optimizer::new(&program)
        .with_constraints(&unit.constraints)
        .run()
        .expect("optimizes");

    println!("\n{plan}");

    // Both programs compute the same `anc` relation on any database that
    // satisfies the constraint.
    let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).expect("evaluates");
    let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).expect("evaluates");

    println!("=== answers (original) ===");
    for t in base.relation("anc").expect("anc computed").sorted_tuples() {
        let row: Vec<String> = t.iter().map(ToString::to_string).collect();
        println!("anc({})", row.join(", "));
    }
    assert_eq!(
        base.relation("anc").unwrap().sorted_tuples(),
        opt.relation("anc").unwrap().sorted_tuples(),
        "optimized program is equivalent"
    );
    println!("\noriginal work:  {}", base.stats);
    println!("optimized work: {}", opt.stats);
    println!("\n(equal answers ✓)");
}
