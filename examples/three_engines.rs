//! One optimized program, three evaluation models — and where the paper's
//! pruning claim is true.
//!
//! The genealogy constraint lets the optimizer guard the committed
//! 3-level chain with `Ya > 50`. This example runs the original and the
//! pruned program under:
//!
//! 1. semi-naive bottom-up (data-driven — the guard never fires),
//! 2. tabled top-down (still data-driven with bound-first selection),
//! 3. depth-bounded SLD without tabling (speculative — the guard kills
//!    whole search subtrees, the regime the paper assumed).
//!
//! ```sh
//! cargo run --example three_engines
//! ```

use semrec::core::optimizer::Optimizer;
use semrec::datalog::parser::parse_atom;
use semrec::datalog::{Term, Value};
use semrec::engine::sld::{query_sld, SldConfig};
use semrec::engine::topdown::query_topdown;
use semrec::engine::{evaluate, Strategy};
use semrec::gen::{genealogy, parse_scenario};

fn main() {
    let scenario = parse_scenario(genealogy::PROGRAM);
    let plan = Optimizer::new(&scenario.program)
        .with_constraints(&scenario.constraints)
        .run()
        .expect("optimizes");
    for a in &plan.applied {
        println!("applied {}: {} [{}]", a.kind, a.residue, a.note);
    }

    let db = genealogy::generate(&genealogy::GenealogyParams {
        families: 2,
        depth: 4,
        branching: 2,
        seed: 7,
    });
    println!("par facts: {}\n", db.count("par"));

    // A goal binding the pruning condition: ancestors aged <= 50.
    let young_age = {
        let rel = db.get(semrec::datalog::Pred::new("par")).unwrap();
        rel.iter()
            .find_map(|t| match t[3] {
                Value::Int(a) if a <= 50 => Some(a),
                _ => None,
            })
            .expect("young parent exists")
    };
    let mut goal = parse_atom("anc(X, Xa, Y, Ya)").unwrap();
    goal.args[3] = Term::Const(Value::Int(young_age));
    println!("goal: anc(X, Xa, Y, {young_age})\n");

    // 1. Bottom-up: full materialization + filter; identical answers.
    let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
    let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap();
    let expected = {
        let mut v = base.answers(&goal);
        v.sort();
        v.dedup();
        v
    };
    assert_eq!(expected, {
        let mut v = opt.answers(&goal);
        v.sort();
        v.dedup();
        v
    });
    println!(
        "bottom-up   : original rows={:<6} pruned rows={:<6} ({} answers)",
        base.stats.rows_scanned,
        opt.stats.rows_scanned,
        expected.len()
    );

    // 2. Tabled top-down: data-driven as well.
    let (td1, s1) = query_topdown(&db, &plan.rectified, &goal).unwrap();
    let (td2, s2) = query_topdown(&db, &plan.program, &goal).unwrap();
    assert_eq!(td1, expected);
    assert_eq!(td2, expected);
    println!(
        "topdown     : original expansions={:<4} pruned expansions={:<4}",
        s1.expansions, s2.expansions
    );

    // 3. Depth-bounded SLD: the guard cuts the speculative search.
    let config = SldConfig {
        max_depth: 10,
        max_expansions: 4_000_000,
    };
    let (sl1, t1, _) = query_sld(&db, &plan.rectified, &goal, config).unwrap();
    let (sl2, t2, _) = query_sld(&db, &plan.program, &goal, config).unwrap();
    assert_eq!(sl1, expected);
    assert_eq!(sl2, expected);
    println!(
        "sld (no tab): original expansions={:<4} pruned expansions={:<4}  ← the paper's win",
        t1.expansions, t2.expansions
    );
    assert!(
        t2.expansions < t1.expansions,
        "pruning must cut SLD search for young-bound goals"
    );
    println!("\n(all engines agree on all programs ✓)");
}
