//! Examples 3.2 and 4.2: atom elimination and atom introduction on the
//! university database, plus the §2 comparison of free residues against
//! the classical Chakravarthy–Grant–Minker expanded-form residues.
//!
//! ```sh
//! cargo run --example university_eval
//! ```

use semrec::core::expand::rule_residues;
use semrec::core::optimizer::{Optimizer, OptimizerConfig};
use semrec::datalog::Pred;
use semrec::engine::{evaluate, Strategy};
use semrec::gen::{parse_scenario, university};

fn main() {
    let scenario = parse_scenario(university::PROGRAM);
    println!("=== program ===\n{}", scenario.program);
    for ic in &scenario.constraints {
        println!("{ic}");
    }

    // §2: the CGM residue of ic1 w.r.t. the recursive rule is trivial in
    // context (Example 3.2) — show it next to the free sequence residue.
    println!("\n--- CGM (expanded-form) residues of ic1 w.r.t. rule r1 ---");
    let r1 = &scenario.program.rules[1];
    for residue in rule_residues(&scenario.constraints[0], r1) {
        println!(
            "  {residue}   (directly usable: {})",
            residue.directly_usable()
        );
    }

    // The optimizer: ic1 drives elimination of the expert atom on the
    // sequence r1·r1; ic2 introduces the small doctoral relation into the
    // non-recursive eval_support rule.
    let mut config = OptimizerConfig::default();
    config.policy.small_relations.insert(Pred::new("doctoral"));
    let plan = Optimizer::new(&scenario.program)
        .with_constraints(&scenario.constraints)
        .with_config(config)
        .run()
        .expect("optimizes");

    println!("\n--- applied optimizations ---");
    for a in &plan.applied {
        println!("  {}: {} [{}]", a.kind, a.residue, a.note);
    }
    println!("  rule-level (non-recursive) rewrites: {}", plan.rule_level);

    println!("\n--- optimized eval_support rules (Example 4.2) ---");
    for r in &plan.program.rules {
        if r.head.pred == Pred::new("eval_support") {
            println!("  {r}");
        }
    }

    // Evaluate both programs while growing the expertise fan-out (longer
    // collaboration chains inherit more expertise, making the eliminated
    // expert-join more expensive).
    println!(
        "\n{:>10} {:>12} {:>14} {:>14} {:>14}",
        "chain_len", "expert size", "orig rows", "opt rows", "saved rows"
    );
    for &chain in &[2usize, 4, 8, 12] {
        let db = university::generate(&university::UniversityParams {
            professors: 96,
            students: 200,
            chain_len: chain,
            ..university::UniversityParams::default()
        });
        for ic in &scenario.constraints {
            assert!(db.satisfies(ic));
        }
        let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
        let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap();
        for p in ["eval", "eval_support"] {
            assert_eq!(
                base.relation(p).unwrap().sorted_tuples(),
                opt.relation(p).unwrap().sorted_tuples(),
                "equivalence for {p} at chain_len {chain}"
            );
        }
        println!(
            "{:>10} {:>12} {:>14} {:>14} {:>14}",
            chain,
            db.count("expert"),
            base.stats.rows_scanned,
            opt.stats.rows_scanned,
            base.stats.rows_scanned as i64 - opt.stats.rows_scanned as i64
        );
    }
    println!("\n(answers equal at every setting ✓)");
}
