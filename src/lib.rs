//! # semrec — Pushing Semantics inside Recursion
//!
//! Semantic optimization of recursive Datalog queries by program
//! transformation, reproducing Lakshmanan & Missaoui (ICDE 1995). This
//! umbrella crate re-exports the workspace:
//!
//! * [`datalog`] — the language, parser and static analysis;
//! * [`engine`] — bottom-up evaluation (semi-naive, stratified negation,
//!   magic sets, explanation, CSV I/O);
//! * [`core`] — residue detection (Algorithm 3.1) and pushing (§4);
//! * [`iqa`] — intelligent query answering (§5);
//! * [`gen`] — IC-consistent workload generators;
//! * [`serve`] — the crash-safe concurrent serving daemon (`semrec
//!   serve`): epoch snapshots, WAL durability, admission control.
//!
//! ## Example
//!
//! ```
//! use semrec::core::optimizer::Optimizer;
//! use semrec::datalog::parser::parse_unit;
//! use semrec::engine::{evaluate, Database, Strategy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let unit = parse_unit(
//!     "
//!     reach(X, Y) :- edge(X, Y).
//!     reach(X, Y) :- edge(X, Z), witness(Z, W), reach(Z, Y).
//!     ic: edge(X, Z) -> witness(Z, W).
//!
//!     edge(1, 2). edge(2, 3).
//!     witness(2, 10). witness(3, 11).
//!     ",
//! )?;
//!
//! // Compile once: the witness join is provably redundant.
//! let plan = Optimizer::new(&unit.program())
//!     .with_constraints(&unit.constraints)
//!     .run()?;
//! assert!(plan.any_applied());
//!
//! // The optimized program computes the same relation.
//! let db = Database::from_facts(&unit.facts);
//! let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive)?;
//! let opt = evaluate(&db, &plan.program, Strategy::SemiNaive)?;
//! assert_eq!(
//!     base.relation("reach").unwrap().sorted_tuples(),
//!     opt.relation("reach").unwrap().sorted_tuples(),
//! );
//! # Ok(())
//! # }
//! ```

pub use semrec_core as core;
pub use semrec_datalog as datalog;
pub use semrec_engine as engine;
pub use semrec_gen as gen;
pub use semrec_iqa as iqa;
pub use semrec_serve as serve;
