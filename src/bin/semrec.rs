//! `semrec` — command-line driver for the semantic optimizer.
//!
//! ```text
//! semrec optimize <file> [--small PRED]...        show the optimization plan
//! semrec run <file> [--optimize] [--naive] [--query 'p(a, X)'] [--magic]
//!            [--data DIR] [--save DIR] [--threads N] [--engine seminaive|naive|topdown|sld]
//!            [--deadline-ms N] [--max-rows N] [--max-bytes N] [--max-iters N]
//! semrec explain <file> [--run] [--query ATOM] [--data DIR]
//!                        residues per IC + per-alternative route costs
//! semrec describe <file> 'describe p(X) where q(X, c).'
//! semrec why <file> 'anc(dan, 20, bob, 77)'       show one derivation of a fact
//! semrec check <file>                             validate assumptions + IC satisfaction
//! semrec update <file> <txfile> [--optimize] [--query 'p(a, X)'] [--threads N]
//!            [--deadline-ms N] [--max-rows N] [--max-bytes N] [--max-iters N]
//!                                                 apply transactions incrementally
//! semrec plan <file> [--optimize]                 show compiled physical plans (EXPLAIN)
//! semrec gen <scenario> <dir>                     write a generated workload bundle
//! semrec serve <file> [--wal PATH] [--script PATH | --listen ADDR] [--threads N]
//!            [--max-inflight N] [--retain-epochs N] [--watchdog-ms N]
//!            [--request-deadline-ms N] [--deadline-ms N] [--max-rows N]
//!            [--no-read-index] [--no-answer-cache] [--no-batch] [--cache-capacity N]
//!            [--max-bytes N] [--max-iters N]      run the serving daemon
//! ```
//!
//! `<file>` holds rules, ground facts, and `ic:` constraints in the
//! Prolog-like syntax of `semrec_datalog::parser`.
//!
//! ## Exit codes
//!
//! Resource-governance failures get distinct non-zero exit codes so
//! scripts can tell a timeout from a wrong invocation:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | success |
//! | 1    | any other error (parse, analysis, I/O, …) |
//! | 2    | usage error (bad command line) |
//! | 3    | wall-clock deadline exceeded |
//! | 4    | row/byte budget exceeded |
//! | 5    | evaluation cancelled |
//! | 6    | a worker panicked (partial round discarded) |
//! | 7    | serve: admission control shed the request (overloaded) |
//! | 8    | serve: the write-ahead log is corrupt (torn tails recover; this does not) |
//! | 9    | serve: the pinned epoch was reclaimed |
//!
//! In `serve` script/stdin mode, per-request errors are reported on the
//! wire (`err kind=…`) and the session continues; the process exit code
//! reflects the most severe serving error seen across the whole session
//! (wal-corrupt > epoch-reclaimed > overloaded), or 0.

use semrec::core::detect::{detect, DetectionMethod};
use semrec::core::optimizer::{evaluate_governed, Optimizer, OptimizerConfig};
use semrec::datalog::analysis::{classify_linear, rectify, validate};
use semrec::datalog::parser::{parse_atom, parse_unit, Unit};
use semrec::datalog::Pred;
use semrec::engine::magic::evaluate_query;
use semrec::engine::{
    evaluate, Budget, CancelToken, Database, EngineError, Route, Strategy, Tuning,
};
use semrec::serve::{Connection, Response, ServeConfig, ServeError, Server};
use std::process::ExitCode;

/// A CLI failure, carrying enough type to pick the exit code.
enum CliError {
    /// Bad command line (exit 2).
    Usage(String),
    /// A typed engine failure (exit 3–6 for governance errors, else 1).
    Engine(EngineError),
    /// A typed serving failure (exit 7–9 for the serving-specific
    /// conditions, the engine mapping for wrapped engine errors, else 1).
    Serve(ServeError),
    /// Anything else (exit 1).
    Other(String),
}

/// Exit code for a typed engine failure (shared by `run`/`update` and
/// engine errors surfacing through `serve`).
fn engine_exit_code(e: &EngineError) -> u8 {
    match e {
        EngineError::DeadlineExceeded { .. } => 3,
        EngineError::BudgetExceeded { .. } => 4,
        EngineError::Cancelled => 5,
        EngineError::WorkerPanicked { .. } => 6,
        _ => 1,
    }
}

/// Exit code for a serving error kind tag (see `ServeError::kind`).
fn serve_kind_exit_code(kind: &str) -> u8 {
    match kind {
        "overloaded" => 7,
        "wal-corrupt" => 8,
        "epoch-reclaimed" => 9,
        _ => 1,
    }
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Engine(e) => engine_exit_code(e),
            CliError::Serve(ServeError::Engine(e)) => engine_exit_code(e),
            CliError::Serve(e) => serve_kind_exit_code(e.kind()),
            CliError::Other(_) => 1,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Other(m) => write!(f, "{m}"),
            CliError::Engine(e) => write!(f, "{e}"),
            CliError::Serve(e) => write!(f, "{e}"),
        }
    }
}

impl From<String> for CliError {
    fn from(s: String) -> Self {
        CliError::Other(s)
    }
}

impl From<&str> for CliError {
    fn from(s: &str) -> Self {
        CliError::Other(s.to_owned())
    }
}

impl From<EngineError> for CliError {
    fn from(e: EngineError) -> Self {
        CliError::Engine(e)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), CliError> {
    let Some(cmd) = args.first() else {
        return Err(CliError::Usage(usage()));
    };
    match cmd.as_str() {
        "optimize" => cmd_optimize(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "explain" => cmd_explain(&args[1..]),
        "describe" => cmd_describe(&args[1..]),
        "why" => cmd_why(&args[1..]),
        "plan" => cmd_plan(&args[1..]),
        "gen" => cmd_gen(&args[1..]),
        "check" => cmd_check(&args[1..]),
        "update" => cmd_update(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n{}",
            usage()
        ))),
    }
}

fn usage() -> String {
    "usage:\n  semrec optimize <file> [--small PRED]...\n  \
     semrec run <file> [--optimize] [--naive] [--query ATOM] [--magic]\n  \
             [--data DIR] [--save DIR] [--small PRED]... [--threads N]\n  \
             [--deadline-ms N] [--max-rows N] [--max-bytes N] [--max-iters N]\n  \
     semrec explain <file> [--run] [--query ATOM] [--data DIR] [--small PRED]...\n  \
     semrec describe <file> QUERY\n  \
     semrec why <file> GROUND_ATOM\n  \
     semrec plan <file> [--optimize]\n  \
     semrec gen <org|university|genealogy|fanout|flights> <dir>\n  \
     semrec check <file>\n  \
     semrec update <file> <txfile> [--optimize] [--query ATOM] [--data DIR]\n  \
             [--threads N] [--deadline-ms N] [--max-rows N] [--max-bytes N] [--max-iters N]\n  \
     semrec serve <file> [--wal PATH] [--script PATH | --listen ADDR] [--threads N]\n  \
             [--max-inflight N] [--retain-epochs N] [--watchdog-ms N]\n  \
             [--request-deadline-ms N] [--deadline-ms N] [--max-rows N]\n  \
             [--max-bytes N] [--max-iters N] [--no-read-index]\n  \
             [--no-answer-cache] [--no-batch] [--cache-capacity N]"
        .to_owned()
}

fn need_path(args: &[String]) -> Result<&String, CliError> {
    args.first().ok_or_else(|| CliError::Usage(usage()))
}

fn load(path: &str) -> Result<Unit, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse_unit(&src).map_err(|e| format!("{path}: {e}"))
}

fn small_preds(args: &[String]) -> Vec<Pred> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--small" {
            if let Some(p) = it.next() {
                out.push(Pred::new(p));
            }
        }
    }
    out
}

fn optimizer_config(args: &[String]) -> OptimizerConfig {
    let mut config = OptimizerConfig::default();
    for p in small_preds(args) {
        config.policy.small_relations.insert(p);
    }
    config
}

fn build_plan(unit: &Unit, args: &[String]) -> Result<semrec::core::Plan, String> {
    Optimizer::new(&unit.program())
        .with_constraints(&unit.constraints)
        .with_config(optimizer_config(args))
        .run()
        .map_err(|e| e.to_string())
}

fn cmd_optimize(args: &[String]) -> Result<(), CliError> {
    let path = need_path(args)?;
    let unit = load(path)?;
    let plan = build_plan(&unit, args)?;
    print!("{plan}");
    Ok(())
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
}

/// Parses an optional `--flag N` u64 value, erroring (usage, exit 2) on
/// a malformed number instead of silently ignoring the limit.
fn flag_u64(args: &[String], flag: &str) -> Result<Option<u64>, CliError> {
    flag_value(args, flag)
        .map(|v| {
            v.parse()
                .map_err(|_| CliError::Usage(format!("bad {flag} value `{v}`")))
        })
        .transpose()
}

/// Assembles the evaluation [`Budget`] from the `run` budget flags.
fn parse_budget(args: &[String]) -> Result<Budget, CliError> {
    let mut b = Budget::unlimited();
    if let Some(ms) = flag_u64(args, "--deadline-ms")? {
        b = b.with_deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(n) = flag_u64(args, "--max-rows")? {
        b = b.with_max_idb_rows(n);
    }
    if let Some(n) = flag_u64(args, "--max-bytes")? {
        b = b.with_max_resident_bytes(n);
    }
    if let Some(n) = flag_u64(args, "--max-iters")? {
        b = b.with_max_iterations(n);
    }
    Ok(b)
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let path = need_path(args)?;
    let unit = load(path)?;
    let mut db = Database::from_facts(&unit.facts);
    if let Some(dir) = flag_value(args, "--data") {
        let n = semrec::engine::io::load_dir(&mut db, std::path::Path::new(dir))
            .map_err(CliError::Engine)?;
        eprintln!("loaded {n} facts from {dir}");
    }
    let db = db;
    let strategy = if args.iter().any(|a| a == "--naive") {
        Strategy::Naive
    } else {
        Strategy::SemiNaive
    };
    let budget = parse_budget(args)?;
    let threads: usize = flag_value(args, "--threads")
        .map(|t| {
            t.parse()
                .map_err(|_| CliError::Usage(format!("bad --threads value `{t}`")))
        })
        .transpose()?
        .unwrap_or(1);
    let optimize = args.iter().any(|a| a == "--optimize");

    let query = args
        .iter()
        .position(|a| a == "--query")
        .and_then(|i| args.get(i + 1))
        .map(|q| parse_atom(q).map_err(|e| e.to_string()))
        .transpose()?;

    // The governed optimizing path: under a budget, `--optimize` runs
    // the degradation policy — the optimized program gets a slice of
    // the budget and the rectified program answers if that route fails.
    if optimize && budget.is_limited() {
        let outcome = evaluate_governed(
            &db,
            &unit.program(),
            &unit.constraints,
            optimizer_config(args),
            budget,
            CancelToken::new(),
            threads,
        )
        .map_err(CliError::Engine)?;
        if let Some(why) = &outcome.degraded {
            eprintln!("degraded: {why}");
        }
        eprintln!("route: {}", route_name(outcome.result.route));
        emit_result(&outcome.result, query.as_ref(), args)?;
        return Ok(());
    }

    let program = if optimize {
        let plan = build_plan(&unit, args)?;
        for a in &plan.applied {
            eprintln!("applied {}: {}", a.kind, a.note);
        }
        plan.program
    } else {
        unit.program()
    };

    if args.iter().any(|a| a == "--magic") {
        let goal = query.ok_or("--magic requires --query")?;
        let (answers, res) =
            evaluate_query(&db, &program, &goal, strategy).map_err(CliError::Engine)?;
        for t in &answers {
            println!("{}", render(goal.pred, t));
        }
        eprintln!("-- {} answers; {}", answers.len(), res.stats);
        return Ok(());
    }

    match flag_value(args, "--engine").map(String::as_str) {
        Some("topdown") => {
            let goal = query.ok_or("--engine topdown requires --query")?;
            let (answers, stats) = semrec::engine::topdown::query_topdown(&db, &program, &goal)
                .map_err(CliError::Engine)?;
            for t in &answers {
                println!("{}", render(goal.pred, t));
            }
            eprintln!("-- {} answers; {}", answers.len(), stats);
            return Ok(());
        }
        Some("sld") => {
            let goal = query.ok_or("--engine sld requires --query")?;
            let (answers, stats, compl) = semrec::engine::sld::query_sld(
                &db,
                &program,
                &goal,
                semrec::engine::sld::SldConfig::default(),
            )
            .map_err(CliError::Engine)?;
            for t in &answers {
                println!("{}", render(goal.pred, t));
            }
            eprintln!("-- {} answers; {}; {:?}", answers.len(), stats, compl);
            return Ok(());
        }
        Some("seminaive") | Some("naive") | None => {}
        Some(other) => {
            return Err(CliError::Usage(format!(
                "unknown engine `{other}` (seminaive, naive, topdown, sld)"
            )));
        }
    }
    let mut ev = semrec::engine::Evaluator::new(&db, &program, strategy)
        .map_err(CliError::Engine)?
        .with_parallelism(threads)
        .with_budget(budget);
    ev.run().map_err(CliError::Engine)?;
    let res = ev.finish();
    emit_result(&res, query.as_ref(), args)?;
    Ok(())
}

/// Human-readable name for an evaluation route.
fn route_name(r: Route) -> &'static str {
    match r {
        Route::Direct => "direct (no optimization applied)",
        Route::Optimized => "optimized program",
        Route::RectifiedFallback => "rectified fallback",
        Route::IncrementalOptimized => "incremental (optimized program maintained)",
        Route::IncrementalInvalidated => "incremental (IC violated: rectified program)",
    }
}

/// `semrec update <file> <txfile>`: materializes the file's program,
/// then applies each transaction from the tx file incrementally. With
/// `--optimize`, the optimized program is maintained under IC
/// monitoring — a transaction that violates a constraint the optimizer
/// relied on invalidates the optimized route and re-answers from the
/// rectified program. Transactions are atomic; the first failing one
/// stops the stream with the corresponding governance exit code.
fn cmd_update(args: &[String]) -> Result<(), CliError> {
    let [path, txpath, ..] = args else {
        return Err(CliError::Usage(usage()));
    };
    let unit = load(path)?;
    let txsrc = std::fs::read_to_string(txpath).map_err(|e| format!("reading {txpath}: {e}"))?;
    let txs = semrec::engine::incr::parse_txs(&txsrc).map_err(|e| format!("{txpath}: {e}"))?;
    let mut db = Database::from_facts(&unit.facts);
    if let Some(dir) = flag_value(args, "--data") {
        let n = semrec::engine::io::load_dir(&mut db, std::path::Path::new(dir))
            .map_err(CliError::Engine)?;
        eprintln!("loaded {n} facts from {dir}");
    }
    let budget = parse_budget(args)?;
    let threads: usize = flag_value(args, "--threads")
        .map(|t| {
            t.parse()
                .map_err(|_| CliError::Usage(format!("bad --threads value `{t}`")))
        })
        .transpose()?
        .unwrap_or(1);
    let query = flag_value(args, "--query")
        .map(|q| parse_atom(q).map_err(|e| e.to_string()))
        .transpose()?;

    let report = |i: usize, route: Route, stats: &semrec::engine::UpdateStats| {
        eprintln!(
            "tx {}: route: {}; {} over-deleted, {} re-derived, {} inserted, {} round(s), {} ms{}",
            i + 1,
            route_name(route),
            stats.over_deleted,
            stats.rederived,
            stats.idb_inserted,
            stats.rounds,
            stats.elapsed_ms,
            if stats.from_scratch {
                " (from scratch)"
            } else {
                ""
            },
        );
    };

    if args.iter().any(|a| a == "--optimize") {
        let mut q = semrec::core::maintain::MaintainedQuery::new(
            db,
            &unit.program(),
            &unit.constraints,
            optimizer_config(args),
            threads,
        )
        .map_err(|e| match e {
            semrec::core::maintain::MaintainError::Engine(e) => CliError::Engine(e),
            semrec::core::maintain::MaintainError::Optimizer(e) => CliError::Other(e.to_string()),
        })?;
        eprintln!("route: {}", route_name(q.route()));
        for (i, tx) in txs.iter().enumerate() {
            let out = q.apply(tx, budget, None).map_err(CliError::Engine)?;
            report(i, out.route, &out.stats);
        }
        emit_idb(q.idb(), query.as_ref());
        return Ok(());
    }

    let mut m = semrec::engine::Materialized::new(&db, &unit.program(), threads)
        .map_err(CliError::Engine)?;
    if !m.is_incremental() {
        eprintln!("program uses negation or builtins: every tx re-evaluates from scratch");
    }
    for (i, tx) in txs.iter().enumerate() {
        let stats = m
            .apply(&mut db, tx, budget, None)
            .map_err(CliError::Engine)?;
        report(
            i,
            if stats.from_scratch {
                Route::Direct
            } else {
                Route::IncrementalOptimized
            },
            &stats,
        );
    }
    emit_idb(m.idb(), query.as_ref());
    Ok(())
}

/// Prints a maintained IDB: the goal's answers if a query was given,
/// every relation otherwise.
fn emit_idb(
    idb: &std::collections::BTreeMap<Pred, semrec::engine::Relation>,
    query: Option<&semrec::datalog::Atom>,
) {
    match query {
        Some(goal) => {
            let Some(rel) = idb.get(&goal.pred) else {
                eprintln!("-- 0 answers");
                return;
            };
            let mut answers = semrec::engine::eval::answer_goal(rel, goal, rel.all_rows());
            answers.sort();
            for t in &answers {
                println!("{}", render(goal.pred, t));
            }
            eprintln!("-- {} answers", answers.len());
        }
        None => {
            for (p, rel) in idb {
                for t in rel.sorted_tuples() {
                    println!("{}", render(*p, &t));
                }
            }
        }
    }
}

/// Prints answers (or the whole IDB) and handles `--save`.
fn emit_result(
    res: &semrec::engine::EvalResult,
    query: Option<&semrec::datalog::Atom>,
    args: &[String],
) -> Result<(), CliError> {
    match query {
        Some(goal) => {
            let mut answers = res.answers(goal);
            answers.sort();
            for t in &answers {
                println!("{}", render(goal.pred, t));
            }
            eprintln!("-- {} answers; {}", answers.len(), res.stats);
        }
        None => {
            for (p, rel) in &res.idb {
                for t in rel.sorted_tuples() {
                    println!("{}", render(*p, &t));
                }
            }
            eprintln!("-- {}", res.stats);
        }
    }
    if let Some(dir) = flag_value(args, "--save") {
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        for (p, rel) in &res.idb {
            semrec::engine::io::save_relation(*p, rel.sorted_tuples().iter(), dir)
                .map_err(CliError::Engine)?;
        }
        eprintln!("saved IDB relations to {}", dir.display());
    }
    Ok(())
}

fn render(p: Pred, t: &[semrec::datalog::Value]) -> String {
    let cells: Vec<String> = t.iter().map(ToString::to_string).collect();
    format!("{}({}).", p, cells.join(", "))
}

fn cmd_explain(args: &[String]) -> Result<(), CliError> {
    let path = need_path(args)?;
    let unit = load(path)?;
    let program = unit.program();
    let infos = validate(&program, &unit.constraints).map_err(|e| e.to_string())?;
    let (rect, _) = rectify(&program);
    if infos.is_empty() {
        println!("no recursive predicates.");
    }
    for info in validate(&rect, &unit.constraints).map_err(|e| e.to_string())? {
        println!("recursive predicate {} (arity {}):", info.pred, info.arity);
        println!("  exit rules      {:?}", info.exit_rules);
        println!("  recursive rules {:?}", info.recursive_rules);
        for ic in &unit.constraints {
            let ds =
                detect(&rect, &info, ic, DetectionMethod::SdGraph, 3).map_err(|e| e.to_string())?;
            let label = ic
                .name
                .map(|n| n.as_str().to_owned())
                .unwrap_or_else(|| "(unnamed)".into());
            if ds.is_empty() {
                println!("  ic {label}: no residues");
            }
            for d in ds {
                let r = &d.residue;
                println!(
                    "  ic {label}: seq {:?}: {}  [{}{}{}]",
                    r.seq,
                    r,
                    if r.is_null() { "null" } else { "fact" },
                    if r.is_conditional() {
                        ", conditional"
                    } else {
                        ""
                    },
                    if r.is_useful() { ", useful" } else { "" },
                );
            }
        }
    }
    explain_routing(&unit, args)
}

/// The `semrec explain` routing section: prices every rewrite
/// alternative against the file's data (embedded facts plus `--data`),
/// prints the per-alternative estimates and the planner's choice, and
/// with `--run` evaluates the chosen program to report actual
/// cardinalities next to the prediction.
fn explain_routing(unit: &Unit, args: &[String]) -> Result<(), CliError> {
    let program = unit.program();
    let plan = build_plan(unit, args)?;
    let mut db = Database::from_facts(&unit.facts);
    if let Some(dir) = flag_value(args, "--data") {
        let n = semrec::engine::io::load_dir(&mut db, std::path::Path::new(dir))
            .map_err(CliError::Engine)?;
        eprintln!("loaded {n} facts from {dir}");
    }
    let goal = flag_value(args, "--query")
        .map(|q| parse_atom(q).map_err(|e| e.to_string()))
        .transpose()?;
    let (alts, _) = semrec::core::route_alternatives(&program, &plan, goal.as_ref());
    let mut stats = semrec::engine::EdbStats::new();
    let memo = match semrec::engine::CostMemo::build(&db, &mut stats, alts) {
        Ok(m) => m,
        Err(e) => {
            println!("— route plan — (cost routing unavailable: {e})");
            return Ok(());
        }
    };
    println!("— route plan —");
    for a in &memo.alternatives {
        println!(
            "  {:<14} est_work={:<12.0} est_rows={:<10.0} est_bytes={:<12.0} rounds={}{}",
            a.kind.name(),
            a.estimate.work,
            a.estimate.rows,
            a.estimate.bytes,
            a.estimate.rounds,
            if a.estimate.capped { " (capped)" } else { "" },
        );
    }
    let choice = memo.choice();
    let best = memo.best();
    println!(
        "chosen: {} → route {} (predicted {:.0} rows, {:.0} work)",
        choice.chosen,
        route_name(choice.chosen.route()),
        choice.predicted_rows,
        choice.predicted_work,
    );
    if let Some((kind, work)) = choice.runner_up {
        println!("runner-up: {kind} ({work:.0} work)");
    }
    println!(
        "planning: {} alternative(s), {} shared subplan(s), {} ordering(s) considered, {:.3} ms",
        memo.alternatives.len(),
        memo.shared_subplans,
        best.estimate.orderings_considered,
        memo.plan_nanos as f64 / 1e6,
    );
    if args.iter().any(|a| a == "--run") {
        let res = evaluate(&db, &best.program, Strategy::SemiNaive).map_err(CliError::Engine)?;
        let actual: u64 = res.idb.values().map(|r| r.len() as u64).sum();
        println!(
            "actual: {} rows in {} round(s) (misprediction ×{:.2})",
            actual,
            res.stats.iterations,
            choice.misprediction(actual),
        );
        for (p, rel) in &res.idb {
            let predicted = best.estimate.per_pred.get(p).copied().unwrap_or(0.0);
            println!(
                "  {:<20} actual={:<8} predicted={:.0}",
                p,
                rel.len(),
                predicted
            );
        }
    }
    Ok(())
}

fn cmd_describe(args: &[String]) -> Result<(), CliError> {
    let (path, qsrc) = match args {
        [p, q, ..] => (p, q),
        _ => return Err(CliError::Usage(usage())),
    };
    let unit = load(path)?;
    let query = semrec::iqa::parse_describe(qsrc).map_err(|e| e.to_string())?;
    let a = if unit.facts.is_empty() {
        semrec::iqa::answer(&unit.program(), &query, 4)
    } else {
        let db = Database::from_facts(&unit.facts);
        semrec::iqa::answer_with_data(&unit.program(), &query, &db, 4)
    };
    print!("{a}");
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), CliError> {
    use semrec::gen::{export, fanout, flights, genealogy, org, parse_scenario, university};
    let (name, dir) = match args {
        [n, d, ..] => (n.as_str(), std::path::Path::new(d)),
        _ => return Err(CliError::Usage(usage())),
    };
    let (scenario, db) = match name {
        "org" => (
            parse_scenario(org::PROGRAM),
            org::generate(&org::OrgParams::default()),
        ),
        "university" => (
            parse_scenario(university::PROGRAM),
            university::generate(&university::UniversityParams::default()),
        ),
        "genealogy" => (
            parse_scenario(genealogy::PROGRAM),
            genealogy::generate(&genealogy::GenealogyParams::default()),
        ),
        "fanout" => (
            parse_scenario(fanout::PROGRAM),
            fanout::generate(&fanout::FanoutParams::default()),
        ),
        "flights" => (
            parse_scenario(flights::PROGRAM),
            flights::generate(&flights::FlightsParams::default()),
        ),
        other => return Err(CliError::Usage(format!("unknown scenario `{other}`"))),
    };
    export::write_bundle(&scenario, &db, dir, name).map_err(|e| e.to_string())?;
    println!(
        "wrote {}/{name}.dl and {}/{name}-data/ ({} facts)",
        dir.display(),
        dir.display(),
        db.total_tuples()
    );
    Ok(())
}

fn cmd_plan(args: &[String]) -> Result<(), CliError> {
    let path = need_path(args)?;
    let unit = load(path)?;
    let program = if args.iter().any(|a| a == "--optimize") {
        build_plan(&unit, args)?.program
    } else {
        unit.program()
    };
    let idb = program.idb_preds();
    for rule in &program.rules {
        println!("% {rule}");
        let views: std::collections::BTreeMap<usize, semrec::engine::plan::View> = rule
            .body
            .iter()
            .enumerate()
            .filter(|(_, l)| {
                l.as_atom().is_some_and(|a| idb.contains(&a.pred))
                    || l.as_neg().is_some_and(|a| idb.contains(&a.pred))
            })
            .map(|(i, _)| (i, semrec::engine::plan::View::Total))
            .collect();
        match semrec::engine::plan::compile_rule(rule, &views, None) {
            Ok(c) => println!("{c}"),
            Err(e) => println!("  (uncompilable: {e})"),
        }
    }
    Ok(())
}

fn cmd_why(args: &[String]) -> Result<(), CliError> {
    let (path, fact_src) = match args {
        [p, f, ..] => (p, f),
        _ => return Err(CliError::Usage(usage())),
    };
    let unit = load(path)?;
    let program = unit.program();
    let goal = parse_atom(fact_src).map_err(|e| e.to_string())?;
    if !goal.is_ground() {
        return Err("`why` needs a ground atom".into());
    }
    let db = Database::from_facts(&unit.facts);
    let res = evaluate(&db, &program, Strategy::SemiNaive).map_err(CliError::Engine)?;
    match semrec::engine::explain::explain_fact(&db, &res, &program, &goal) {
        Some(d) => {
            print!("{d}");
            Ok(())
        }
        None => Err(format!("{goal} is not derivable").into()),
    }
}

/// `semrec serve <file>`: the serving daemon. Three drive modes:
///
/// * `--listen ADDR` — accept TCP connections, one session per
///   connection, until killed;
/// * `--script PATH` — run the protocol lines from a file (replies to
///   stdout) and exit: the mode used by tests and the check harness;
/// * neither — read protocol lines from stdin (replies to stdout).
fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    use std::io::BufRead;

    let path = need_path(args)?;
    let unit = load(path)?;
    let threads: usize = flag_value(args, "--threads")
        .map(|t| {
            t.parse()
                .map_err(|_| CliError::Usage(format!("bad --threads value `{t}`")))
        })
        .transpose()?
        .unwrap_or(1);
    let mut cfg = ServeConfig {
        tuning: Tuning::with_threads(threads),
        optimizer: optimizer_config(args),
        write_budget: parse_budget(args)?,
        ..ServeConfig::default()
    };
    if let Some(n) = flag_u64(args, "--max-inflight")? {
        cfg.admission.max_inflight = n as usize;
    }
    if let Some(n) = flag_u64(args, "--retain-epochs")? {
        cfg.retain_epochs = n as usize;
    }
    if let Some(ms) = flag_u64(args, "--watchdog-ms")? {
        cfg.admission.watchdog_after = Some(std::time::Duration::from_millis(ms));
    }
    if let Some(ms) = flag_u64(args, "--request-deadline-ms")? {
        cfg.admission.default_deadline = Some(std::time::Duration::from_millis(ms));
    }
    if args.iter().any(|a| a == "--no-read-index") {
        cfg.index_reads = false;
    }
    if args.iter().any(|a| a == "--no-answer-cache") {
        cfg.answer_cache = false;
    }
    if args.iter().any(|a| a == "--no-batch") {
        cfg.batch_commits = false;
    }
    if let Some(n) = flag_u64(args, "--cache-capacity")? {
        cfg.cache_capacity = n as usize;
    }
    let wal = flag_value(args, "--wal").map(std::path::PathBuf::from);

    let (server, report) = Server::open(&unit, cfg, wal.as_deref()).map_err(CliError::Serve)?;
    eprintln!(
        "serving {path}: epoch {} ({} commit(s) replayed{}), route {}",
        report.epoch,
        report.replayed_commits,
        match report.truncated_tail {
            Some(off) => format!(", torn WAL tail truncated at byte {off}"),
            None => String::new(),
        },
        route_name(server.registry().latest().route),
    );
    let _watchdog = server.spawn_watchdog();

    if let Some(addr) = flag_value(args, "--listen") {
        let listener = std::net::TcpListener::bind(addr.as_str())
            .map_err(|e| format!("binding {addr}: {e}"))?;
        eprintln!(
            "listening on {}",
            listener.local_addr().map_err(|e| e.to_string())?
        );
        server
            .serve_listener(&listener)
            .map_err(|e| format!("accept loop: {e}"))?;
        return Ok(());
    }

    // Script / stdin mode: one session over the same protocol, replies
    // to stdout. Per-request errors keep the session going; the exit
    // code reports the most severe serving condition seen.
    let reader: Box<dyn BufRead> = match flag_value(args, "--script") {
        Some(p) => Box::new(std::io::BufReader::new(
            std::fs::File::open(p).map_err(|e| format!("reading {p}: {e}"))?,
        )),
        None => Box::new(std::io::BufReader::new(std::io::stdin())),
    };
    let mut conn = Connection::new(server);
    // Severity rank of the worst error seen (0 = none): overloaded <
    // epoch-reclaimed < wal-corrupt.
    let mut worst: (u8, Option<String>) = (0, None);
    for line in reader.lines() {
        let line = line.map_err(|e| format!("reading request: {e}"))?;
        match conn.handle_line(&line) {
            Response::None => {}
            Response::Quit => break,
            Response::Lines(lines) => {
                for l in &lines {
                    println!("{l}");
                    if let Some(rest) = l.strip_prefix("err kind=") {
                        let kind = rest.split_whitespace().next().unwrap_or("");
                        let rank = match kind {
                            "wal-corrupt" => 3,
                            "epoch-reclaimed" => 2,
                            "overloaded" => 1,
                            _ => 0,
                        };
                        if rank > worst.0 {
                            worst = (rank, Some(l.clone()));
                        }
                    }
                }
            }
        }
    }
    if let (rank, Some(line)) = worst {
        let kind = match rank {
            3 => "wal-corrupt",
            2 => "epoch-reclaimed",
            _ => "overloaded",
        };
        // Re-raise with the matching exit code; the wire line already
        // went to stdout, so the message names the condition only.
        return Err(match serve_kind_exit_code(kind) {
            8 => CliError::Serve(ServeError::WalCorrupt {
                offset: 0,
                detail: line,
            }),
            9 => CliError::Serve(ServeError::EpochReclaimed {
                requested: 0,
                oldest: 0,
            }),
            _ => CliError::Serve(ServeError::Overloaded {
                inflight: 0,
                limit: 0,
                retry_after_ms: 1,
            }),
        });
    }
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), CliError> {
    let path = need_path(args)?;
    let unit = load(path)?;
    let program = unit.program();
    match validate(&program, &unit.constraints) {
        Ok(infos) => {
            println!(
                "program ok: {} rules, {} facts, {} constraints, {} recursive predicate(s)",
                program.len(),
                unit.facts.len(),
                unit.constraints.len(),
                infos.len()
            );
        }
        Err(e) => return Err(e.to_string().into()),
    }
    // classify_linear double-checks; then verify IC satisfaction on facts.
    classify_linear(&program).map_err(|e| e.to_string())?;
    let db = Database::from_facts(&unit.facts);
    let mut violated = 0;
    for ic in &unit.constraints {
        let v = db.violations(ic);
        if !v.is_empty() {
            violated += 1;
            println!("VIOLATED {ic}");
            for s in v.iter().take(3) {
                println!("  by {s}");
            }
        }
    }
    if violated == 0 {
        println!("all constraints satisfied by the embedded facts.");
    } else {
        return Err(format!("{violated} constraint(s) violated").into());
    }
    Ok(())
}
