//! Randomized whole-pipeline soundness: arbitrary data is *repaired* (a
//! bounded chase) to satisfy the ICs, and the optimized program must then
//! agree with the original on every IDB relation.

use proptest::prelude::*;
use semrec::core::optimizer::{Optimizer, OptimizerConfig};
use semrec::datalog::parser::parse_unit;
use semrec::datalog::{Pred, Value};
use semrec::engine::{evaluate, Database, Strategy};
use semrec::gen::repair::{repair, RepairOutcome};

/// (name, program+ics source, edb preds to fill with random binary data,
/// small relations for introduction).
const FAMILIES: &[(&str, &str, &[&str], &[&str])] = &[
    (
        "guarded_reach",
        "reach(X, Y) :- edge(X, Y).
         reach(X, Y) :- edge(X, Z), witness(Z, W), reach(Z, Y).
         ic: edge(X, Z) -> witness(Z, W).",
        &["edge", "witness"],
        &[],
    ),
    (
        "tc_transitive_base",
        "t(X, Y) :- a(X, Y).
         t(X, Y) :- a(X, Z), t(Z, Y).
         ic: a(X, Y), a(Y, Z) -> a(X, Z).",
        &["a"],
        &[],
    ),
    (
        "ordered_edges",
        "up(X, Y) :- a(X, Y).
         up(X, Y) :- a(X, Z), up(Z, Y).
         ic: a(X, Y) -> X < Y.",
        &["a"],
        &[],
    ),
    (
        "irreflexive",
        "t(X, Y) :- a(X, Y).
         t(X, Y) :- a(X, Z), t(Z, Y).
         ic: a(X, X) -> .",
        &["a"],
        &[],
    ),
    (
        "small_marker",
        "path(X, Y) :- a(X, Y).
         path(X, Y) :- a(X, Z), big(Z, W), path(Z, Y).
         ic: a(X, Z), Z > 5 -> marked(Z).",
        &["a", "big"],
        &["marked"],
    ),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn optimizer_sound_on_repaired_random_data(
        family in 0usize..FAMILIES.len(),
        edges in proptest::collection::vec((0i64..9, 0i64..9), 1..25),
    ) {
        let (name, src, edb, small) = FAMILIES[family];
        let unit = parse_unit(src).unwrap();
        let program = unit.program();

        let mut config = OptimizerConfig::default();
        for s in small {
            config.policy.small_relations.insert(Pred::new(s));
        }
        let plan = Optimizer::new(&program)
            .with_constraints(&unit.constraints)
            .with_config(config)
            .run()
            .unwrap();

        // Random data for each EDB predicate, then chase-repair.
        let mut db = Database::new();
        for (i, &(a, b)) in edges.iter().enumerate() {
            let pred = edb[i % edb.len()];
            db.insert(pred, vec![Value::Int(a), Value::Int(b)]);
        }
        if repair(&mut db, &unit.constraints, 64) != RepairOutcome::Satisfied {
            // Diverging chase for this draw — nothing to test.
            return Ok(());
        }
        for ic in &unit.constraints {
            prop_assert!(db.satisfies(ic));
        }

        let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
        let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap();
        for p in program.idb_preds() {
            let b = base.relation(p).map(|r| r.sorted_tuples()).unwrap_or_default();
            let o = opt.relation(p).map(|r| r.sorted_tuples()).unwrap_or_default();
            prop_assert_eq!(b, o, "family {} diverged on {}", name, p);
        }
    }
}
