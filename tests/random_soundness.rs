//! Randomized whole-pipeline soundness: arbitrary data is *repaired* (a
//! bounded chase) to satisfy the ICs, and the optimized program must then
//! agree with the original on every IDB relation.
//!
//! Seeded-loop rewrite of a former `proptest` suite (offline-build
//! policy: no registry deps for `cargo test -q`).

use semrec::core::optimizer::{Optimizer, OptimizerConfig};
use semrec::datalog::parser::parse_unit;
use semrec::datalog::{Pred, Value};
use semrec::engine::{evaluate, Database, Strategy};
use semrec::gen::repair::{repair, RepairOutcome};
use semrec::gen::rng::Rng;

/// (name, program+ics source, edb preds to fill with random binary data,
/// small relations for introduction).
const FAMILIES: &[(&str, &str, &[&str], &[&str])] = &[
    (
        "guarded_reach",
        "reach(X, Y) :- edge(X, Y).
         reach(X, Y) :- edge(X, Z), witness(Z, W), reach(Z, Y).
         ic: edge(X, Z) -> witness(Z, W).",
        &["edge", "witness"],
        &[],
    ),
    (
        "tc_transitive_base",
        "t(X, Y) :- a(X, Y).
         t(X, Y) :- a(X, Z), t(Z, Y).
         ic: a(X, Y), a(Y, Z) -> a(X, Z).",
        &["a"],
        &[],
    ),
    (
        "ordered_edges",
        "up(X, Y) :- a(X, Y).
         up(X, Y) :- a(X, Z), up(Z, Y).
         ic: a(X, Y) -> X < Y.",
        &["a"],
        &[],
    ),
    (
        "irreflexive",
        "t(X, Y) :- a(X, Y).
         t(X, Y) :- a(X, Z), t(Z, Y).
         ic: a(X, X) -> .",
        &["a"],
        &[],
    ),
    (
        "small_marker",
        "path(X, Y) :- a(X, Y).
         path(X, Y) :- a(X, Z), big(Z, W), path(Z, Y).
         ic: a(X, Z), Z > 5 -> marked(Z).",
        &["a", "big"],
        &["marked"],
    ),
];

#[test]
fn optimizer_sound_on_repaired_random_data() {
    for case in 0u64..40 {
        let mut rng = Rng::seed_from_u64(0x5047 + case);
        let family = rng.gen_range(0..FAMILIES.len());
        let m = rng.gen_range(1..25usize);
        let edges: Vec<(i64, i64)> = (0..m)
            .map(|_| (rng.gen_range(0..9i64), rng.gen_range(0..9i64)))
            .collect();

        let (name, src, edb, small) = FAMILIES[family];
        let unit = parse_unit(src).unwrap();
        let program = unit.program();

        let mut config = OptimizerConfig::default();
        for s in small {
            config.policy.small_relations.insert(Pred::new(s));
        }
        let plan = Optimizer::new(&program)
            .with_constraints(&unit.constraints)
            .with_config(config)
            .run()
            .unwrap();

        // Random data for each EDB predicate, then chase-repair.
        let mut db = Database::new();
        for (i, &(a, b)) in edges.iter().enumerate() {
            let pred = edb[i % edb.len()];
            db.insert(pred, vec![Value::Int(a), Value::Int(b)]);
        }
        if repair(&mut db, &unit.constraints, 64) != RepairOutcome::Satisfied {
            // Diverging chase for this draw — nothing to test.
            continue;
        }
        for ic in &unit.constraints {
            assert!(db.satisfies(ic), "case {case}");
        }

        let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
        let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap();
        for p in program.idb_preds() {
            let b = base
                .relation(p)
                .map(|r| r.sorted_tuples())
                .unwrap_or_default();
            let o = opt
                .relation(p)
                .map(|r| r.sorted_tuples())
                .unwrap_or_default();
            assert_eq!(b, o, "case {case}: family {name} diverged on {p}");
        }
    }
}
