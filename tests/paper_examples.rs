//! End-to-end reproduction of every worked example in the paper.

use semrec::core::detect::{detect, DetectionMethod};
use semrec::core::expand::rule_residues;
use semrec::core::optimizer::{Optimizer, OptimizerConfig};
use semrec::core::push::OptKind;
use semrec::core::residue::ResidueHead;
use semrec::datalog::analysis::{classify_linear_pred, rectify};
use semrec::datalog::parser::parse_unit;
use semrec::datalog::Pred;
use semrec::engine::{evaluate, Strategy};
use semrec::gen::{fanout, genealogy, org, parse_scenario, university};
use semrec::iqa::{answer, parse_describe, TreeVerdict};

/// Example 2.1: expanded-form (CGM) residue vs free residues for the
/// 6-column chain program.
#[test]
fn example_2_1_expanded_vs_free_residues() {
    let unit = parse_unit(
        "p(X1, X2, X3, X4, X5, X6) :- e(X1, X2, X3, X4, X5, X6).
         p(X1, X2, X3, X4, X5, X6) :- a(X1, X2, X4), b(W2, X3), c(W3, W4, X5),
             d(W5, X6), p(X1, W2, W3, W4, W5, W6).
         ic: a(V1, V2, V3), b(V2, V4), c(V4, V5, V6) -> d(V6, V7).",
    )
    .unwrap();
    let ic = &unit.constraints[0];
    let r0 = &unit.program().rules[1];

    // The classical residue carries the introduced equalities
    // (X2' = X2, X3' = X3 -> d(X5, _)).
    let std = rule_residues(ic, r0);
    let full = std.iter().find(|r| r.matched == 3).expect("full match");
    assert_eq!(full.body_cmps.len(), 2);
    assert!(!full.directly_usable());

    // Free partial subsumption (no expansion, no introduced equalities)
    // cannot match all three atoms against a single rule body — the shared
    // variables clash — so its maximal matches cover proper subsets, e.g.
    // {a, c} leaving b(X2, W3) in the residue body (the paper's
    // "b(X2, X3') -> d(X5, V7)").
    let targets: Vec<&semrec::datalog::Atom> = r0
        .body_atoms()
        .filter(|a| a.pred != Pred::new("p"))
        .collect();
    let free = semrec::core::subsume::maximal_partial_matches(&ic.body_atoms, &targets, 1);
    assert!(!free.is_empty());
    assert!(free.iter().all(|m| m.matched_count() < 3));
    assert!(free.iter().any(|m| m.matched_count() == 2));
}

/// Example 3.1/3.2: maximal subsumption detection on both programs.
#[test]
fn example_3_1_and_3_2_detection() {
    // 3.2: the eval program; ic1 maximally subsumes r1·r1 with residue
    // -> expert(...), useful for the sequence.
    let unit = parse_unit(
        "eval(P, S, T) :- super(P, S, T).
         eval(P, S, T) :- works_with(P, P1), eval(P1, S, T), expert(P, F), field(T, F).
         ic ic1: works_with(P2, P1), expert(P1, F1) -> expert(P2, F1).",
    )
    .unwrap();
    let (prog, _) = rectify(&unit.program());
    let info = classify_linear_pred(&prog, Pred::new("eval")).unwrap();
    let ds = detect(
        &prog,
        &info,
        &unit.constraints[0],
        DetectionMethod::SdGraph,
        2,
    )
    .unwrap();
    let r = ds
        .iter()
        .map(|d| &d.residue)
        .find(|r| r.seq == vec![1, 1] && r.is_useful())
        .expect("the r1 r1 residue");
    assert!(r.is_fact() && !r.is_conditional());
    let ResidueHead::Atom(a) = &r.head else {
        panic!()
    };
    assert_eq!(a.pred, Pred::new("expert"));
}

/// Example 4.1: atom elimination on the organizational program — the only
/// useful sequence is r2·r2·r2·r2 and the residue is
/// `R = executive -> experienced(U)`.
#[test]
fn example_4_1_atom_elimination() {
    let s = parse_scenario(org::PROGRAM);
    let plan = Optimizer::new(&s.program)
        .with_constraints(&s.constraints)
        .run()
        .unwrap();
    assert_eq!(plan.chosen[&Pred::new("triple")], vec![1, 1, 1, 1]);
    let elim: Vec<_> = plan
        .applied
        .iter()
        .filter(|a| a.kind == OptKind::AtomElimination)
        .collect();
    assert_eq!(elim.len(), 1);
    assert!(elim[0].residue.is_conditional());
    assert!(elim[0].residue.body[0].to_string().contains("executive"));

    // Equivalence on generated IC-consistent data.
    let db = org::generate(&org::OrgParams::default());
    let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
    let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap();
    assert_eq!(
        base.relation("triple").unwrap().sorted_tuples(),
        opt.relation("triple").unwrap().sorted_tuples()
    );
}

/// Example 4.2: conditional introduction of doctoral(S) into eval_support.
#[test]
fn example_4_2_atom_introduction() {
    let s = parse_scenario(university::PROGRAM);
    let mut config = OptimizerConfig::default();
    config.policy.small_relations.insert(Pred::new("doctoral"));
    let plan = Optimizer::new(&s.program)
        .with_constraints(&s.constraints)
        .with_config(config)
        .run()
        .unwrap();
    assert!(plan.rule_level >= 1, "doctoral introduction applied");
    let es: Vec<String> = plan
        .program
        .rules
        .iter()
        .filter(|r| r.head.pred == Pred::new("eval_support"))
        .map(ToString::to_string)
        .collect();
    assert!(es
        .iter()
        .any(|r| r.contains("doctoral") && r.contains("M > 10000")));
    assert!(es.iter().any(|r| r.contains("M <= 10000")));

    let db = university::generate(&university::UniversityParams::default());
    let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
    let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap();
    for p in ["eval", "eval_support"] {
        assert_eq!(
            base.relation(p).unwrap().sorted_tuples(),
            opt.relation(p).unwrap().sorted_tuples()
        );
    }
}

/// Example 4.3: conditional subtree pruning on the genealogy program.
#[test]
fn example_4_3_subtree_pruning() {
    let s = parse_scenario(genealogy::PROGRAM);
    let plan = Optimizer::new(&s.program)
        .with_constraints(&s.constraints)
        .run()
        .unwrap();
    assert_eq!(plan.chosen[&Pred::new("anc")], vec![1, 1, 1]);
    assert!(plan
        .applied
        .iter()
        .any(|a| a.kind == OptKind::SubtreePruning));

    let db = genealogy::generate(&genealogy::GenealogyParams::default());
    let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
    let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap();
    assert_eq!(
        base.relation("anc").unwrap().sorted_tuples(),
        opt.relation("anc").unwrap().sorted_tuples()
    );
}

/// The guarded-reachability scenario: a rule-level (k = 1) elimination
/// whose saved work scales with fan-out.
#[test]
fn fanout_elimination_wins() {
    let s = parse_scenario(fanout::PROGRAM);
    let plan = Optimizer::new(&s.program)
        .with_constraints(&s.constraints)
        .run()
        .unwrap();
    assert_eq!(plan.chosen[&Pred::new("reach")], vec![1]);
    // No auxiliary predicates needed at k = 1.
    assert!(plan
        .program
        .rules
        .iter()
        .all(|r| !r.head.pred.name().contains('@')));

    let db = fanout::generate(&fanout::FanoutParams {
        nodes: 60,
        extra_edges: 30,
        fanout: 16,
        seed: 5,
    });
    let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
    let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap();
    assert_eq!(
        base.relation("reach").unwrap().sorted_tuples(),
        opt.relation("reach").unwrap().sorted_tuples()
    );
    // The static elimination removes the witness atom outright, halving
    // the number of index probes; the engine's existential-probe
    // short-circuit narrows the rows-scanned gap at runtime (it stops a
    // witness probe at its first hit) but still pays one probe and one
    // scanned row per existence check that the rewrite avoids entirely.
    assert!(opt.stats.probes * 2 < base.stats.probes);
    assert!(opt.stats.rows_scanned < base.stats.rows_scanned);
}

/// Example 5.1: intelligent query answering.
#[test]
fn example_5_1_intelligent_answering() {
    let program = parse_unit(
        "honors(Stud) :- transcript(Stud, Major, Cred, Gpa), Cred >= 30, Gpa >= 38.
         honors(Stud) :- transcript(Stud, Major, Cred, Gpa), Gpa >= 38, exceptional(Stud).
         exceptional(Stud) :- publication(Stud, P), appears(P, Jl), reputed(Jl).
         honors(Stud) :- graduated(Stud, College), topten(College).",
    )
    .unwrap()
    .program();
    let q = parse_describe(
        "describe honors(Stud) where major(Stud, cs), graduated(Stud, College), \
         topten(College), hobby(Stud, chess).",
    )
    .unwrap();
    let a = answer(&program, &q, 4);
    assert_eq!(a.irrelevant.len(), 2, "major and hobby discarded");
    assert!(a.fully_qualified(), "the graduated/topten tree qualifies");
    assert_eq!(a.trees.len(), 3);
    assert_eq!(
        a.trees
            .iter()
            .filter(|t| t.verdict == TreeVerdict::Qualified)
            .count(),
        1
    );
}

/// The flight-routing scenario: a *conditional* rule-level elimination —
/// the optimizer splits the recursive rule on K = intl / K != intl and
/// drops the hub probe from the international branch.
#[test]
fn flights_conditional_elimination() {
    use semrec::gen::flights;
    let s = parse_scenario(flights::PROGRAM);
    let plan = Optimizer::new(&s.program)
        .with_constraints(&s.constraints)
        .run()
        .unwrap();
    assert_eq!(plan.chosen[&Pred::new("route")], vec![1]);
    let elim: Vec<_> = plan
        .applied
        .iter()
        .filter(|a| a.kind == OptKind::AtomElimination)
        .collect();
    assert_eq!(elim.len(), 1);
    assert!(elim[0].residue.is_conditional());
    // One route-rule variant has the condition and no hub atom; another
    // carries the negated condition and keeps it.
    let route_rules: Vec<String> = plan
        .program
        .rules
        .iter()
        .filter(|r| r.head.pred == Pred::new("route"))
        .map(ToString::to_string)
        .collect();
    assert!(route_rules
        .iter()
        .any(|r| r.contains("= intl") && !r.contains("hub(")));
    assert!(route_rules
        .iter()
        .any(|r| r.contains("!= intl") && r.contains("hub(")));

    let db = flights::generate(&flights::FlightsParams::default());
    let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
    let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap();
    assert_eq!(
        base.relation("route").unwrap().sorted_tuples(),
        opt.relation("route").unwrap().sorted_tuples()
    );
}
