//! Smoke tests for the `semrec` command-line driver against the bundled
//! sample programs.

use std::process::Command;

fn semrec(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_semrec"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn sample(name: &str) -> String {
    format!("{}/samples/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn check_validates_samples() {
    for s in ["genealogy.dl", "university.dl", "honors.dl"] {
        let (ok, stdout, stderr) = semrec(&["check", &sample(s)]);
        assert!(ok, "check {s} failed: {stderr}");
        assert!(stdout.contains("program ok"), "{stdout}");
    }
}

#[test]
fn run_plain_and_optimized_agree() {
    let file = sample("genealogy.dl");
    let (ok, plain, _) = semrec(&["run", &file, "--query", "anc(dan, A, Y, Ya)"]);
    assert!(ok);
    let (ok, opt, stderr) = semrec(&["run", &file, "--optimize", "--query", "anc(dan, A, Y, Ya)"]);
    assert!(ok, "{stderr}");
    assert_eq!(plain, opt, "answers must agree");
    assert!(stderr.contains("subtree pruning"));
    assert!(plain.contains("anc(dan, 20, alice, 104)."));
}

#[test]
fn run_with_magic() {
    let file = sample("genealogy.dl");
    let (ok, out, _) = semrec(&["run", &file, "--magic", "--query", "anc(dan, A, Y, Ya)"]);
    assert!(ok);
    assert_eq!(out.lines().count(), 3);
}

#[test]
fn optimize_prints_plan() {
    let (ok, out, _) = semrec(&["optimize", &sample("university.dl"), "--small", "doctoral"]);
    assert!(ok);
    assert!(out.contains("atom elimination"));
    assert!(out.contains("optimized program"));
}

#[test]
fn explain_lists_residues() {
    let (ok, out, _) = semrec(&["explain", &sample("genealogy.dl")]);
    assert!(ok);
    assert!(out.contains("recursive predicate anc"));
    assert!(out.contains("null, conditional"));
}

#[test]
fn describe_answers_knowledge_query() {
    let (ok, out, _) = semrec(&[
        "describe",
        &sample("honors.dl"),
        "describe honors(S) where graduated(S, C), topten(C).",
    ]);
    assert!(ok);
    assert!(out.contains("[qualified, 1 in db]"), "{out}");
}

#[test]
fn bad_input_fails_cleanly() {
    let (ok, _, stderr) = semrec(&["run", "/nonexistent.dl"]);
    assert!(!ok);
    assert!(stderr.contains("error"));
    let (ok, _, stderr) = semrec(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn why_prints_a_derivation_tree() {
    let (ok, out, _) = semrec(&["why", &sample("genealogy.dl"), "anc(dan, 20, alice, 104)"]);
    assert!(ok);
    assert!(out.contains("[rule 1]"));
    assert!(out.contains("par(dan, 20, carl, 48)   [fact]"));
    let (ok, _, stderr) = semrec(&["why", &sample("genealogy.dl"), "anc(alice, 104, dan, 20)"]);
    assert!(!ok);
    assert!(stderr.contains("not derivable"));
}

#[test]
fn data_dir_loading_and_saving() {
    let data = std::env::temp_dir().join(format!("semrec-cli-data-{}", std::process::id()));
    let out = std::env::temp_dir().join(format!("semrec-cli-out-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data);
    let _ = std::fs::remove_dir_all(&out);
    std::fs::create_dir_all(&data).unwrap();
    std::fs::write(
        data.join("par.csv"),
        "fred,30,george,60\ngeorge,60,harry,95\n",
    )
    .unwrap();
    let (ok, stdout, stderr) = semrec(&[
        "run",
        &sample("genealogy.dl"),
        "--data",
        data.to_str().unwrap(),
        "--query",
        "anc(fred, A, Y, Ya)",
        "--save",
        out.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("anc(fred, 30, harry, 95)."));
    let saved = std::fs::read_to_string(out.join("anc.csv")).unwrap();
    assert!(saved.contains("fred,30,george,60"));
    let _ = std::fs::remove_dir_all(&data);
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn alternative_engines_agree() {
    let file = sample("genealogy.dl");
    let q = "anc(dan, A, Y, Ya)";
    let (ok1, bottom_up, _) = semrec(&["run", &file, "--query", q]);
    let (ok2, topdown, _) = semrec(&["run", &file, "--engine", "topdown", "--query", q]);
    let (ok3, sld, _) = semrec(&["run", &file, "--engine", "sld", "--query", q]);
    assert!(ok1 && ok2 && ok3);
    assert_eq!(bottom_up, topdown);
    assert_eq!(bottom_up, sld);
    let (ok, _, stderr) = semrec(&["run", &file, "--engine", "warp", "--query", q]);
    assert!(!ok);
    assert!(stderr.contains("unknown engine"));
}

#[test]
fn plan_shows_physical_plans() {
    let (ok, out, _) = semrec(&["plan", &sample("genealogy.dl")]);
    assert!(ok);
    assert!(out.contains("plan for anc"));
    assert!(out.contains("index on cols"));
    let (ok, out, _) = semrec(&["plan", &sample("genealogy.dl"), "--optimize"]);
    assert!(ok);
    assert!(
        out.contains("anc@"),
        "optimized plans include aux preds: {out}"
    );
}

#[test]
fn gen_bundle_roundtrips_through_run() {
    let dir = std::env::temp_dir().join(format!("semrec-cli-gen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (ok, out, stderr) = semrec(&["gen", "fanout", dir.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(out.contains("fanout.dl"));
    let program = dir.join("fanout.dl");
    let data = dir.join("fanout-data");
    let (ok, plain, _) = semrec(&[
        "run",
        program.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--query",
        "reach(0, Y)",
    ]);
    assert!(ok);
    let (ok, opt, _) = semrec(&[
        "run",
        program.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--optimize",
        "--query",
        "reach(0, Y)",
    ]);
    assert!(ok);
    assert_eq!(plain, opt);
    let (ok, _, stderr) = semrec(&["gen", "nonsense", dir.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("unknown scenario"));
    let _ = std::fs::remove_dir_all(&dir);
}
