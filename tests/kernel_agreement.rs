//! Kernel-vs-machine agreement: for every `gen` workload generator plus
//! hand-built shapes that exercise negation, builtins, filters,
//! constants in index keys, and multi-recursive rules, evaluation with
//! the batch kernels enabled must produce the identical IDB (tuple for
//! tuple) as the general step machine, under both the `Auto` cutover
//! and `ForceParallel` through the worker pool. A seeded chunk-boundary
//! test pins the gather/sort/group pipeline at delta sizes straddling
//! the chunk constant. Also pins the allocation discipline: the
//! per-worker scratch high-water mark stays bounded by a small constant
//! (the chunk buffers) no matter how many rows a workload derives.

use semrec::datalog::{Pred, Program, Value};
use semrec::engine::{
    Budget, Cutover, Database, Evaluator, Materialized, Stats, Strategy, Tuple, Tx,
};
use semrec::gen::{fanout, genealogy, graphs, org, parse_scenario, university};
use std::collections::BTreeMap;

/// Evaluates under an explicit kernels × cutover configuration and
/// normalizes the full IDB into a deterministic map.
fn idb_map(
    db: &Database,
    prog: &Program,
    kernels: bool,
    cutover: Cutover,
) -> (BTreeMap<Pred, Vec<Tuple>>, Stats) {
    let threads = match cutover {
        Cutover::ForceParallel => 2,
        _ => 1,
    };
    let mut ev = Evaluator::new(db, prog, Strategy::SemiNaive)
        .unwrap()
        .with_parallelism(threads)
        .with_cutover(cutover)
        .with_kernels(kernels);
    ev.run().unwrap();
    let res = ev.finish();
    let map = res
        .idb
        .iter()
        .map(|(&p, rel)| (p, rel.sorted_tuples()))
        .collect();
    (map, res.stats)
}

/// The generator workloads plus handwritten programs covering the plan
/// features batch kernels must *not* mishandle: stratified negation and
/// value-binding builtins (which fall back to the step machine), and the
/// widened kernel-eligible shapes — comparison filters and pure builtin
/// checks compiled to guards, constants in seed and probe index keys,
/// and multi-recursive rules — alongside the pure seed-plus-probe-chain
/// shapes.
fn workloads() -> Vec<(&'static str, Program, Database)> {
    let mut w = Vec::new();
    {
        let s = parse_scenario(org::PROGRAM);
        let db = org::generate(&org::OrgParams {
            employees: 120,
            seed: 21,
            ..org::OrgParams::default()
        });
        w.push(("org", s.program, db));
    }
    {
        let s = parse_scenario(university::PROGRAM);
        let db = university::generate(&university::UniversityParams {
            professors: 30,
            students: 80,
            chain_len: 4,
            seed: 22,
            ..university::UniversityParams::default()
        });
        w.push(("university", s.program, db));
    }
    {
        let s = parse_scenario(genealogy::PROGRAM);
        let db = genealogy::generate(&genealogy::GenealogyParams {
            families: 3,
            depth: 4,
            branching: 3,
            seed: 23,
        });
        w.push(("genealogy", s.program, db));
    }
    {
        // The witness-guard shape: the kernel's existential short-circuit
        // (group-level in batch execution) must not change the fixpoint,
        // only skip duplicate derivations.
        let s = parse_scenario(fanout::PROGRAM);
        let db = fanout::generate(&fanout::FanoutParams {
            nodes: 120,
            extra_edges: 80,
            fanout: 16,
            seed: 24,
        });
        w.push(("fanout", s.program, db));
    }
    {
        let prog: Program = "t(X,Y) :- e(X,Y). t(X,Y) :- e(X,Z), t(Z,Y)."
            .parse()
            .unwrap();
        let db = graphs::random_digraph("e", 120, 400, 25);
        w.push(("random_digraph", prog, db));
    }
    {
        // Multi-recursive closure: two IDB occurrences in one rule, so
        // semi-naive differentiation yields delta variants whose probe
        // depth is itself the recursive predicate — newly kernel-eligible.
        let prog: Program = "t(X,Y) :- e(X,Y). t(X,Z) :- t(X,Y), t(Y,Z)."
            .parse()
            .unwrap();
        let db = graphs::random_digraph("e", 40, 90, 29);
        w.push(("multi_recursive", prog, db));
    }
    {
        // Stratified negation: the Neg step only runs in the machine.
        let prog: Program = "reach(X,Y) :- edge(X,Y).
             reach(X,Y) :- reach(X,Z), edge(Z,Y).
             cut(X,Y) :- node(X), node(Y), !reach(X,Y)."
            .parse()
            .unwrap();
        let mut db = graphs::random_digraph("edge", 40, 80, 26);
        for n in 0..40i64 {
            db.insert("node", vec![Value::Int(n)]);
        }
        w.push(("negation", prog, db));
    }
    {
        // Builtin compute vs builtin check: the value-*binding* form
        // (`plus` solving for Z) is hoisted into the kernel seed phase
        // when no probe precedes it, while the comparison filter and
        // the pure-check form compile to guards — all routes must agree
        // inside one mixed program.
        let prog: Program = "t(X,Y) :- e(X,Y).
             t(X,Y) :- e(X,Z), t(Z,Y).
             succ_t(X,Z) :- t(X,Y), plus(Y, 1, Z).
             big(X,Y) :- t(X,Y), Y > 50.
             incr(X,Y) :- t(X,Y), plus(X, 1, Y)."
            .parse()
            .unwrap();
        let db = graphs::random_digraph("e", 80, 200, 27);
        w.push(("builtins", prog, db));
    }
    {
        // Constants in index keys: a constant seed column makes the seed
        // scan keyed — the batch kernel enumerates one dictionary group —
        // and a constant probe column rides the probe key of a chain.
        let prog: Program = "from3(X) :- e(3, X).
             hop3(X,Y) :- e(X,Z), e(Z,Y), e(3, Z).
             t(X,Y) :- e(X,Y).
             t(X,Y) :- e(X,Z), t(Z,Y)."
            .parse()
            .unwrap();
        let db = graphs::random_digraph("e", 60, 200, 28);
        w.push(("const_keys", prog, db));
    }
    w
}

#[test]
fn kernels_agree_with_machine_on_all_workloads() {
    for (name, prog, db) in workloads() {
        let (base, _) = idb_map(&db, &prog, false, Cutover::Auto);
        assert!(
            base.values().any(|rows| !rows.is_empty()),
            "{name}: workload derived nothing — test is vacuous"
        );
        for cutover in [Cutover::Auto, Cutover::ForceParallel] {
            for kernels in [false, true] {
                let (idb, _) = idb_map(&db, &prog, kernels, cutover);
                assert_eq!(
                    base, idb,
                    "{name}: IDB diverged (kernels={kernels}, cutover={cutover:?})"
                );
            }
        }
    }
}

/// The eligibility widening is real, not just permitted: programs made
/// only of multi-recursive, constant-key, filter-guard, builtin-check
/// and seed-bound binding-builtin shapes execute entirely through
/// kernels (no interpreter firings).
#[test]
fn widened_shapes_fire_kernels_not_interpreter() {
    let shapes: [(&str, &str); 5] = [
        (
            "multi_recursive",
            "t(X,Y) :- e(X,Y). t(X,Z) :- t(X,Y), t(Y,Z).",
        ),
        ("const_seed_key", "from3(X) :- e(3, X)."),
        ("filter_guard", "big(X,Y) :- e(X,Z), Z > 2, e(Z,Y)."),
        ("builtin_check_tail", "incr(X,Y) :- e(X,Y), plus(X, 1, Y)."),
        (
            "binding_builtin_tail",
            "succ(X,Z) :- e(X,Y), plus(Y, 1, Z).",
        ),
    ];
    for (name, src) in shapes {
        let prog: Program = src.parse().unwrap();
        let mut db = graphs::random_digraph("e", 30, 60, 31);
        // The random graph may miss node 3's out-edges; the constant-key
        // shape needs them to derive anything.
        db.insert("e", vec![Value::Int(3), Value::Int(7)]);
        db.insert("e", vec![Value::Int(3), Value::Int(4)]);
        let (idb, stats) = idb_map(&db, &prog, true, Cutover::Auto);
        assert!(
            idb.values().any(|rows| !rows.is_empty()),
            "{name}: derived nothing — test is vacuous"
        );
        assert!(stats.kernel_firings > 0, "{name}: kernel never fired");
        assert_eq!(
            stats.interp_firings, 0,
            "{name}: fell back to the interpreter"
        );
    }
}

/// Memo invalidation across EDB deltas: a materialized fanout fixpoint
/// takes two insert transactions through the incremental path, so each
/// propagation run evaluates over an EDB whose physical rows changed
/// since the previous run built (and warmed) its key→code memos. The
/// maintained IDB must stay tuple-for-tuple equal to a kernels-off
/// from-scratch evaluation of the post-transaction database, and the
/// propagation runs must actually exercise the memo path
/// (`dict_memo_hits > 0`) — stale codes surviving a delta would diverge
/// the answer, not just the counters.
#[test]
fn incremental_edb_deltas_agree_and_memos_stay_sound() {
    let s = parse_scenario(fanout::PROGRAM);
    let mut db = fanout::generate(&fanout::FanoutParams {
        nodes: 150,
        extra_edges: 0,
        fanout: 8,
        seed: 33,
    });
    let mut m = Materialized::new(&db, &s.program, 1).unwrap();
    assert!(m.is_incremental(), "fanout program is in the fragment");
    // Each tx adds two back edges (the chain runs 0→1→…→149, so late
    // nodes gain reach to the early chain): the new facts cascade
    // backward through the predecessor chain, and the two fronts reach
    // shared mid-chain nodes in different rounds — so the propagation
    // run re-resolves the same witness/edge keys across rounds, the
    // case the EDB-stable memo exists for.
    for [(a1, b1), (a2, b2)] in [[(140i64, 10i64), (100i64, 30i64)], [(120, 2), (80, 40)]] {
        let mut tx = Tx::new();
        tx.insert("edge", vec![Value::Int(a1), Value::Int(b1)]);
        tx.insert("edge", vec![Value::Int(a2), Value::Int(b2)]);
        let st = m.apply(&mut db, &tx, Budget::unlimited(), None).unwrap();
        assert!(!st.from_scratch, "insert-only tx takes the delta path");
        assert!(
            st.stats.dict_memo_hits > 0,
            "propagation run never hit the EDB-stable memo (dict={}, rounds={})",
            st.stats.dict_probes,
            st.rounds
        );
        let (base, _) = idb_map(&db, &s.program, false, Cutover::Auto);
        let maintained: BTreeMap<Pred, Vec<Tuple>> = m
            .idb()
            .iter()
            .map(|(&p, rel)| (p, rel.sorted_tuples()))
            .collect();
        assert_eq!(
            base, maintained,
            "maintained IDB diverged from scratch after edge({a1},{b1}), edge({a2},{b2})"
        );
    }
}

/// Dedup pre-size underestimate: rounds of duplicate-heavy derivation
/// teach the drain's unique-fraction EWMA a low estimate, then one
/// round derives a burst of all-unique rows far past the reserved
/// headroom — the dedup table must fall back to its natural mid-insert
/// grow schedule (observable as `dedup_regrows > 0`) without losing or
/// duplicating a tuple versus the step machine.
#[test]
fn dedup_presize_underestimate_agrees_and_regrows() {
    let mut db = Database::default();
    // Stage 0 seeds; stages 1..=5 are duplicate-heavy (each of the 200
    // stage-k+1 nodes is re-derived from 4 distinct stage-k nodes);
    // stage 6 explodes into 100 fresh unique nodes per source — far
    // past both the learned estimate and the one sized jump a consumed
    // reservation buys, so the drain must fall back to natural grows.
    let node = |stage: i64, i: i64| Value::Int(stage * 100_000 + i);
    for i in 0..200i64 {
        db.insert("s0", vec![node(0, i)]);
    }
    for stage in 0..5i64 {
        for i in 0..200i64 {
            for j in 0..4i64 {
                // In-degree 4 per target: derived = 800, inserted = 200.
                db.insert(
                    "hop",
                    vec![node(stage, (i + 53 * j) % 200), node(stage + 1, i)],
                );
            }
        }
    }
    for i in 0..200i64 {
        for j in 0..100i64 {
            db.insert("hop", vec![node(5, i), node(6, i * 100 + j)]);
        }
    }
    let prog: Program = "p(Y) :- s0(Y). p(Z) :- p(Y), hop(Y, Z).".parse().unwrap();
    let (base, _) = idb_map(&db, &prog, false, Cutover::Auto);
    let rows: usize = base.values().map(Vec::len).sum();
    assert_eq!(
        rows,
        6 * 200 + 20_000,
        "stages 0..=5 contribute 200 each, stage 6 its 20k"
    );
    let (idb, stats) = idb_map(&db, &prog, true, Cutover::Auto);
    assert_eq!(base, idb, "IDB diverged under the underestimate");
    assert!(stats.kernel_firings > 0, "kernel never fired");
    assert!(
        stats.dedup_regrows > 0,
        "the all-unique burst should outrun the EWMA reservation \
         (derived={}, inserted={})",
        stats.derived,
        stats.inserted
    );
}

/// Chunk-boundary pinning: the batch pipeline gathers seed rows in
/// fixed-size chunks, so off-by-one bugs live exactly at delta sizes of
/// 1, chunk−1, chunk, chunk+1 and a few whole chunks. Build a seed
/// relation of each size (keys from a seeded LCG so groups straddle
/// chunk edges), join it through a probe, and require tuple-for-tuple
/// agreement with the step machine under both cutovers.
#[test]
fn chunk_boundary_sizes_agree() {
    const CHUNK: usize = 1024; // mirrors the executor's KERNEL_CHUNK
    for n in [1, CHUNK - 1, CHUNK, CHUNK + 1, 3 * CHUNK] {
        let mut db = Database::default();
        let mut state = 0x2545_f491_4f6c_dd1du64;
        for i in 0..n {
            // xorshift64*: deterministic, scattered keys with repeats.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = (state % 97) as i64;
            db.insert("e", vec![Value::Int(i as i64), Value::Int(key)]);
        }
        for j in 0..97i64 {
            db.insert("w", vec![Value::Int(j), Value::Int(j + 1)]);
            if j % 3 == 0 {
                db.insert("w", vec![Value::Int(j), Value::Int(j + 2)]);
            }
        }
        let prog: Program = "out(X,Z) :- e(X,Y), w(Y,Z).".parse().unwrap();
        let (base, _) = idb_map(&db, &prog, false, Cutover::Auto);
        assert!(
            base.values().any(|rows| !rows.is_empty()),
            "n={n}: derived nothing — test is vacuous"
        );
        for cutover in [Cutover::Auto, Cutover::ForceParallel] {
            let (idb, stats) = idb_map(&db, &prog, true, cutover);
            assert_eq!(base, idb, "n={n}: IDB diverged (cutover={cutover:?})");
            assert!(stats.kernel_firings > 0, "n={n}: kernel never fired");
        }
    }
}

/// The allocation discipline the kernels claim: task execution does
/// zero per-derived-row heap allocation, so the per-worker scratch
/// high-water mark is a function of plan shape and the fixed chunk
/// constant (the gather buffer is KERNEL_CHUNK entries), never of data
/// size. Deriving ~100k rows must leave the high-water mark under the
/// chunk budget.
#[test]
fn scratch_high_water_is_bounded_by_plan_shape_not_data() {
    let s = parse_scenario(fanout::PROGRAM);
    let db = fanout::generate(&fanout::FanoutParams {
        nodes: 300,
        extra_edges: 160,
        fanout: 8,
        seed: 42,
    });
    for kernels in [true, false] {
        let (idb, stats) = idb_map(&db, &s.program, kernels, Cutover::Auto);
        let rows: usize = idb.values().map(Vec::len).sum();
        assert!(rows > 80_000, "expected a large IDB, got {rows} rows");
        assert!(
            stats.scratch_hw_bytes > 0,
            "scratch telemetry never reported (kernels={kernels})"
        );
        // 1024-entry chunk of packed u64 hash/row-id words = 8 KiB,
        // plus the key arena and frames; 32 KiB bounds it with headroom
        // while still failing fast if any buffer ever scales with data.
        assert!(
            stats.scratch_hw_bytes <= 32 * 1024,
            "scratch high-water {}B grew with data (kernels={kernels})",
            stats.scratch_hw_bytes
        );
    }
}
