//! Kernel-vs-machine agreement: for every `gen` workload generator plus
//! hand-built shapes that exercise negation, builtins, and constants in
//! index keys, evaluation with the specialized linear-rule kernels
//! enabled must produce the identical IDB (tuple for tuple) as the
//! general step machine, under both the `Auto` cutover and
//! `ForceParallel` through the worker pool. Also pins the allocation
//! discipline: the per-worker scratch high-water mark stays bounded by a
//! small constant no matter how many rows a workload derives.

use semrec::datalog::{Pred, Program, Value};
use semrec::engine::{Cutover, Database, Evaluator, Stats, Strategy, Tuple};
use semrec::gen::{fanout, genealogy, graphs, org, parse_scenario, university};
use std::collections::BTreeMap;

/// Evaluates under an explicit kernels × cutover configuration and
/// normalizes the full IDB into a deterministic map.
fn idb_map(
    db: &Database,
    prog: &Program,
    kernels: bool,
    cutover: Cutover,
) -> (BTreeMap<Pred, Vec<Tuple>>, Stats) {
    let threads = match cutover {
        Cutover::ForceParallel => 2,
        _ => 1,
    };
    let mut ev = Evaluator::new(db, prog, Strategy::SemiNaive)
        .unwrap()
        .with_parallelism(threads)
        .with_cutover(cutover)
        .with_kernels(kernels);
    ev.run().unwrap();
    let res = ev.finish();
    let map = res
        .idb
        .iter()
        .map(|(&p, rel)| (p, rel.sorted_tuples()))
        .collect();
    (map, res.stats)
}

/// The generator workloads plus handwritten programs covering the plan
/// features kernels must *not* mishandle: stratified negation, builtin
/// computes, filters, and constants in both seed and probe index keys
/// (all of which fall back to the step machine), alongside the pure
/// seed-plus-probe-chain shapes kernels specialize.
fn workloads() -> Vec<(&'static str, Program, Database)> {
    let mut w = Vec::new();
    {
        let s = parse_scenario(org::PROGRAM);
        let db = org::generate(&org::OrgParams {
            employees: 120,
            seed: 21,
            ..org::OrgParams::default()
        });
        w.push(("org", s.program, db));
    }
    {
        let s = parse_scenario(university::PROGRAM);
        let db = university::generate(&university::UniversityParams {
            professors: 30,
            students: 80,
            chain_len: 4,
            seed: 22,
            ..university::UniversityParams::default()
        });
        w.push(("university", s.program, db));
    }
    {
        let s = parse_scenario(genealogy::PROGRAM);
        let db = genealogy::generate(&genealogy::GenealogyParams {
            families: 3,
            depth: 4,
            branching: 3,
            seed: 23,
        });
        w.push(("genealogy", s.program, db));
    }
    {
        // The witness-guard shape: the kernel's existential short-circuit
        // must not change the fixpoint, only skip duplicate derivations.
        let s = parse_scenario(fanout::PROGRAM);
        let db = fanout::generate(&fanout::FanoutParams {
            nodes: 120,
            extra_edges: 80,
            fanout: 16,
            seed: 24,
        });
        w.push(("fanout", s.program, db));
    }
    {
        let prog: Program = "t(X,Y) :- e(X,Y). t(X,Y) :- e(X,Z), t(Z,Y)."
            .parse()
            .unwrap();
        let db = graphs::random_digraph("e", 120, 400, 25);
        w.push(("random_digraph", prog, db));
    }
    {
        // Stratified negation: the Neg step only runs in the machine.
        let prog: Program = "reach(X,Y) :- edge(X,Y).
             reach(X,Y) :- reach(X,Z), edge(Z,Y).
             cut(X,Y) :- node(X), node(Y), !reach(X,Y)."
            .parse()
            .unwrap();
        let mut db = graphs::random_digraph("edge", 40, 80, 26);
        for n in 0..40i64 {
            db.insert("node", vec![Value::Int(n)]);
        }
        w.push(("negation", prog, db));
    }
    {
        // Builtin compute + comparison filter: both disqualify a kernel,
        // so these rules pin the machine fallback inside a mixed program
        // where the recursive rule still kernelizes.
        let prog: Program = "t(X,Y) :- e(X,Y).
             t(X,Y) :- e(X,Z), t(Z,Y).
             succ_t(X,Z) :- t(X,Y), plus(Y, 1, Z).
             big(X,Y) :- t(X,Y), Y > 50."
            .parse()
            .unwrap();
        let db = graphs::random_digraph("e", 80, 200, 27);
        w.push(("builtins", prog, db));
    }
    {
        // Constants in index keys: a constant seed column makes the seed
        // scan keyed (no kernel); a constant probe column rides the probe
        // key of a kernelizable chain.
        let prog: Program = "from3(X) :- e(3, X).
             hop3(X,Y) :- e(X,Z), e(Z,Y), e(3, Z).
             t(X,Y) :- e(X,Y).
             t(X,Y) :- e(X,Z), t(Z,Y)."
            .parse()
            .unwrap();
        let db = graphs::random_digraph("e", 60, 200, 28);
        w.push(("const_keys", prog, db));
    }
    w
}

#[test]
fn kernels_agree_with_machine_on_all_workloads() {
    for (name, prog, db) in workloads() {
        let (base, _) = idb_map(&db, &prog, false, Cutover::Auto);
        assert!(
            base.values().any(|rows| !rows.is_empty()),
            "{name}: workload derived nothing — test is vacuous"
        );
        for cutover in [Cutover::Auto, Cutover::ForceParallel] {
            for kernels in [false, true] {
                let (idb, _) = idb_map(&db, &prog, kernels, cutover);
                assert_eq!(
                    base, idb,
                    "{name}: IDB diverged (kernels={kernels}, cutover={cutover:?})"
                );
            }
        }
    }
}

/// The allocation discipline the kernels PR claims: task execution does
/// zero per-derived-row heap allocation, so the per-worker scratch
/// high-water mark is a function of plan shape (slot count, probe-chain
/// key widths), not of data size. Deriving ~100k rows must leave the
/// high-water mark at a few hundred bytes.
#[test]
fn scratch_high_water_is_bounded_by_plan_shape_not_data() {
    let s = parse_scenario(fanout::PROGRAM);
    let db = fanout::generate(&fanout::FanoutParams {
        nodes: 300,
        extra_edges: 160,
        fanout: 8,
        seed: 42,
    });
    for kernels in [true, false] {
        let (idb, stats) = idb_map(&db, &s.program, kernels, Cutover::Auto);
        let rows: usize = idb.values().map(Vec::len).sum();
        assert!(rows > 80_000, "expected a large IDB, got {rows} rows");
        assert!(
            stats.scratch_hw_bytes > 0,
            "scratch telemetry never reported (kernels={kernels})"
        );
        assert!(
            stats.scratch_hw_bytes <= 4096,
            "scratch high-water {}B grew with data (kernels={kernels})",
            stats.scratch_hw_bytes
        );
    }
}
