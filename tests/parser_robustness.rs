//! Robustness: the parser must never panic — any input yields `Ok` or a
//! positioned error — and everything it accepts must round-trip through
//! `Display`.
//!
//! Seeded-loop rewrite of a former `proptest` suite (offline-build
//! policy: no registry deps for `cargo test -q`).

use semrec::datalog::parser::{parse_atom, parse_unit};
use semrec::gen::rng::Rng;

/// A printable-character soup of random length.
fn byte_soup(rng: &mut Rng) -> String {
    let len = rng.gen_range(0..200usize);
    (0..len)
        .map(|_| {
            // Mostly ASCII printables, with some multi-byte chars mixed in.
            match rng.gen_range(0..20usize) {
                0 => 'λ',
                1 => '→',
                2 => '\u{1F600}',
                3 => '\t',
                4 => '\n',
                _ => rng.gen_range(0x20..0x7Fi64) as u8 as char,
            }
        })
        .collect()
}

/// Arbitrary byte soup never panics the parser.
#[test]
fn parse_unit_never_panics() {
    for case in 0u64..256 {
        let mut rng = Rng::seed_from_u64(0x9A12 + case);
        let src = byte_soup(&mut rng);
        let _ = parse_unit(&src);
    }
}

/// Syntax-shaped soup (drawn from the token alphabet) never panics and
/// round-trips when accepted.
#[test]
fn tokenish_inputs_roundtrip() {
    const ALPHABET: &[&str] = &[
        "p", "q", "X", "Y", "42", "(", ")", ",", ".", ":-", "->", "ic", ":", "!", "<=", "=",
        "\"s\"",
    ];
    for case in 0u64..256 {
        let mut rng = Rng::seed_from_u64(0xAB34 + case);
        let n = rng.gen_range(0..24usize);
        let tokens: Vec<&str> = (0..n)
            .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())])
            .collect();
        let src = tokens.join(" ");
        if let Ok(unit) = parse_unit(&src) {
            // Whatever parsed must re-parse identically from its Display.
            let rendered: String = unit
                .rules
                .iter()
                .map(|r| format!("{r}\n"))
                .chain(unit.facts.iter().map(|f| format!("{f}.\n")))
                .chain(unit.constraints.iter().map(|c| format!("{c}\n")))
                .collect();
            let back = parse_unit(&rendered).expect("display must re-parse");
            assert_eq!(unit.rules, back.rules, "case {case}: {src}");
            assert_eq!(unit.facts, back.facts, "case {case}: {src}");
            assert_eq!(
                unit.constraints.len(),
                back.constraints.len(),
                "case {case}: {src}"
            );
        }
    }
}

/// Atom parsing is total (no panics) on arbitrary input.
#[test]
fn parse_atom_never_panics() {
    for case in 0u64..256 {
        let mut rng = Rng::seed_from_u64(0xBC56 + case);
        let src = byte_soup(&mut rng);
        let _ = parse_atom(&src);
    }
}
