//! Robustness: the parser must never panic — any input yields `Ok` or a
//! positioned error — and everything it accepts must round-trip through
//! `Display`.
//!
//! Seeded-loop rewrite of a former `proptest` suite (offline-build
//! policy: no registry deps for `cargo test -q`).

use semrec::datalog::parser::{parse_atom, parse_unit};
use semrec::engine::{int_tuple, tx_to_stream, Tx, TxStreamEvent, TxStreamParser};
use semrec::gen::rng::Rng;

/// A printable-character soup of random length.
fn byte_soup(rng: &mut Rng) -> String {
    let len = rng.gen_range(0..200usize);
    (0..len)
        .map(|_| {
            // Mostly ASCII printables, with some multi-byte chars mixed in.
            match rng.gen_range(0..20usize) {
                0 => 'λ',
                1 => '→',
                2 => '\u{1F600}',
                3 => '\t',
                4 => '\n',
                _ => rng.gen_range(0x20..0x7Fi64) as u8 as char,
            }
        })
        .collect()
}

/// Arbitrary byte soup never panics the parser.
#[test]
fn parse_unit_never_panics() {
    for case in 0u64..256 {
        let mut rng = Rng::seed_from_u64(0x9A12 + case);
        let src = byte_soup(&mut rng);
        let _ = parse_unit(&src);
    }
}

/// Syntax-shaped soup (drawn from the token alphabet) never panics and
/// round-trips when accepted.
#[test]
fn tokenish_inputs_roundtrip() {
    const ALPHABET: &[&str] = &[
        "p", "q", "X", "Y", "42", "(", ")", ",", ".", ":-", "->", "ic", ":", "!", "<=", "=",
        "\"s\"",
    ];
    for case in 0u64..256 {
        let mut rng = Rng::seed_from_u64(0xAB34 + case);
        let n = rng.gen_range(0..24usize);
        let tokens: Vec<&str> = (0..n)
            .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())])
            .collect();
        let src = tokens.join(" ");
        if let Ok(unit) = parse_unit(&src) {
            // Whatever parsed must re-parse identically from its Display.
            let rendered: String = unit
                .rules
                .iter()
                .map(|r| format!("{r}\n"))
                .chain(unit.facts.iter().map(|f| format!("{f}.\n")))
                .chain(unit.constraints.iter().map(|c| format!("{c}\n")))
                .collect();
            let back = parse_unit(&rendered).expect("display must re-parse");
            assert_eq!(unit.rules, back.rules, "case {case}: {src}");
            assert_eq!(unit.facts, back.facts, "case {case}: {src}");
            assert_eq!(
                unit.constraints.len(),
                back.constraints.len(),
                "case {case}: {src}"
            );
        }
    }
}

/// Atom parsing is total (no panics) on arbitrary input.
#[test]
fn parse_atom_never_panics() {
    for case in 0u64..256 {
        let mut rng = Rng::seed_from_u64(0xBC56 + case);
        let src = byte_soup(&mut rng);
        let _ = parse_atom(&src);
    }
}

// ---------------------------------------------------------------------
// Streaming transaction parser (`semrec serve`'s write protocol): a
// malformed line condemns exactly the transaction it arrived in, with a
// typed, line-numbered error; the stream itself stays alive and the
// next transaction parses cleanly.
// ---------------------------------------------------------------------

/// Directed: the malformed line errors immediately, later ops in the
/// doomed transaction are swallowed, the `commit.` re-surfaces the same
/// error, and the following transaction is unaffected.
#[test]
fn stream_malformed_line_condemns_one_transaction() {
    let mut p = TxStreamParser::new();
    assert!(matches!(p.feed("+edge(1, 2)."), Ok(TxStreamEvent::Queued)));
    let err = p.feed("+edge(1,").expect_err("unterminated op must reject");
    assert_eq!(err.line, 2, "error carries the stream line number");
    assert!(p.is_poisoned());
    // Ops after the poison are swallowed, not silently committed.
    assert!(matches!(p.feed("+edge(7, 8)."), Ok(TxStreamEvent::Queued)));
    let at_commit = p.feed("commit.").expect_err("doomed tx fails at commit");
    assert_eq!(at_commit.line, 2, "commit re-reports the original error");
    // The stream survives: the next transaction is clean.
    assert!(!p.is_poisoned());
    assert!(matches!(p.feed("+edge(3, 4)."), Ok(TxStreamEvent::Queued)));
    match p.feed("commit.") {
        Ok(TxStreamEvent::Committed(Some(tx))) => {
            assert_eq!(tx_to_stream(&tx), "+edge(3, 4).\ncommit.\n");
        }
        other => panic!("expected a clean commit, got {other:?}"),
    }
}

/// Every op `tx_to_stream` renders feeds back through the stream parser
/// to an identical transaction (the WAL replay invariant).
#[test]
fn stream_roundtrips_tx_to_stream() {
    for case in 0u64..64 {
        let mut rng = Rng::seed_from_u64(0xCD78 + case);
        let mut tx = Tx::new();
        for _ in 0..rng.gen_range(1..8usize) {
            let t = int_tuple(&[rng.gen_range(0..50i64), rng.gen_range(0..50i64)]);
            if rng.gen_bool(0.7) {
                tx.insert("edge", t);
            } else {
                tx.delete("edge", t);
            }
        }
        let rendered = tx_to_stream(&tx);
        let mut p = TxStreamParser::new();
        let mut committed = Vec::new();
        for line in rendered.lines() {
            match p.feed(line).expect("rendered stream must parse") {
                TxStreamEvent::Queued => {}
                TxStreamEvent::Committed(done) => committed.push(done),
            }
        }
        assert_eq!(committed.len(), 1, "case {case}: exactly one commit");
        let back = committed.pop().unwrap().expect("non-empty tx");
        assert_eq!(
            tx_to_stream(&back),
            rendered,
            "case {case}: stream round-trip"
        );
    }
}

/// Seeded soup: random valid ops, garbage lines, comments, and commits
/// interleaved. Invariants: `feed` never panics, every error is typed
/// with the exact 1-based line number of a garbage line, a transaction
/// containing garbage never commits, and a garbage-free transaction
/// always commits cleanly — no matter what came before it.
#[test]
fn stream_soup_rejects_typed_and_recovers() {
    for case in 0u64..128 {
        let mut rng = Rng::seed_from_u64(0xDE9A + case);
        let mut p = TxStreamParser::new();
        let mut line_no = 0u64;
        let mut tx_dirty = false;
        let mut saw_reject = false;
        let mut saw_commit = false;
        for _ in 0..rng.gen_range(10..60usize) {
            line_no += 1;
            let kind = rng.gen_range(0..10usize);
            match kind {
                // Garbage: soup that cannot be a tx op. Prefix with '+'
                // so it cannot be mistaken for a blank/comment no-op.
                0 | 1 => {
                    let soup = format!("+({}", byte_soup(&mut rng).replace('\n', " "));
                    let was_poisoned = p.is_poisoned();
                    let err = p.feed(&soup).err();
                    if was_poisoned {
                        assert!(err.is_none(), "case {case}: doomed tx swallows ops");
                    } else {
                        let err = err.expect("garbage must reject");
                        assert_eq!(err.line, line_no, "case {case}: line number");
                        saw_reject = true;
                    }
                    tx_dirty = true;
                }
                // Commit: doomed iff the tx saw garbage.
                2 | 3 => match p.feed("commit.") {
                    Ok(TxStreamEvent::Committed(_)) => {
                        assert!(!tx_dirty, "case {case}: dirty tx must not commit");
                        saw_commit = true;
                        tx_dirty = false;
                    }
                    Err(e) => {
                        assert!(tx_dirty, "case {case}: clean tx must commit");
                        assert!(e.line < line_no, "case {case}: error cites the bad line");
                        tx_dirty = false;
                    }
                    Ok(TxStreamEvent::Queued) => panic!("case {case}: commit. must commit"),
                },
                // Comment / blank: no-ops in any state.
                4 => assert!(matches!(p.feed("% noise"), Ok(TxStreamEvent::Queued))),
                // Valid op.
                _ => {
                    let l = format!(
                        "{}p({}, {}).",
                        if rng.gen_bool(0.8) { '+' } else { '-' },
                        rng.gen_range(0..9i64),
                        rng.gen_range(0..9i64)
                    );
                    assert!(
                        matches!(p.feed(&l), Ok(TxStreamEvent::Queued)),
                        "case {case}: valid op must queue"
                    );
                }
            }
        }
        // Make every case end by proving recovery end-to-end: flush
        // whatever transaction is in progress (doomed or not), then a
        // fresh one must commit cleanly.
        let _ = p.feed("commit.");
        p.feed("+p(1, 1).").expect("recovered stream accepts ops");
        assert!(matches!(
            p.feed("commit."),
            Ok(TxStreamEvent::Committed(Some(_)))
        ));
        let _ = (saw_reject, saw_commit);
    }
}
