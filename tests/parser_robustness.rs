//! Robustness: the parser must never panic — any input yields `Ok` or a
//! positioned error — and everything it accepts must round-trip through
//! `Display`.

use proptest::prelude::*;
use semrec::datalog::parser::{parse_unit, parse_atom};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics the parser.
    #[test]
    fn parse_unit_never_panics(src in "\\PC*") {
        let _ = parse_unit(&src);
    }

    /// Syntax-shaped soup (drawn from the token alphabet) never panics and
    /// round-trips when accepted.
    #[test]
    fn tokenish_inputs_roundtrip(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("p".to_string()),
                Just("q".to_string()),
                Just("X".to_string()),
                Just("Y".to_string()),
                Just("42".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(",".to_string()),
                Just(".".to_string()),
                Just(":-".to_string()),
                Just("->".to_string()),
                Just("ic".to_string()),
                Just(":".to_string()),
                Just("!".to_string()),
                Just("<=".to_string()),
                Just("=".to_string()),
                Just("\"s\"".to_string()),
            ],
            0..24,
        ),
    ) {
        let src = tokens.join(" ");
        if let Ok(unit) = parse_unit(&src) {
            // Whatever parsed must re-parse identically from its Display.
            let rendered: String = unit
                .rules
                .iter()
                .map(|r| format!("{r}\n"))
                .chain(unit.facts.iter().map(|f| format!("{f}.\n")))
                .chain(unit.constraints.iter().map(|c| format!("{c}\n")))
                .collect();
            let back = parse_unit(&rendered).expect("display must re-parse");
            prop_assert_eq!(unit.rules, back.rules);
            prop_assert_eq!(unit.facts, back.facts);
            prop_assert_eq!(unit.constraints.len(), back.constraints.len());
        }
    }

    /// Atom parsing is total (no panics) on arbitrary input.
    #[test]
    fn parse_atom_never_panics(src in "\\PC*") {
        let _ = parse_atom(&src);
    }
}
