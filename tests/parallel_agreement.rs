//! Serial-vs-parallel agreement: for every `gen` workload generator and
//! both fixpoint strategies, evaluation with 1, 2, and 4 worker threads
//! must produce the identical IDB (compared as `BTreeMap`-normalized
//! sorted-tuple maps) and identical workload counters.

use semrec::datalog::{Pred, Program};
use semrec::engine::{Cutover, Database, Evaluator, Strategy, Tuple};
use semrec::gen::{fanout, genealogy, graphs, org, parse_scenario, university};
use std::collections::BTreeMap;

/// Evaluates and normalizes the full IDB into a deterministic map.
fn idb_map(
    db: &Database,
    prog: &Program,
    strategy: Strategy,
    threads: usize,
) -> (BTreeMap<Pred, Vec<Tuple>>, semrec::engine::Stats) {
    let mut ev = Evaluator::new(db, prog, strategy)
        .unwrap()
        .with_parallelism(threads);
    ev.run().unwrap();
    finish(ev)
}

/// Like [`idb_map`], but forces every round through the sharded pool
/// path with an explicit merge-shard count (Auto cutover would route
/// small rounds — or single-core machines — to the control thread and
/// the sharded merge would never execute).
fn idb_map_sharded(
    db: &Database,
    prog: &Program,
    threads: usize,
    shards: usize,
) -> (BTreeMap<Pred, Vec<Tuple>>, semrec::engine::Stats) {
    let mut ev = Evaluator::new(db, prog, Strategy::SemiNaive)
        .unwrap()
        .with_parallelism(threads)
        .with_shards(shards)
        .with_cutover(Cutover::ForceParallel);
    ev.run().unwrap();
    let ps = ev.pool_stats();
    assert!(
        ps.parallel_rounds > 0,
        "ForceParallel must exercise the pool (shards={shards}): {ps:?}"
    );
    assert_eq!(ps.shards, shards, "shard override not honored: {ps:?}");
    finish(ev)
}

fn finish(ev: Evaluator<'_>) -> (BTreeMap<Pred, Vec<Tuple>>, semrec::engine::Stats) {
    let res = ev.finish();
    let map = res
        .idb
        .iter()
        .map(|(&p, rel)| (p, rel.sorted_tuples()))
        .collect();
    (map, res.stats)
}

fn workloads() -> Vec<(&'static str, Program, Database)> {
    let mut w = Vec::new();
    {
        let s = parse_scenario(org::PROGRAM);
        let db = org::generate(&org::OrgParams {
            employees: 120,
            seed: 11,
            ..org::OrgParams::default()
        });
        w.push(("org", s.program, db));
    }
    {
        let s = parse_scenario(university::PROGRAM);
        let db = university::generate(&university::UniversityParams {
            professors: 30,
            students: 80,
            chain_len: 4,
            seed: 12,
            ..university::UniversityParams::default()
        });
        w.push(("university", s.program, db));
    }
    {
        let s = parse_scenario(genealogy::PROGRAM);
        let db = genealogy::generate(&genealogy::GenealogyParams {
            families: 3,
            depth: 4,
            branching: 3,
            seed: 13,
        });
        w.push(("genealogy", s.program, db));
    }
    {
        let s = parse_scenario(fanout::PROGRAM);
        let db = fanout::generate(&fanout::FanoutParams {
            nodes: 200,
            extra_edges: 300,
            fanout: 2,
            seed: 14,
        });
        w.push(("fanout", s.program, db));
    }
    {
        let prog: Program = "t(X,Y) :- e(X,Y). t(X,Y) :- e(X,Z), t(Z,Y)."
            .parse()
            .unwrap();
        let db = graphs::random_digraph("e", 120, 400, 15);
        w.push(("random_digraph", prog, db));
    }
    w
}

#[test]
fn parallel_agrees_with_serial_on_all_generators() {
    for (name, prog, db) in workloads() {
        for strategy in [Strategy::Naive, Strategy::SemiNaive] {
            let (base, base_stats) = idb_map(&db, &prog, strategy, 1);
            assert!(
                base.values().any(|rows| !rows.is_empty()),
                "{name}: workload derived nothing — test is vacuous"
            );
            for threads in [2, 4] {
                let (par, par_stats) = idb_map(&db, &prog, strategy, threads);
                assert_eq!(
                    base, par,
                    "{name} ({strategy:?}): IDB diverged at {threads} threads"
                );
                // Partitioning must not change the amount of work, only
                // where it runs.
                assert_eq!(
                    base_stats.derived, par_stats.derived,
                    "{name} ({strategy:?}): derived drifted at {threads} threads"
                );
                assert_eq!(
                    base_stats.rows_scanned, par_stats.rows_scanned,
                    "{name} ({strategy:?}): rows_scanned drifted at {threads} threads"
                );
                assert_eq!(
                    base_stats.inserted, par_stats.inserted,
                    "{name} ({strategy:?}): inserted drifted at {threads} threads"
                );
            }
        }
    }
}

/// Sharded-merge agreement: hash-partitioning the IDB tuple space into
/// K merge shards must not change the fixpoint. Pins IDB equality (and
/// work-counter invariance) across K ∈ {1, 2, 4, 8} against the serial
/// baseline on the genealogy and fanout generators.
#[test]
fn sharded_merge_agrees_across_shard_counts() {
    let mut targets = Vec::new();
    {
        let s = parse_scenario(genealogy::PROGRAM);
        let db = genealogy::generate(&genealogy::GenealogyParams {
            families: 3,
            depth: 4,
            branching: 3,
            seed: 13,
        });
        targets.push(("genealogy", s.program, db));
    }
    {
        let s = parse_scenario(fanout::PROGRAM);
        let db = fanout::generate(&fanout::FanoutParams {
            nodes: 200,
            extra_edges: 300,
            fanout: 2,
            seed: 14,
        });
        targets.push(("fanout", s.program, db));
    }
    for (name, prog, db) in targets {
        let (base, base_stats) = idb_map(&db, &prog, Strategy::SemiNaive, 1);
        assert!(
            base.values().any(|rows| !rows.is_empty()),
            "{name}: workload derived nothing — test is vacuous"
        );
        for shards in [1usize, 2, 4, 8] {
            let (sharded, stats) = idb_map_sharded(&db, &prog, 4, shards);
            assert_eq!(base, sharded, "{name}: IDB diverged at K={shards} shards");
            assert_eq!(
                base_stats.derived, stats.derived,
                "{name}: derived drifted at K={shards}"
            );
            assert_eq!(
                base_stats.inserted, stats.inserted,
                "{name}: inserted drifted at K={shards}"
            );
            assert_eq!(
                base_stats.iterations, stats.iterations,
                "{name}: round count drifted at K={shards}"
            );
        }
    }
}
