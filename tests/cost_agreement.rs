//! Agreement tests for the cost-based route planner: the size-bound
//! cardinality estimates must stay within an order of magnitude of the
//! true materialization on every generator workload, the cost-chosen
//! route must never run meaningfully slower than the fixed rewrite
//! ladder, and the statistics cache must be re-consulted (not reused
//! stale) when transactions invalidate it.

use semrec::core::optimizer::Optimizer;
use semrec::core::route_alternatives;
use semrec::datalog::Value::Int;
use semrec::engine::{evaluate, AlternativeKind, CostMemo, EdbStats, Strategy, Tx};
use semrec::gen::{fanout, flights, genealogy, org, parse_scenario, university};
use std::time::Instant;

/// Every gen workload at its default size, as (name, database, program
/// source) triples.
fn workloads() -> Vec<(&'static str, semrec::engine::Database, &'static str)> {
    vec![
        (
            "fanout",
            fanout::generate(&fanout::FanoutParams::default()),
            fanout::PROGRAM,
        ),
        (
            "flights",
            flights::generate(&flights::FlightsParams::default()),
            flights::PROGRAM,
        ),
        (
            "genealogy",
            genealogy::generate(&genealogy::GenealogyParams::default()),
            genealogy::PROGRAM,
        ),
        (
            "org",
            org::generate(&org::OrgParams::default()),
            org::PROGRAM,
        ),
        (
            "university",
            university::generate(&university::UniversityParams::default()),
            university::PROGRAM,
        ),
    ]
}

/// The planner's row estimate for the chosen route stays within 10x of
/// the actual materialized cardinality on every generator workload —
/// the bound the routing bench gate (`--assert-routing`) enforces on
/// the bench sizes, checked here at the default sizes.
#[test]
fn estimates_within_10x_of_actual_on_every_gen_workload() {
    for (name, db, src) in workloads() {
        let s = parse_scenario(src);
        let plan = Optimizer::new(&s.program)
            .with_constraints(&s.constraints)
            .run()
            .unwrap_or_else(|e| panic!("{name}: optimize failed: {e}"));
        let (alts, _) = route_alternatives(&s.program, &plan, None);
        let memo = CostMemo::build(&db, &mut EdbStats::new(), alts)
            .unwrap_or_else(|e| panic!("{name}: pricing failed: {e}"));
        let choice = memo.choice();
        let res = evaluate(&db, &memo.best().program, Strategy::SemiNaive)
            .unwrap_or_else(|e| panic!("{name}: eval failed: {e}"));
        let actual: u64 = res.idb.values().map(|r| r.len() as u64).sum();
        let ratio = choice.misprediction(actual);
        assert!(
            ratio.is_finite() && ratio <= 10.0,
            "{name}: chose {} predicting {} rows, actual {actual} — {ratio:.2}x off",
            choice.chosen.name(),
            choice.predicted_rows,
        );
    }
}

/// The cost-chosen route is never slower than the fixed rewrite ladder
/// beyond noise: interleaved timed medians, with a generous tolerance
/// because CI machines drift (the routing bench enforces the tight
/// bound; this is the correctness-level backstop).
#[test]
fn cost_chosen_route_is_not_slower_than_the_ladder() {
    let s = parse_scenario(fanout::PROGRAM);
    let db = fanout::generate(&fanout::FanoutParams {
        nodes: 150,
        extra_edges: 80,
        fanout: 32,
        seed: 7,
    });
    let plan = Optimizer::new(&s.program)
        .with_constraints(&s.constraints)
        .run()
        .expect("optimize");
    let (alts, _) = route_alternatives(&s.program, &plan, None);
    let memo = CostMemo::build(&db, &mut EdbStats::new(), alts).expect("price");
    // On the witness-saturated fanout workload the residue-pushed
    // program strictly dominates; the planner must find that.
    assert_eq!(memo.best().kind, AlternativeKind::ResiduePushed);
    let routed = memo.best().program.clone();
    let ladder = plan.program.clone();
    evaluate(&db, &routed, Strategy::SemiNaive).expect("warm routed");
    evaluate(&db, &ladder, Strategy::SemiNaive).expect("warm ladder");
    let (mut r_ms, mut l_ms) = (Vec::new(), Vec::new());
    for _ in 0..5 {
        let t = Instant::now();
        evaluate(&db, &routed, Strategy::SemiNaive).expect("routed");
        r_ms.push(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        evaluate(&db, &ladder, Strategy::SemiNaive).expect("ladder");
        l_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    r_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    l_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let (routed_med, ladder_med) = (r_ms[r_ms.len() / 2], l_ms[l_ms.len() / 2]);
    assert!(
        routed_med <= ladder_med * 1.5 + 5.0,
        "cost-chosen route {routed_med:.2} ms vs ladder {ladder_med:.2} ms"
    );
}

/// Statistics invalidation under transactions: the maintained query
/// re-consults the planner when the EDB drifts past the 2x threshold
/// and when an IC violation degrades (then clears) the route — each
/// consultation reads fresh generation-keyed statistics, so the row
/// estimate tracks the grown database instead of the one priced at
/// materialization time.
#[test]
fn stats_invalidated_and_replanned_under_transactions() {
    let s = parse_scenario(fanout::PROGRAM);
    let db = fanout::generate(&fanout::FanoutParams {
        nodes: 30,
        extra_edges: 15,
        fanout: 3,
        seed: 11,
    });
    let mut q = semrec::core::maintain::MaintainedQuery::new(
        db,
        &s.program,
        &s.constraints,
        semrec::core::optimizer::OptimizerConfig::default(),
        1,
    )
    .expect("maintain");
    assert_eq!(q.replans(), 1, "materialization consults the planner once");
    let first = q.route_choice().expect("initial choice").clone();
    assert!(q.edb_stats().cached_entries() > 0, "stats cache primed");

    // Grow the EDB well past 2x in IC-respecting pairs (every new edge
    // target gets a witness, so ic1 keeps holding and the only replan
    // trigger is drift).
    let base_rows: u64 = ["edge", "witness"]
        .iter()
        .map(|p| q.db().get((*p).into()).map_or(0, |r| r.len() as u64))
        .sum();
    let mut tx = Tx::new();
    for i in 0..(base_rows as i64 + 10) {
        let v = 10_000 + i;
        tx.insert("edge", vec![Int(i % 30), Int(v)]);
        tx.insert("witness", vec![Int(v), Int(v * 10)]);
    }
    let out = q
        .apply(&tx, semrec::engine::Budget::unlimited(), None)
        .expect("grow tx");
    assert!(out.replanned, "2x drift re-consults the planner");
    assert_eq!(q.replans(), 2);
    let drifted = q.route_choice().expect("drift choice").clone();
    assert!(
        drifted.predicted_rows > first.predicted_rows,
        "fresh stats see the grown EDB: {} -> {}",
        first.predicted_rows,
        drifted.predicted_rows
    );

    // Break ic1 (an edge whose target has no witness): the route
    // degrades to rectified and the planner is consulted again for
    // post-degradation estimates.
    let mut bad = Tx::new();
    bad.insert("edge", vec![Int(0), Int(99_999)]);
    let out = q
        .apply(&bad, semrec::engine::Budget::unlimited(), None)
        .expect("violating tx");
    assert!(out.replanned, "degradation re-consults the planner");
    assert!(!out.violated.is_empty());
    assert!(!q.on_optimized_route());
    let degraded_replans = q.replans();
    assert!(degraded_replans >= 3);

    // Repair the violation: the residue-pushed program is sound again
    // and the planner is re-consulted among the full sound set.
    let mut fix = Tx::new();
    fix.insert("witness", vec![Int(99_999), Int(1)]);
    let out = q
        .apply(&fix, semrec::engine::Budget::unlimited(), None)
        .expect("repair tx");
    assert!(out.replanned, "violation clearing re-consults the planner");
    assert!(out.violated.is_empty());
    assert!(q.on_optimized_route());
    assert_eq!(q.replans(), degraded_replans + 1);
}
