//! Concurrent serving agreement: under seeded reader/writer
//! interleavings, every reader's answer is tuple-for-tuple identical to
//! a serial replay of the committed transaction prefix at its pinned
//! epoch — across evaluator tunings (serial/parallel cutover × kernels
//! on/off), with readers never blocking the writer and vice versa.

use semrec::core::maintain::MaintainedQuery;
use semrec::core::optimizer::OptimizerConfig;
use semrec::datalog::parser::{parse_atom, parse_unit, Unit};
use semrec::datalog::Atom;
use semrec::engine::{int_tuple, Budget, Cutover, Database, Tuning, Tuple, Tx};
use semrec::gen::rng::Rng;
use semrec::serve::{ServeConfig, ServeError, Server};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn unit() -> Unit {
    parse_unit(
        "reach(X, Y) :- edge(X, Y).\n\
         reach(X, Y) :- edge(X, Z), witness(Z, W), reach(Z, Y).\n\
         ic ic1: edge(X, Z) -> witness(Z, W).\n\
         edge(1, 2). edge(2, 3).\n\
         witness(1, 100). witness(2, 200). witness(3, 300).",
    )
    .expect("parse unit")
}

fn goal() -> Atom {
    parse_atom("reach(1, Y)").expect("goal")
}

const COMMITS: usize = 8;

/// The deterministic transaction sequence for one seed: witnessed chain
/// growth with one violation + repair pair, so the interleaving crosses
/// a route invalidation and a recovery while readers are in flight.
fn tx_sequence(seed: u64) -> Vec<Tx> {
    let mut rng = Rng::seed_from_u64(0xA9EE + seed);
    let mut txs = Vec::new();
    let mut next = 4i64;
    for i in 0..COMMITS {
        let mut tx = Tx::new();
        match i {
            3 => {
                tx.insert("edge", int_tuple(&[2, 666])); // witness-less
            }
            5 => {
                tx.delete("edge", int_tuple(&[2, 666]));
            }
            _ => {
                let from = rng.gen_range(1..next);
                tx.insert("edge", int_tuple(&[from, next]));
                tx.insert("witness", int_tuple(&[next, next * 1000]));
                next += 1;
            }
        }
        txs.push(tx);
    }
    txs
}

/// Serial replay references: `expected[e]` is the exact answer after
/// the first `e` transactions, for every epoch 0..=COMMITS.
fn references(txs: &[Tx], tuning: Tuning) -> Vec<Vec<Tuple>> {
    let u = unit();
    let mut q = MaintainedQuery::new_tuned(
        Database::from_facts(&u.facts),
        &u.program(),
        &u.constraints,
        OptimizerConfig::default(),
        tuning,
    )
    .expect("reference query");
    let g = goal();
    let mut out = Vec::with_capacity(txs.len() + 1);
    let mut first = q.answers(&g);
    first.sort();
    out.push(first);
    for tx in txs {
        q.apply(tx, Budget::unlimited(), None)
            .expect("reference apply");
        let mut a = q.answers(&g);
        a.sort();
        out.push(a);
    }
    out
}

/// One interleaving: a writer thread commits the sequence while reader
/// threads hammer latest-epoch queries, recording `(epoch, tuples)`
/// observations. Every observation must match the serial reference at
/// that epoch, and after the run every retained epoch must still
/// answer its historical snapshot.
fn run_interleaving(seed: u64, tuning: Tuning) {
    let txs = tx_sequence(seed);
    let expected = Arc::new(references(&txs, tuning));
    let cfg = ServeConfig {
        tuning,
        // Retain everything so every pinned observation stays checkable.
        retain_epochs: COMMITS + 1,
        ..ServeConfig::default()
    };
    let (server, report) = Server::open(&unit(), cfg, None).expect("open");
    assert_eq!(report.epoch, 0);

    let done = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for r in 0..3u64 {
        let server = Arc::clone(&server);
        let expected = Arc::clone(&expected);
        let done = Arc::clone(&done);
        readers.push(std::thread::spawn(move || {
            let g = goal();
            let mut rng = Rng::seed_from_u64(seed * 31 + r);
            let mut observed = 0usize;
            while !done.load(Ordering::Acquire) || observed == 0 {
                // Mix latest reads with explicit pins of an epoch the
                // reader has already seen exist.
                let latest = server.registry().latest().epoch;
                let at = if rng.gen_bool(0.3) {
                    Some(rng.gen_range(0..(latest + 1) as i64) as u64)
                } else {
                    None
                };
                match server.query(&g, at, None) {
                    Ok(reply) => {
                        observed += 1;
                        assert_eq!(
                            reply.tuples, expected[reply.epoch as usize],
                            "seed {seed} reader {r}: epoch {} diverged from serial replay",
                            reply.epoch
                        );
                    }
                    Err(ServeError::EpochReclaimed { .. }) => {
                        panic!("seed {seed}: retention covers every epoch")
                    }
                    Err(other) => panic!("seed {seed} reader {r}: {other}"),
                }
            }
            observed
        }));
    }

    for (i, tx) in txs.iter().enumerate() {
        let reply = server.commit(tx).expect("commit");
        assert_eq!(reply.epoch, i as u64 + 1);
    }
    done.store(true, Ordering::Release);
    let mut total = 0usize;
    for h in readers {
        total += h.join().expect("reader thread");
    }
    assert!(total > 0, "seed {seed}: readers observed nothing");

    // Post-run: every retained epoch still answers its exact snapshot.
    let g = goal();
    for e in 0..=COMMITS as u64 {
        let reply = server.query(&g, Some(e), None).expect("pinned epoch");
        assert_eq!(
            reply.tuples, expected[e as usize],
            "seed {seed}: epoch {e} snapshot drifted"
        );
    }
}

#[test]
fn interleavings_agree_serial_auto_kernels_on() {
    for seed in 0..4 {
        run_interleaving(
            seed,
            Tuning {
                threads: 1,
                cutover: Cutover::Auto,
                kernels: true,
            },
        );
    }
}

#[test]
fn interleavings_agree_parallel_forced_kernels_on() {
    for seed in 0..4 {
        run_interleaving(
            seed,
            Tuning {
                threads: 4,
                cutover: Cutover::ForceParallel,
                kernels: true,
            },
        );
    }
}

#[test]
fn interleavings_agree_parallel_forced_kernels_off() {
    for seed in 0..4 {
        run_interleaving(
            seed,
            Tuning {
                threads: 4,
                cutover: Cutover::ForceParallel,
                kernels: false,
            },
        );
    }
}

#[test]
fn interleavings_agree_serial_auto_kernels_off() {
    for seed in 0..4 {
        run_interleaving(
            seed,
            Tuning {
                threads: 2,
                cutover: Cutover::Auto,
                kernels: false,
            },
        );
    }
}

/// Cache-on and cache-off servers replay the same transaction sequence
/// and must answer a mixed goal set tuple-for-tuple identically at
/// every epoch — while the cache-on server actually serves repeats from
/// the answer cache (hits observable in `stats`), and the cache-off
/// server never does.
#[test]
fn cache_on_and_off_agree_tuple_for_tuple() {
    let txs = tx_sequence(42);
    let cached_cfg = ServeConfig {
        retain_epochs: COMMITS + 1,
        ..ServeConfig::default()
    };
    let uncached_cfg = ServeConfig {
        answer_cache: false,
        ..cached_cfg.clone()
    };
    let (cached, _) = Server::open(&unit(), cached_cfg, None).expect("open cached");
    let (uncached, _) = Server::open(&unit(), uncached_cfg, None).expect("open uncached");
    let goals: Vec<Atom> = [
        "reach(1, Y)",  // bound first column (probe)
        "reach(X, Y)",  // all free (scan)
        "reach(X, X)",  // repeated variable (scan + residual)
        "reach(1, 3)",  // all bound (membership)
        "reach(Y, 3)",  // bound second column (probe)
        "edge(2, Y)",   // EDB predicate
        "absent(X, Y)", // unknown predicate (empty, cacheable)
    ]
    .iter()
    .map(|s| parse_atom(s).expect("goal"))
    .collect();
    for tx in &txs {
        cached.commit(tx).expect("cached commit");
        uncached.commit(tx).expect("uncached commit");
        for g in &goals {
            // Ask twice: the second cached ask is a cache hit and must
            // still agree with the uncached answer tuple-for-tuple.
            for _ in 0..2 {
                let a = cached.query(g, None, None).expect("cached query");
                let b = uncached.query(g, None, None).expect("uncached query");
                assert_eq!(a.epoch, b.epoch);
                assert_eq!(
                    a.tuples, b.tuples,
                    "goal {g:?} diverged at epoch {}",
                    a.epoch
                );
            }
        }
    }
    let hot = cached.stats();
    let cold = uncached.stats();
    assert!(hot.cache_hits > 0, "repeats must hit the cache");
    assert_eq!(cold.cache_hits, 0, "cache-off server must never hit");
    assert_eq!(cold.cache_misses, 0, "cache-off server must never probe");
}

/// Copy-on-write publication is the cache's invalidation: a goal warmed
/// into the cache must answer the *new* epoch immediately after every
/// commit — including across the violation/repair pair, where route
/// invalidation rebuilds the materialization from scratch and a
/// generation-only key would serve stale hits.
#[test]
fn republish_invalidates_cached_answers() {
    let txs = tx_sequence(7);
    let tuning = Tuning::default();
    let expected = references(&txs, tuning);
    let cfg = ServeConfig {
        tuning,
        retain_epochs: COMMITS + 1,
        ..ServeConfig::default()
    };
    let (server, _) = Server::open(&unit(), cfg, None).expect("open");
    let g = goal();
    for (i, tx) in txs.iter().enumerate() {
        // Warm the cache at the current epoch (second ask is a hit)...
        for _ in 0..2 {
            let reply = server.query(&g, None, None).expect("warm query");
            assert_eq!(reply.tuples, expected[i]);
        }
        // ...then commit and require the republished answer, not the
        // cached one.
        server.commit(tx).expect("commit");
        let reply = server.query(&g, None, None).expect("post-commit query");
        assert_eq!(reply.epoch, i as u64 + 1);
        assert_eq!(
            reply.tuples,
            expected[i + 1],
            "stale cached answer served after commit {i}"
        );
        // Older epochs keep hitting their own entries, unperturbed.
        let old = server.query(&g, Some(i as u64), None).expect("pinned");
        assert_eq!(old.tuples, expected[i]);
    }
    let stats = server.stats();
    assert!(
        stats.cache_hits as usize >= COMMITS,
        "warm repeats must hit ({} hits)",
        stats.cache_hits
    );
}

/// The writer must make progress while a reader holds a pinned epoch
/// `Arc` for the whole run (no reader-blocks-writer), and that reader's
/// snapshot must stay frozen (no writer-blocks-reader consistency
/// leaks).
#[test]
fn long_pinned_reader_never_blocks_the_writer() {
    let txs = tx_sequence(99);
    let tuning = Tuning::default();
    let expected = references(&txs, tuning);
    let cfg = ServeConfig {
        tuning,
        retain_epochs: 2, // epoch 0 will fall off the ring...
        ..ServeConfig::default()
    };
    let (server, _) = Server::open(&unit(), cfg, None).expect("open");
    let pinned = server.registry().pin(Some(0)).expect("pin epoch 0");
    for tx in &txs {
        server.commit(tx).expect("commit with a pinned reader");
    }
    // ...but the held Arc keeps the snapshot alive and frozen.
    let rel = pinned
        .relation(semrec::datalog::Pred::from("reach"))
        .expect("pinned reach");
    let g = goal();
    let frozen: Vec<Tuple> = rel
        .snapshot_sorted_tuples()
        .into_iter()
        .filter(|t| semrec::engine::eval::goal_matches(&g, t))
        .collect();
    assert_eq!(frozen, expected[0]);
    assert!(matches!(
        server.query(&goal(), Some(0), None),
        Err(ServeError::EpochReclaimed { .. })
    ));
    let latest = server.query(&goal(), None, None).expect("latest");
    assert_eq!(latest.tuples, expected[COMMITS]);
}
