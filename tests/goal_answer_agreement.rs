//! Indexed goal answering agrees with the full-relation scan: on every
//! generated workload and binding pattern, `answer_goal` (dictionary
//! probes for bound columns, membership test for all-bound goals,
//! residual filtering for the rest) must select exactly the tuples a
//! `goal_matches` scan selects.

use semrec::datalog::{Atom, Pred, Term, Value};
use semrec::engine::eval::{answer_goal, goal_matches};
use semrec::engine::{evaluate, Database, Relation, Strategy, Tuple};
use semrec::gen::rng::Rng;
use semrec::gen::{fanout, flights, genealogy, org, parse_scenario, university};

/// The reference: filter every snapshot tuple through `goal_matches`.
fn scan(rel: &Relation, goal: &Atom) -> Vec<Tuple> {
    rel.snapshot_sorted_tuples()
        .into_iter()
        .filter(|t| goal_matches(goal, t))
        .collect()
}

fn check(rel: &Relation, goal: &Atom, ctx: &str) {
    let mut probed = answer_goal(rel, goal, rel.snapshot_rows());
    probed.sort();
    assert_eq!(probed, scan(rel, goal), "{ctx}: goal `{goal}` diverged");
}

fn free_vars(arity: usize) -> Vec<Term> {
    (0..arity).map(|i| Term::var(&format!("X{i}"))).collect()
}

/// Every binding pattern the serve read path routes differently:
/// all-free (scan), one bound column at each position (probe), all
/// bound (membership), repeated variables (scan + residual), a bound
/// constant that matches nothing, and arity mismatch.
fn check_all_patterns(rel: &Relation, pred: &str, rng: &mut Rng, ctx: &str) {
    let rows = rel.snapshot_sorted_tuples();
    let arity = match rows.first() {
        Some(r) => r.len(),
        None => return,
    };
    let p = Pred::new(pred);

    check(rel, &Atom::new(p, free_vars(arity)), ctx);
    if arity >= 2 {
        let mut args = free_vars(arity);
        args[1] = args[0];
        check(rel, &Atom::new(p, args), ctx);
    }

    for _ in 0..3 {
        let row = &rows[rng.gen_range(0..rows.len())];
        for i in 0..arity {
            let mut args = free_vars(arity);
            args[i] = Term::Const(row[i]);
            check(rel, &Atom::new(p, args), ctx);
        }
        if arity >= 2 {
            let mut args = free_vars(arity);
            args[0] = Term::Const(row[0]);
            args[arity - 1] = Term::Const(row[arity - 1]);
            check(rel, &Atom::new(p, args), ctx);
        }
        let bound: Vec<Term> = row.iter().map(|v| Term::Const(*v)).collect();
        check(rel, &Atom::new(p, bound), ctx);
    }

    // A constant no generator emits: the probe must agree that the
    // answer is empty, at every position and fully bound.
    let absent = Value::Int(-987_654_321);
    for i in 0..arity {
        let mut args = free_vars(arity);
        args[i] = Term::Const(absent);
        check(rel, &Atom::new(p, args), ctx);
    }
    check(rel, &Atom::new(p, vec![Term::Const(absent); arity]), ctx);

    // Arity mismatch answers empty on both paths.
    check(rel, &Atom::new(p, free_vars(arity + 1)), ctx);
}

#[test]
fn indexed_answers_agree_with_scans_on_generated_workloads() {
    let cases: Vec<(&str, Database, &str, Vec<&str>)> = vec![
        (
            "fanout",
            fanout::generate(&fanout::FanoutParams {
                nodes: 60,
                extra_edges: 30,
                fanout: 4,
                seed: 11,
            }),
            fanout::PROGRAM,
            vec!["reach", "edge", "witness"],
        ),
        (
            "org",
            org::generate(&org::OrgParams {
                employees: 80,
                seed: 12,
                ..org::OrgParams::default()
            }),
            org::PROGRAM,
            vec!["triple", "boss", "experienced"],
        ),
        (
            "university",
            university::generate(&university::UniversityParams {
                professors: 12,
                students: 40,
                seed: 13,
                ..university::UniversityParams::default()
            }),
            university::PROGRAM,
            vec!["eval", "eval_support", "works_with", "pays"],
        ),
        (
            "genealogy",
            genealogy::generate(&genealogy::GenealogyParams {
                families: 2,
                depth: 4,
                branching: 2,
                seed: 14,
            }),
            genealogy::PROGRAM,
            vec!["anc", "par"],
        ),
        (
            "flights",
            flights::generate(&flights::FlightsParams {
                seed: 15,
                ..flights::FlightsParams::default()
            }),
            flights::PROGRAM,
            vec!["route", "flight", "hub"],
        ),
    ];
    for (name, db, src, preds) in cases {
        let s = parse_scenario(src);
        let fixed = evaluate(&db, &s.program, Strategy::SemiNaive).expect("fixpoint");
        let mut rng = Rng::seed_from_u64(0x60A1);
        for pred in preds {
            let rel = fixed
                .relation(Pred::new(pred))
                .or_else(|| db.get(Pred::new(pred)))
                .unwrap_or_else(|| panic!("{name}: no relation `{pred}`"));
            check_all_patterns(rel, pred, &mut rng, &format!("{name}/{pred}"));
        }
    }
}

/// String-valued constants route through the same probe path as
/// integers — the dictionary index is value-typed, not int-only.
#[test]
fn string_constants_probe_correctly() {
    let db = org::generate(&org::OrgParams {
        employees: 60,
        seed: 21,
        ..org::OrgParams::default()
    });
    let rel = db.get(Pred::new("boss")).expect("boss relation");
    let rows = rel.snapshot_sorted_tuples();
    let rank = rows
        .iter()
        .map(|r| r[2])
        .find(|v| matches!(v, Value::Str(_)))
        .expect("boss carries a string rank column");
    let goal = Atom::new(
        Pred::new("boss"),
        vec![Term::var("E"), Term::var("B"), Term::Const(rank)],
    );
    check(rel, &goal, "org/boss string rank");
}
