//! The three evaluation engines (semi-naive bottom-up, tabled top-down,
//! depth-bounded SLD) agree on answers for random acyclic data.

use proptest::prelude::*;
use semrec::datalog::parser::parse_atom;
use semrec::datalog::{Program, Value};
use semrec::engine::sld::{query_sld, Completeness, SldConfig};
use semrec::engine::topdown::query_topdown;
use semrec::engine::{evaluate, Database, Strategy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn three_engines_agree(
        // Acyclic: only forward edges.
        edges in proptest::collection::vec((0i64..9, 0i64..9), 1..25),
        bind in 0i64..9,
        bound_goal in proptest::bool::ANY,
    ) {
        let prog: Program = "t(X,Y) :- e(X,Y). t(X,Y) :- e(X,Z), t(Z,Y)."
            .parse()
            .unwrap();
        let mut db = Database::new();
        for (a, b) in edges {
            let (lo, hi) = if a < b { (a, b) } else { (b, a + 10) };
            db.insert("e", vec![Value::Int(lo), Value::Int(hi)]);
        }
        let goal = if bound_goal {
            parse_atom(&format!("t({bind}, Y)")).unwrap()
        } else {
            parse_atom("t(X, Y)").unwrap()
        };

        let full = evaluate(&db, &prog, Strategy::SemiNaive).unwrap();
        let mut expected = full.answers(&goal);
        expected.sort();
        expected.dedup();

        let (mut td, _) = query_topdown(&db, &prog, &goal).unwrap();
        td.sort();
        prop_assert_eq!(&td, &expected, "topdown diverged");

        let (sld, _, compl) = query_sld(&db, &prog, &goal, SldConfig {
            max_depth: 24,
            max_expansions: 2_000_000,
        }).unwrap();
        prop_assert_eq!(compl, Completeness::Complete);
        prop_assert_eq!(&sld, &expected, "sld diverged");
    }
}
