//! The three evaluation engines (semi-naive bottom-up, tabled top-down,
//! depth-bounded SLD) agree on answers for random acyclic data.
//!
//! Seeded-loop rewrite of a former `proptest` suite (offline-build
//! policy: no registry deps for `cargo test -q`).

use semrec::datalog::parser::parse_atom;
use semrec::datalog::{Program, Value};
use semrec::engine::sld::{query_sld, Completeness, SldConfig};
use semrec::engine::topdown::query_topdown;
use semrec::engine::{evaluate, Database, Strategy};
use semrec::gen::rng::Rng;

#[test]
fn three_engines_agree() {
    let prog: Program = "t(X,Y) :- e(X,Y). t(X,Y) :- e(X,Z), t(Z,Y)."
        .parse()
        .unwrap();
    for case in 0u64..48 {
        let mut rng = Rng::seed_from_u64(0xE4A + case);
        let m = rng.gen_range(1..25usize);
        let bind = rng.gen_range(0..9i64);
        let bound_goal = rng.gen_bool(0.5);

        let mut db = Database::new();
        for _ in 0..m {
            // Acyclic: only forward edges.
            let a = rng.gen_range(0..9i64);
            let b = rng.gen_range(0..9i64);
            let (lo, hi) = if a < b { (a, b) } else { (b, a + 10) };
            db.insert("e", vec![Value::Int(lo), Value::Int(hi)]);
        }
        let goal = if bound_goal {
            parse_atom(&format!("t({bind}, Y)")).unwrap()
        } else {
            parse_atom("t(X, Y)").unwrap()
        };

        let full = evaluate(&db, &prog, Strategy::SemiNaive).unwrap();
        let mut expected = full.answers(&goal);
        expected.sort();
        expected.dedup();

        let (mut td, _) = query_topdown(&db, &prog, &goal).unwrap();
        td.sort();
        assert_eq!(td, expected, "topdown diverged on case {case}");

        let (sld, _, compl) = query_sld(
            &db,
            &prog,
            &goal,
            SldConfig {
                max_depth: 24,
                max_expansions: 2_000_000,
            },
        )
        .unwrap();
        assert_eq!(compl, Completeness::Complete, "case {case}");
        assert_eq!(sld, expected, "sld diverged on case {case}");
    }
}
