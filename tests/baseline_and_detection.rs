//! Cross-cutting integration tests: the evaluation-based baseline agrees
//! with plain evaluation, Algorithm 3.1 agrees with exhaustive
//! enumeration, and magic sets composes with the optimized programs.

use semrec::core::baseline::evaluate_with_runtime_semantics;
use semrec::core::detect::{detect, DetectionMethod};
use semrec::core::optimizer::Optimizer;
use semrec::datalog::analysis::{classify_linear_pred, rectify};
use semrec::datalog::parser::parse_atom;
use semrec::datalog::Pred;
use semrec::engine::magic::evaluate_query;
use semrec::engine::{evaluate, Strategy};
use semrec::gen::{genealogy, org, parse_scenario, university};

#[test]
fn runtime_baseline_agrees_on_all_scenarios() {
    for (src, gen_db, preds) in [
        (
            org::PROGRAM,
            org::generate(&org::OrgParams {
                employees: 80,
                ..org::OrgParams::default()
            }),
            vec!["triple"],
        ),
        (
            university::PROGRAM,
            university::generate(&university::UniversityParams {
                professors: 24,
                students: 40,
                ..university::UniversityParams::default()
            }),
            vec!["eval", "eval_support"],
        ),
        (
            genealogy::PROGRAM,
            genealogy::generate(&genealogy::GenealogyParams {
                families: 2,
                depth: 4,
                ..genealogy::GenealogyParams::default()
            }),
            vec!["anc"],
        ),
    ] {
        let s = parse_scenario(src);
        let base = evaluate(&gen_db, &s.program, Strategy::SemiNaive).unwrap();
        let rt = evaluate_with_runtime_semantics(
            &gen_db,
            &s.program,
            &s.constraints,
            Strategy::SemiNaive,
        )
        .unwrap();
        for p in preds {
            assert_eq!(
                base.relation(p).unwrap().sorted_tuples(),
                rt.result.relation(p).unwrap().sorted_tuples(),
                "baseline mismatch on {p}"
            );
        }
        // The run-time overhead is per-iteration: residue computations grow
        // with rounds.
        assert!(rt.residue_computations >= rt.rounds);
    }
}

#[test]
fn sdgraph_detections_are_a_subset_of_exhaustive() {
    for (src, pred) in [
        (org::PROGRAM, "triple"),
        (university::PROGRAM, "eval"),
        (genealogy::PROGRAM, "anc"),
    ] {
        let s = parse_scenario(src);
        let (prog, _) = rectify(&s.program);
        let info = classify_linear_pred(&prog, Pred::new(pred)).unwrap();
        for ic in &s.constraints {
            let sd = detect(&prog, &info, ic, DetectionMethod::SdGraph, 2).unwrap();
            let ex = detect(
                &prog,
                &info,
                ic,
                DetectionMethod::Exhaustive { max_len: 6 },
                2,
            )
            .unwrap();
            for d in &sd {
                if d.residue.seq.len() <= 6 {
                    assert!(
                        ex.iter().any(|e| e.residue.seq == d.residue.seq
                            && e.residue.head == d.residue.head
                            && e.residue.body == d.residue.body),
                        "SD-graph residue {} on {:?} missing from exhaustive",
                        d.residue,
                        d.residue.seq
                    );
                }
            }
        }
    }
}

#[test]
fn magic_composes_with_optimized_programs() {
    let s = parse_scenario(genealogy::PROGRAM);
    let plan = Optimizer::new(&s.program)
        .with_constraints(&s.constraints)
        .run()
        .unwrap();
    let db = genealogy::generate(&genealogy::GenealogyParams::default());

    // Bind the descendant (first argument) and compare the three ways.
    let goal = parse_atom("anc(7, Xa, Y, Ya)").unwrap();
    let (a_orig, _) = evaluate_query(&db, &plan.rectified, &goal, Strategy::SemiNaive).unwrap();
    let (a_opt, _) = evaluate_query(&db, &plan.program, &goal, Strategy::SemiNaive).unwrap();
    let full = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
    let mut expected = full.answers(&goal);
    expected.sort();
    expected.dedup();
    assert_eq!(a_orig, expected);
    assert_eq!(a_opt, expected);
}

#[test]
fn optimizer_is_idempotent_enough_to_rerun_unchanged_inputs() {
    // Determinism: two runs produce the same program text.
    let s = parse_scenario(org::PROGRAM);
    let p1 = Optimizer::new(&s.program)
        .with_constraints(&s.constraints)
        .run()
        .unwrap();
    let p2 = Optimizer::new(&s.program)
        .with_constraints(&s.constraints)
        .run()
        .unwrap();
    assert_eq!(p1.program.to_string(), p2.program.to_string());
}

/// Two recursive predicates, each with its own IC, optimized in one pass —
/// exercises the optimizer's per-predicate merge.
#[test]
fn two_recursive_predicates_optimized_together() {
    use semrec::datalog::Value;
    use semrec::engine::Database;
    let unit = semrec::datalog::parser::parse_unit(
        "reach(X, Y) :- edge(X, Y).
         reach(X, Y) :- edge(X, Z), witness(Z, W), reach(Z, Y).
         ship(X, Y) :- lane(X, Y).
         ship(X, Y) :- lane(X, Z), port(Z), ship(Z, Y).
         ic ic1: edge(X, Z) -> witness(Z, W).
         ic ic2: lane(X, Z) -> port(Z).",
    )
    .unwrap();
    let plan = Optimizer::new(&unit.program())
        .with_constraints(&unit.constraints)
        .run()
        .unwrap();
    // Both predicates got their elimination.
    assert!(plan.chosen.contains_key(&Pred::new("reach")));
    assert!(plan.chosen.contains_key(&Pred::new("ship")));
    assert_eq!(plan.applied.len(), 2);

    // IC-consistent data for both closures.
    let mut db = Database::new();
    for (a, b) in [(0i64, 1i64), (1, 2), (2, 3)] {
        db.insert("edge", vec![Value::Int(a), Value::Int(b)]);
        db.insert("witness", vec![Value::Int(b), Value::Int(100 + b)]);
        db.insert("lane", vec![Value::Int(10 + a), Value::Int(10 + b)]);
        db.insert("port", vec![Value::Int(10 + b)]);
    }
    for ic in &unit.constraints {
        assert!(db.satisfies(ic));
    }
    let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
    let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap();
    for p in ["reach", "ship"] {
        assert_eq!(
            base.relation(p).unwrap().sorted_tuples(),
            opt.relation(p).unwrap().sorted_tuples()
        );
    }
}

/// Two ICs producing residues on the same sequence are pushed together.
#[test]
fn multiple_residues_on_one_sequence() {
    use semrec::datalog::Value;
    use semrec::engine::Database;
    let unit = semrec::datalog::parser::parse_unit(
        "reach(X, Y) :- edge(X, Y).
         reach(X, Y) :- edge(X, Z), witness(Z, W), guard(Z, G), reach(Z, Y).
         ic ic1: edge(X, Z) -> witness(Z, W).
         ic ic2: edge(X, Z) -> guard(Z, G).",
    )
    .unwrap();
    let plan = Optimizer::new(&unit.program())
        .with_constraints(&unit.constraints)
        .run()
        .unwrap();
    assert_eq!(plan.applied.len(), 2, "{plan}");
    // Both witness and guard vanish from the optimized recursive rule.
    let recursive = plan
        .program
        .rules
        .iter()
        .find(|r| {
            r.head.pred == Pred::new("reach")
                && r.body_atoms().any(|a| a.pred == Pred::new("reach"))
        })
        .expect("recursive rule");
    assert!(!recursive
        .body_atoms()
        .any(|a| a.pred == Pred::new("witness")));
    assert!(!recursive.body_atoms().any(|a| a.pred == Pred::new("guard")));

    let mut db = Database::new();
    for (a, b) in [(0i64, 1i64), (1, 2), (2, 3), (0, 3)] {
        db.insert("edge", vec![Value::Int(a), Value::Int(b)]);
        db.insert("witness", vec![Value::Int(b), Value::Int(7)]);
        db.insert("guard", vec![Value::Int(b), Value::Int(8)]);
    }
    let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
    let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap();
    assert_eq!(
        base.relation("reach").unwrap().sorted_tuples(),
        opt.relation("reach").unwrap().sorted_tuples()
    );
}
