//! Property test for the incremental maintenance subsystem: random
//! insert/delete transaction sequences on the fanout and genealogy
//! workloads, asserting after every committed transaction that the
//! maintained materialization is *identical* to a from-scratch
//! evaluation of the post-transaction database — same predicates, same
//! tuples, and structurally sound flat storage.
//!
//! The transactions are adversarial on purpose: deletes of random live
//! tuples (including chain edges whose loss cascades through the
//! recursion), deletes of tuples that were never inserted (no-ops),
//! re-inserts of just-deleted tuples, and mixed transactions that net
//! out. Seeds are fixed so failures replay.

use semrec::datalog::{Pred, Program};
use semrec::engine::incr::{Materialized, Tx};
use semrec::engine::{evaluate, Budget, Database, Relation, Strategy, Tuple};
use semrec::gen::rng::Rng;
use semrec::gen::{fanout, genealogy, parse_scenario};
use std::collections::BTreeMap;

/// Draws a random tuple for `pred` from the workload's value domain.
/// Small domains make collisions (re-inserts of live tuples, deletes of
/// tombstoned ones) likely, which is exactly what the dedup and
/// tombstone paths need exercised.
fn random_tuple(workload: &str, pred: &str, rng: &mut Rng) -> Tuple {
    use semrec::datalog::Value::Int;
    match (workload, pred) {
        ("fanout", "edge") => vec![Int(rng.gen_range(0..45i64)), Int(rng.gen_range(0..45i64))],
        ("fanout", "witness") => {
            let v = rng.gen_range(0..45i64);
            vec![Int(v), Int(v * 1000 + rng.gen_range(0..4i64))]
        }
        ("genealogy", "par") => vec![
            Int(rng.gen_range(0..30i64)),
            Int(rng.gen_range(10..120i64)),
            Int(rng.gen_range(0..30i64)),
            Int(rng.gen_range(10..120i64)),
        ],
        _ => unreachable!("unknown workload predicate"),
    }
}

/// A random live tuple of `pred`, if the relation is non-empty.
fn random_live(db: &Database, pred: Pred, rng: &mut Rng) -> Option<Tuple> {
    let rel = db.get(pred)?;
    let tuples: Vec<Tuple> = rel.iter().map(<[_]>::to_vec).collect();
    if tuples.is_empty() {
        return None;
    }
    Some(tuples[rng.gen_range(0..tuples.len())].clone())
}

/// Asserts the maintained IDB equals a from-scratch evaluation of the
/// current database, tuple for tuple, and that every maintained
/// relation passes the flat-storage invariant check.
fn assert_agrees(
    db: &Database,
    program: &Program,
    maintained: &BTreeMap<Pred, Relation>,
    ctx: &str,
) {
    let scratch = evaluate(db, program, Strategy::SemiNaive).expect("from-scratch evaluation");
    let nonempty = |m: &BTreeMap<Pred, Relation>| {
        m.iter()
            .filter(|(_, r)| !r.is_empty())
            .map(|(p, r)| (*p, r.sorted_tuples()))
            .collect::<BTreeMap<_, _>>()
    };
    assert_eq!(
        nonempty(maintained),
        nonempty(&scratch.idb),
        "incremental result diverged from scratch ({ctx})"
    );
    for (p, rel) in maintained {
        rel.check_invariant()
            .unwrap_or_else(|e| panic!("invariant broken for {p} ({ctx}): {e}"));
    }
}

/// Runs `steps` random transactions against a maintained
/// materialization, checking agreement after every commit.
fn run_sequence(workload: &str, program: &Program, mut db: Database, seed: u64, steps: usize) {
    let preds: &[&str] = match workload {
        "fanout" => &["edge", "witness"],
        "genealogy" => &["par"],
        _ => unreachable!(),
    };
    let mut rng = Rng::seed_from_u64(seed);
    let mut m = Materialized::new(&db, program, 2).expect("initial materialization");
    assert!(m.is_incremental(), "workload should be delta-maintainable");
    assert_agrees(
        &db,
        program,
        m.idb(),
        &format!("{workload} seed {seed} initial"),
    );

    for step in 0..steps {
        let mut tx = Tx::new();
        for _ in 0..rng.gen_range(0..3usize) {
            let p = preds[rng.gen_range(0..preds.len())];
            tx.insert(p, random_tuple(workload, p, &mut rng));
        }
        for _ in 0..rng.gen_range(0..3usize) {
            let p = preds[rng.gen_range(0..preds.len())];
            // Mostly delete live tuples (cascades through the
            // recursion); sometimes a random tuple that may not exist.
            let t = if rng.gen_bool(0.8) {
                random_live(&db, Pred::new(p), &mut rng)
            } else {
                Some(random_tuple(workload, p, &mut rng))
            };
            if let Some(t) = t {
                tx.delete(p, t);
            }
        }
        // Occasionally delete and re-insert the same tuple in one tx.
        if rng.gen_bool(0.3) {
            let p = preds[rng.gen_range(0..preds.len())];
            if let Some(t) = random_live(&db, Pred::new(p), &mut rng) {
                tx.delete(p, t.clone());
                tx.insert(p, t);
            }
        }
        if tx.is_empty() {
            continue;
        }
        m.apply(&mut db, &tx, Budget::unlimited(), None)
            .expect("unlimited-budget apply succeeds");
        assert_agrees(
            &db,
            program,
            m.idb(),
            &format!("{workload} seed {seed} step {step}"),
        );
    }
}

#[test]
fn fanout_random_tx_sequences_agree_with_scratch() {
    let s = parse_scenario(fanout::PROGRAM);
    for seed in [7u64, 101, 9001] {
        let db = fanout::generate(&fanout::FanoutParams {
            nodes: 40,
            extra_edges: 20,
            fanout: 3,
            seed,
        });
        run_sequence("fanout", &s.program, db, seed, 14);
    }
}

#[test]
fn genealogy_random_tx_sequences_agree_with_scratch() {
    let s = parse_scenario(genealogy::PROGRAM);
    for seed in [3u64, 77] {
        let db = genealogy::generate(&genealogy::GenealogyParams {
            families: 2,
            depth: 4,
            branching: 2,
            seed,
        });
        run_sequence("genealogy", &s.program, db, seed, 12);
    }
}
