//! Fault-injected agreement suite (`cargo test --features failpoints`).
//!
//! Every run below drives the parallel evaluator — or the full governed
//! optimizer entry point — through a seed-derived random failpoint
//! schedule and must end in exactly one of two ways: the *exact*
//! serial-reference answer, or a typed [`EngineError`]. Never a wrong
//! answer, never a hang (a test-side watchdog bounds every run), and
//! never a corrupted database (the flat-storage invariant is checked
//! after both outcomes).

#![cfg(feature = "failpoints")]

use semrec::engine::failpoint::{self, FailAction};
use semrec::engine::{
    Budget, CancelToken, Cutover, Database, EngineError, Evaluator, Route, Strategy, Tuple,
};
use semrec::gen::rng::Rng;
use semrec::gen::{fanout, genealogy, parse_scenario};
use std::sync::mpsc;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Failpoint schedules are process-global: every test serializes here
/// and clears the registry on both sides of its run.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const WATCHDOG: Duration = Duration::from_secs(120);

#[derive(Clone, Copy)]
enum Workload {
    Fanout,
    Genealogy,
}

impl Workload {
    fn build(self) -> (semrec::datalog::Program, Database, &'static str) {
        match self {
            Workload::Fanout => {
                let s = parse_scenario(fanout::PROGRAM);
                let db = fanout::generate(&fanout::FanoutParams {
                    nodes: 120,
                    extra_edges: 60,
                    fanout: 6,
                    seed: 13,
                });
                (s.program, db, "reach")
            }
            Workload::Genealogy => {
                let s = parse_scenario(genealogy::PROGRAM);
                let db = genealogy::generate(&genealogy::GenealogyParams {
                    families: 3,
                    depth: 4,
                    branching: 2,
                    seed: 13,
                });
                (s.program, db, "anc")
            }
        }
    }

    /// Serial semi-naive reference answer for the query predicate.
    fn reference(self) -> Vec<Tuple> {
        let (prog, db, query) = self.build();
        let mut ev = Evaluator::new(&db, &prog, Strategy::SemiNaive).unwrap();
        ev.run().unwrap();
        ev.finish().relation(query).unwrap().sorted_tuples()
    }
}

/// What a watchdogged evaluation reported back.
struct RunReport {
    result: Result<Vec<Tuple>, EngineError>,
    invariants: Result<(), String>,
}

/// Runs a parallel evaluation of `workload` on its own thread and waits
/// at most [`WATCHDOG`]; a timeout or a panic escaping the evaluator is
/// a test failure in its own words, never a hang.
fn run_with_watchdog(workload: Workload) -> RunReport {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let (prog, db, query) = workload.build();
        let mut ev = Evaluator::new(&db, &prog, Strategy::SemiNaive)
            .unwrap()
            .with_parallelism(4)
            .with_cutover(Cutover::ForceParallel)
            .with_budget(Budget::unlimited().with_deadline(Duration::from_secs(60)));
        let run = ev.run();
        let invariants = ev.check_invariants();
        let result = match run {
            Ok(()) => Ok(ev.finish().relation(query).unwrap().sorted_tuples()),
            Err(e) => Err(e),
        };
        // A dropped receiver (watchdog already fired) is not our problem.
        let _ = tx.send(RunReport { result, invariants });
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(report) => report,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("fault-injected evaluation hung past {WATCHDOG:?}")
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            panic!("evaluation panicked instead of returning a typed error")
        }
    }
}

/// Draws one schedule entry from the seed stream. `eval.round` lives on
/// the control thread where a panic has no `catch_unwind` above it by
/// design (the governed entry point adds one), so its drawn actions are
/// limited to the site's error channel and delays.
fn draw_schedule(rng: &mut Rng) -> (&'static str, u64, FailAction) {
    let site = ["pool.join", "pool.merge", "eval.round"][rng.gen_range(0..3usize)];
    let fire_at = rng.gen_range(0..6usize) as u64;
    let action = match (site, rng.gen_range(0..3usize)) {
        ("eval.round", 0) => FailAction::DelayMs(rng.gen_range(1..20usize) as u64),
        (_, 0) => FailAction::Panic,
        (_, 1) => FailAction::DelayMs(rng.gen_range(1..20usize) as u64),
        (_, _) => FailAction::Err,
    };
    (site, fire_at, action)
}

fn typed(err: &EngineError) -> bool {
    matches!(
        err,
        EngineError::WorkerPanicked { .. }
            | EngineError::Io(_)
            | EngineError::Cancelled
            | EngineError::DeadlineExceeded { .. }
            | EngineError::BudgetExceeded { .. }
    )
}

/// The core agreement property: across ≥ 32 seeds and two workloads,
/// every fault-injected parallel run either reproduces the serial
/// reference exactly or fails with a typed error — and the database
/// passes its invariant check either way.
#[test]
fn fault_injected_runs_agree_or_fail_typed() {
    let _g = serial();
    let references = [
        Workload::Fanout.reference(),
        Workload::Genealogy.reference(),
    ];
    let mut completed = 0u32;
    let mut failed = 0u32;
    for seed in 0..36u64 {
        let workload = if seed % 2 == 0 {
            Workload::Fanout
        } else {
            Workload::Genealogy
        };
        let reference = &references[(seed % 2) as usize];
        let mut rng = Rng::seed_from_u64(seed);
        let (site, fire_at, action) = draw_schedule(&mut rng);

        failpoint::clear();
        failpoint::arm(site, fire_at, action);
        let report = run_with_watchdog(workload);
        failpoint::clear();

        report
            .invariants
            .unwrap_or_else(|e| panic!("seed {seed} ({site} {action:?}@{fire_at}): {e}"));
        match report.result {
            Ok(tuples) => {
                completed += 1;
                assert_eq!(
                    &tuples, reference,
                    "seed {seed} ({site} {action:?}@{fire_at}): wrong answer"
                );
            }
            Err(err) => {
                failed += 1;
                assert!(
                    typed(&err),
                    "seed {seed} ({site} {action:?}@{fire_at}): untyped error {err:?}"
                );
            }
        }
    }
    // The schedule mix must actually exercise both outcomes; an
    // all-success (or all-failure) sweep means the sites went dead.
    assert!(completed > 0, "no fault-injected run completed");
    assert!(failed > 0, "no fault-injected run tripped a failure");
}

/// A panic inside a worker job surfaces as `WorkerPanicked` naming the
/// phase, and the pool plus database remain usable for a clean rerun.
#[test]
fn worker_panic_is_typed_and_recoverable() {
    let _g = serial();
    for site in ["pool.join", "pool.merge"] {
        failpoint::clear();
        failpoint::arm(site, 0, FailAction::Panic);
        let report = run_with_watchdog(Workload::Fanout);
        failpoint::clear();
        report.invariants.expect("invariants after worker panic");
        match report.result {
            Err(EngineError::WorkerPanicked { job, payload }) => {
                assert_eq!(job, site);
                assert!(payload.contains("injected panic"), "payload: {payload}");
            }
            other => panic!("{site}: expected WorkerPanicked, got {other:?}"),
        }
        // Disarmed registry: the same workload now runs to the exact
        // reference answer.
        let clean = run_with_watchdog(Workload::Fanout);
        clean.invariants.expect("invariants after clean rerun");
        assert_eq!(
            clean.result.expect("clean rerun completes"),
            Workload::Fanout.reference()
        );
    }
}

/// An injected error at the round boundary comes back as `Io` with the
/// injection message, with all previously committed rounds intact.
#[test]
fn round_boundary_error_is_typed() {
    let _g = serial();
    failpoint::clear();
    failpoint::arm("eval.round", 2, FailAction::Err);
    let report = run_with_watchdog(Workload::Genealogy);
    failpoint::clear();
    report.invariants.expect("invariants after round error");
    match report.result {
        Err(EngineError::Io(msg)) => assert!(msg.contains("injected error"), "{msg}"),
        other => panic!("expected Io, got {other:?}"),
    }
}

/// The degradation policy end to end: when the optimizer's push stage
/// fails (error or panic), `evaluate_governed` falls back to the
/// rectified program and answers *identically* to the rectified
/// serial reference.
#[test]
fn optimizer_failure_degrades_to_rectified_with_identical_answers() {
    let _g = serial();
    let s = parse_scenario(fanout::PROGRAM);
    let db = fanout::generate(&fanout::FanoutParams {
        nodes: 80,
        extra_edges: 40,
        fanout: 5,
        seed: 21,
    });
    let reference = {
        let (rect, _) = semrec::datalog::analysis::rectify(&s.program);
        let mut ev = Evaluator::new(&db, &rect, Strategy::SemiNaive).unwrap();
        ev.run().unwrap();
        ev.finish().relation("reach").unwrap().sorted_tuples()
    };
    for action in [FailAction::Err, FailAction::Panic] {
        failpoint::clear();
        failpoint::arm("optimizer.push", 0, action);
        let outcome = semrec::core::evaluate_governed(
            &db,
            &s.program,
            &s.constraints,
            semrec::core::OptimizerConfig::default(),
            Budget::unlimited().with_deadline(Duration::from_secs(60)),
            CancelToken::new(),
            2,
        );
        failpoint::clear();
        let outcome = outcome.unwrap_or_else(|e| panic!("{action:?}: fallback must answer: {e}"));
        assert_eq!(outcome.result.route, Route::RectifiedFallback, "{action:?}");
        let why = outcome
            .degraded
            .unwrap_or_else(|| panic!("{action:?}: degradation must be reported"));
        assert!(!why.is_empty());
        assert_eq!(
            outcome.result.relation("reach").unwrap().sorted_tuples(),
            reference,
            "{action:?}: fallback answer diverges from rectified reference"
        );
    }
}

/// A panic *during evaluation* of the optimized route (injected at the
/// round boundary, where no pool `catch_unwind` sits above it) is
/// contained by the governed entry point, reported as degradation, and
/// answered via the rectified program — the one-shot failpoint has
/// fired by fallback time, so the rerun is clean.
#[test]
fn optimized_route_eval_panic_degrades_to_rectified() {
    let _g = serial();
    let s = parse_scenario(fanout::PROGRAM);
    let db = fanout::generate(&fanout::FanoutParams {
        nodes: 80,
        extra_edges: 40,
        fanout: 5,
        seed: 21,
    });
    let reference = {
        let (rect, _) = semrec::datalog::analysis::rectify(&s.program);
        let mut ev = Evaluator::new(&db, &rect, Strategy::SemiNaive).unwrap();
        ev.run().unwrap();
        ev.finish().relation("reach").unwrap().sorted_tuples()
    };
    failpoint::clear();
    failpoint::arm("eval.round", 1, FailAction::Panic);
    let outcome = semrec::core::evaluate_governed(
        &db,
        &s.program,
        &s.constraints,
        semrec::core::OptimizerConfig::default(),
        Budget::unlimited().with_deadline(Duration::from_secs(60)),
        CancelToken::new(),
        4,
    );
    failpoint::clear();
    let outcome = outcome.expect("fallback must answer after evaluation panic");
    assert_eq!(outcome.result.route, Route::RectifiedFallback);
    assert!(outcome.degraded.is_some());
    assert_eq!(
        outcome.result.relation("reach").unwrap().sorted_tuples(),
        reference
    );
}

/// The `io.load` site surfaces the injected failure as a typed I/O
/// error from CSV loading.
#[test]
fn io_load_failure_is_typed() {
    let _g = serial();
    let dir = std::env::temp_dir().join("semrec_fault_injection_io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("edge.csv");
    std::fs::write(&path, "1,2\n2,3\n").unwrap();

    failpoint::clear();
    failpoint::arm("io.load", 0, FailAction::Err);
    let mut db = Database::new();
    let err =
        semrec::engine::io::load_file(&mut db, "edge", &path).expect_err("armed io.load must fail");
    failpoint::clear();
    match err {
        EngineError::Io(msg) => assert!(msg.contains("injected error"), "{msg}"),
        other => panic!("expected Io, got {other:?}"),
    }
    // Disarmed, the same file loads.
    assert_eq!(
        semrec::engine::io::load_file(&mut db, "edge", &path).unwrap(),
        2
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Snapshot of everything an incremental transaction may touch: the
/// EDB relations, the maintained IDB, and (for the maintained-query
/// tests) the active route.
fn edb_snapshot(db: &Database, preds: &[&str]) -> Vec<(String, Vec<Tuple>)> {
    preds
        .iter()
        .map(|p| {
            let t = db
                .get((*p).into())
                .map(|r| r.sorted_tuples())
                .unwrap_or_default();
            ((*p).to_string(), t)
        })
        .collect()
}

fn idb_snapshot(
    idb: &std::collections::BTreeMap<semrec::datalog::Pred, semrec::engine::Relation>,
) -> Vec<(String, Vec<Tuple>)> {
    idb.iter()
        .map(|(p, r)| (p.to_string(), r.sorted_tuples()))
        .collect()
}

/// A seeded schedule over the `incr.delete` site: every transaction
/// with deletes either commits exactly (maintained IDB == from-scratch
/// evaluation of the post-tx database) or rolls back fully (database,
/// IDB, and invariants untouched). The schedule varies the fire round,
/// so some applies survive (the site stays unfired) and some abort.
#[test]
fn incr_delete_fault_commits_exactly_or_rolls_back() {
    let _g = serial();
    let s = parse_scenario(fanout::PROGRAM);
    let mut db = fanout::generate(&fanout::FanoutParams {
        nodes: 30,
        extra_edges: 15,
        fanout: 3,
        seed: 5,
    });
    let mut m = semrec::engine::incr::Materialized::new(&db, &s.program, 2).unwrap();
    let mut committed = 0u32;
    let mut rolled_back = 0u32;
    for seed in 0..10u64 {
        let mut rng = Rng::seed_from_u64(0xD0 + seed);
        // fire_at 0 hits this apply's single site visit; 1 never fires.
        let fire_at = rng.gen_range(0..2usize) as u64;
        let action = if rng.gen_bool(0.5) {
            FailAction::Err
        } else {
            FailAction::DelayMs(rng.gen_range(1..10usize) as u64)
        };
        let victim = db
            .get("edge".into())
            .unwrap()
            .sorted_tuples()
            .swap_remove(rng.gen_range(0..db.get("edge".into()).unwrap().len()));
        let mut tx = semrec::engine::Tx::new();
        tx.delete("edge", victim);
        tx.insert(
            "edge",
            vec![
                semrec::datalog::Value::Int(rng.gen_range(0..30i64)),
                semrec::datalog::Value::Int(rng.gen_range(0..30i64)),
            ],
        );
        let pre_edb = edb_snapshot(&db, &["edge", "witness"]);
        let pre_idb = idb_snapshot(m.idb());

        failpoint::clear();
        failpoint::arm("incr.delete", fire_at, action);
        let result = m.apply(&mut db, &tx, Budget::unlimited(), None);
        failpoint::clear();

        match result {
            Ok(_) => {
                committed += 1;
                let scratch = semrec::engine::evaluate(&db, &s.program, Strategy::SemiNaive)
                    .unwrap()
                    .relation("reach")
                    .unwrap()
                    .sorted_tuples();
                assert_eq!(
                    m.idb()[&"reach".into()].sorted_tuples(),
                    scratch,
                    "seed {seed}: committed tx diverged from scratch"
                );
            }
            Err(EngineError::Io(msg)) => {
                rolled_back += 1;
                assert!(msg.contains("injected error"), "seed {seed}: {msg}");
                assert_eq!(
                    edb_snapshot(&db, &["edge", "witness"]),
                    pre_edb,
                    "seed {seed}: EDB changed on rollback"
                );
                assert_eq!(
                    idb_snapshot(m.idb()),
                    pre_idb,
                    "seed {seed}: IDB changed on rollback"
                );
            }
            Err(other) => panic!("seed {seed}: unexpected error {other:?}"),
        }
        for rel in m.idb().values() {
            rel.check_invariant().expect("maintained IDB invariant");
        }
    }
    assert!(committed > 0, "no incr.delete schedule committed");
    assert!(rolled_back > 0, "no incr.delete schedule rolled back");
}

/// A seeded schedule over the `incr.icheck` site, driven through the
/// residue-guarded maintenance layer: a fault inside the delta IC
/// monitor must leave the maintained query — database, route, answers —
/// exactly as before the transaction.
#[test]
fn incr_icheck_fault_commits_exactly_or_rolls_back() {
    let _g = serial();
    let s = parse_scenario(fanout::PROGRAM);
    let db = fanout::generate(&fanout::FanoutParams {
        nodes: 30,
        extra_edges: 15,
        fanout: 3,
        seed: 6,
    });
    let mut q = semrec::core::maintain::MaintainedQuery::new(
        db,
        &s.program,
        &s.constraints,
        semrec::core::optimizer::OptimizerConfig::default(),
        2,
    )
    .unwrap();
    assert_eq!(q.route(), Route::Optimized);
    let mut committed = 0u32;
    let mut rolled_back = 0u32;
    for seed in 0..10u64 {
        let mut rng = Rng::seed_from_u64(0x1C + seed);
        let fire_at = rng.gen_range(0..2usize) as u64;
        let action = if rng.gen_bool(0.5) {
            FailAction::Err
        } else {
            FailAction::DelayMs(rng.gen_range(1..10usize) as u64)
        };
        // A fresh witnessed node keeps ic1 holding, so a surviving
        // apply stays on the incremental optimized route.
        let v = 1000 + seed as i64;
        let mut tx = semrec::engine::Tx::new();
        tx.insert(
            "edge",
            vec![
                semrec::datalog::Value::Int(rng.gen_range(0..30i64)),
                semrec::datalog::Value::Int(v),
            ],
        );
        tx.insert(
            "witness",
            vec![
                semrec::datalog::Value::Int(v),
                semrec::datalog::Value::Int(v * 1000),
            ],
        );
        let pre_edb = edb_snapshot(q.db(), &["edge", "witness"]);
        let pre_idb = idb_snapshot(q.idb());
        let pre_route = q.route();

        failpoint::clear();
        failpoint::arm("incr.icheck", fire_at, action);
        let result = q.apply(&tx, Budget::unlimited(), None);
        failpoint::clear();

        match result {
            Ok(out) => {
                committed += 1;
                assert_eq!(out.route, Route::IncrementalOptimized, "seed {seed}");
                let scratch =
                    semrec::engine::evaluate(q.db(), &q.plan().rectified, Strategy::SemiNaive)
                        .unwrap()
                        .relation("reach")
                        .unwrap()
                        .sorted_tuples();
                assert_eq!(
                    q.idb()[&"reach".into()].sorted_tuples(),
                    scratch,
                    "seed {seed}: committed tx diverged from scratch"
                );
            }
            Err(EngineError::Io(msg)) => {
                rolled_back += 1;
                assert!(msg.contains("injected error"), "seed {seed}: {msg}");
                // The inserted node is rolled back with everything else,
                // so the next iteration can reuse nothing stale.
                assert_eq!(
                    edb_snapshot(q.db(), &["edge", "witness"]),
                    pre_edb,
                    "seed {seed}: EDB changed on rollback"
                );
                assert_eq!(
                    idb_snapshot(q.idb()),
                    pre_idb,
                    "seed {seed}: IDB changed on rollback"
                );
                assert_eq!(
                    q.route(),
                    pre_route,
                    "seed {seed}: route changed on rollback"
                );
            }
            Err(other) => panic!("seed {seed}: unexpected error {other:?}"),
        }
        for rel in q.idb().values() {
            rel.check_invariant().expect("maintained IDB invariant");
        }
    }
    assert!(committed > 0, "no incr.icheck schedule committed");
    assert!(rolled_back > 0, "no incr.icheck schedule rolled back");
}
