//! Fault-injected serving suite (`cargo test --features failpoints`).
//!
//! Every schedule below drives the full commit pipeline — WAL append +
//! fsync, maintained apply, copy-on-write epoch publish — or the reader
//! path through seeded failpoint schedules over the serving sites
//! (`wal.append`, `wal.fsync`, `snapshot.publish`, `serve.reader`),
//! plus simulated kill-and-restart crashes mid-commit. The invariant is
//! the serving extension of the engine's: every run ends in either the
//! **exact** serial-replay answer or a **typed** error — never a wrong
//! answer, never divergence between the WAL and the applied state.

#![cfg(feature = "failpoints")]

use semrec::core::maintain::MaintainedQuery;
use semrec::core::optimizer::OptimizerConfig;
use semrec::datalog::parser::{parse_atom, parse_unit, Unit};
use semrec::datalog::Atom;
use semrec::engine::failpoint::{self, FailAction};
use semrec::engine::{int_tuple, Budget, Database, Tuple, Tx};
use semrec::gen::rng::Rng;
use semrec::serve::{AdmissionConfig, ServeConfig, ServeError, Server};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// Failpoint schedules are process-global: every test serializes here
/// and clears the registry on both sides of its run.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Guarded reachability: the IC lets the optimizer drop the `witness`
/// subgoal, so the commit mix below exercises the optimized route, IC
/// invalidation, and recovery.
fn unit() -> Unit {
    parse_unit(
        "reach(X, Y) :- edge(X, Y).\n\
         reach(X, Y) :- edge(X, Z), witness(Z, W), reach(Z, Y).\n\
         ic ic1: edge(X, Z) -> witness(Z, W).\n\
         edge(1, 2). edge(2, 3). edge(3, 4).\n\
         witness(1, 100). witness(2, 200). witness(3, 300). witness(4, 400).",
    )
    .expect("parse unit")
}

fn goal() -> Atom {
    parse_atom("reach(1, Y)").expect("goal")
}

fn tmp_wal(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "semrec-serve-fault-{}-{name}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// The seed-derived transaction mix: witnessed chain extensions, one
/// delete, and (on some seeds) an IC-violating edge whose commit flips
/// the maintained route to the rectified program mid-stream.
fn tx_mix(rng: &mut Rng) -> Vec<Tx> {
    let mut txs = Vec::new();
    for i in 0..6i64 {
        let next = 5 + i;
        let mut tx = Tx::new();
        match (i, rng.gen_range(0..4usize)) {
            (2, 0) => {
                // IC violation: an edge to a witness-less node.
                tx.insert("edge", int_tuple(&[2, 900 + next]));
            }
            (4, _) => {
                // A delete (possibly repairing an earlier violation).
                tx.delete("edge", int_tuple(&[2, 900 + next - 1]));
                tx.delete("edge", int_tuple(&[3, 4]));
            }
            _ => {
                let from = rng.gen_range(1..next);
                tx.insert("edge", int_tuple(&[from, next]));
                tx.insert("witness", int_tuple(&[next, next * 1000]));
            }
        }
        txs.push(tx);
    }
    txs
}

/// The serial-replay reference: a fresh maintained query with the same
/// program and ICs, applying `txs` one by one. By definition this is
/// what any surviving daemon state must agree with tuple-for-tuple.
fn serial_replay(txs: &[Tx]) -> Vec<Tuple> {
    let u = unit();
    let mut q = MaintainedQuery::new(
        Database::from_facts(&u.facts),
        &u.program(),
        &u.constraints,
        OptimizerConfig::default(),
        1,
    )
    .expect("reference query");
    for tx in txs {
        q.apply(tx, Budget::unlimited(), None)
            .expect("reference apply");
    }
    let mut a = q.answers(&goal());
    a.sort();
    a
}

/// ≥30 seeded schedules over the commit-pipeline sites. Each schedule
/// arms one site at a seed-drawn fire index and pushes the whole tx mix
/// through `Server::commit`. Acknowledged commits must be answerable
/// exactly; failed commits must be typed and leave WAL == applied state
/// (checked both live after a flush commit and across a restart).
#[test]
fn seeded_commit_schedules_end_exact_or_typed() {
    let _g = serial();
    let mut committed_runs = 0u32;
    let mut failed_runs = 0u32;
    for seed in 0..32u64 {
        let mut rng = Rng::seed_from_u64(0x5E41 + seed);
        let site = ["wal.append", "wal.fsync", "snapshot.publish"][rng.gen_range(0..3usize)];
        let fire_at = rng.gen_range(0..6usize) as u64;
        let action = if rng.gen_bool(0.7) {
            FailAction::Err
        } else {
            FailAction::DelayMs(rng.gen_range(1..10usize) as u64)
        };
        let txs = tx_mix(&mut rng);
        let wal = tmp_wal(&format!("sched-{seed}"));
        let (server, _) = Server::open(&unit(), ServeConfig::default(), Some(&wal)).expect("open");

        failpoint::clear();
        failpoint::arm(site, fire_at, action);
        // Which transactions are durable-and-applied: every Ok, plus
        // publish-stage failures (durable + applied, just unpublished).
        let mut applied: Vec<Tx> = Vec::new();
        let mut saw_error = false;
        for tx in &txs {
            match server.commit(tx) {
                Ok(_) => applied.push(tx.clone()),
                Err(ServeError::Io(msg)) => {
                    saw_error = true;
                    assert!(
                        msg.contains("injected"),
                        "seed {seed} ({site}@{fire_at}): {msg}"
                    );
                    if msg.contains("snapshot publish") {
                        applied.push(tx.clone());
                    }
                }
                Err(other) => panic!("seed {seed} ({site}@{fire_at}): untyped {other:?}"),
            }
        }
        failpoint::clear();

        // Live agreement: one flush commit publishes any epoch a failed
        // publish left pending, then the latest answer must equal the
        // serial replay of exactly the applied transactions.
        let mut flush = Tx::new();
        flush.insert("edge", int_tuple(&[1, 777]));
        flush.insert("witness", int_tuple(&[777, 777000]));
        server.commit(&flush).expect("flush commit after disarm");
        applied.push(flush);
        let live = server.query(&goal(), None, None).expect("live query");
        assert_eq!(
            live.tuples,
            serial_replay(&applied),
            "seed {seed} ({site}@{fire_at}): live state diverged from serial replay"
        );
        drop(server);

        // Restart agreement: replaying the WAL must reconverge to the
        // same state — the durable history is exactly the applied one.
        let (reopened, report) =
            Server::open(&unit(), ServeConfig::default(), Some(&wal)).expect("reopen");
        assert_eq!(
            report.replayed_commits,
            applied.len(),
            "seed {seed} ({site}@{fire_at}): WAL and applied history diverged"
        );
        let replayed = reopened.query(&goal(), None, None).expect("replayed query");
        assert_eq!(
            replayed.tuples,
            serial_replay(&applied),
            "seed {seed} ({site}@{fire_at}): restart diverged from serial replay"
        );
        if saw_error {
            failed_runs += 1;
        } else {
            committed_runs += 1;
        }
        let _ = std::fs::remove_file(&wal);
    }
    // The sweep must exercise both outcomes, or the sites went dead.
    assert!(committed_runs > 0, "no schedule ran clean");
    assert!(failed_runs > 0, "no schedule tripped a failure");
}

/// Mid-batch `wal.append` schedules over the explicit batch entry point
/// (`Server::commit_many`): the transaction whose append fires is
/// condemned alone — its record never becomes durable — while every
/// other transaction in the batch acknowledges at the *same* epoch (one
/// publication per batch). Restart replay must reconverge to exactly
/// the acknowledged set: acks match applied history.
#[test]
fn mid_batch_wal_append_fault_condemns_one_tx_and_acks_the_rest() {
    let _g = serial();
    for seed in 0..12u64 {
        let mut rng = Rng::seed_from_u64(0xBA7C + seed);
        let txs = tx_mix(&mut rng);
        let fire_at = rng.gen_range(0..txs.len()) as u64;
        let wal = tmp_wal(&format!("batch-{seed}"));
        let (server, _) = Server::open(&unit(), ServeConfig::default(), Some(&wal)).expect("open");

        failpoint::clear();
        failpoint::arm("wal.append", fire_at, FailAction::Err);
        let replies = server.commit_many(&txs);
        failpoint::clear();

        assert_eq!(replies.len(), txs.len());
        let mut acked: Vec<Tx> = Vec::new();
        let mut batch_epoch = None;
        for (i, reply) in replies.iter().enumerate() {
            if i as u64 == fire_at {
                match reply {
                    Err(ServeError::Io(msg)) => {
                        assert!(msg.contains("injected"), "seed {seed} tx {i}: {msg}")
                    }
                    other => panic!("seed {seed}: condemned tx {i} got {other:?}"),
                }
            } else {
                let r = reply
                    .as_ref()
                    .unwrap_or_else(|e| panic!("seed {seed}: survivor tx {i} errored: {e}"));
                assert_eq!(
                    *batch_epoch.get_or_insert(r.epoch),
                    r.epoch,
                    "seed {seed}: survivors must share the batch epoch"
                );
                acked.push(txs[i].clone());
            }
        }
        assert_eq!(batch_epoch, Some(1), "one publication for the whole batch");

        let live = server.query(&goal(), None, None).expect("live query");
        assert_eq!(
            live.tuples,
            serial_replay(&acked),
            "seed {seed}: live state diverged from the acknowledged set"
        );
        drop(server);

        let (reopened, report) =
            Server::open(&unit(), ServeConfig::default(), Some(&wal)).expect("reopen");
        assert_eq!(
            report.replayed_commits,
            acked.len(),
            "seed {seed}: durable history must hold exactly the acknowledged transactions"
        );
        let replayed = reopened.query(&goal(), None, None).expect("replayed query");
        assert_eq!(
            replayed.tuples,
            serial_replay(&acked),
            "seed {seed}: restart diverged from the acknowledged set"
        );
        let _ = std::fs::remove_file(&wal);
    }
}

/// The answer cache under seeded commit-fault schedules: repeated goals
/// (warm + hit) bracket every commit attempt, and each read must answer
/// exactly the serial replay of the currently *published* prefix — a
/// fault that condemns, rejects, or leaves a commit applied-but-
/// unpublished must never let a stale cached answer through, and the
/// cache must still be taking hits throughout.
#[test]
fn answer_cache_never_serves_stale_under_fault_schedules() {
    let _g = serial();
    for seed in 0..10u64 {
        let mut rng = Rng::seed_from_u64(0xCAC4E + seed);
        let site = ["wal.append", "wal.fsync", "snapshot.publish"][rng.gen_range(0..3usize)];
        let fire_at = rng.gen_range(0..6usize) as u64;
        let txs = tx_mix(&mut rng);
        let wal = tmp_wal(&format!("cache-{seed}"));
        let (server, _) = Server::open(&unit(), ServeConfig::default(), Some(&wal)).expect("open");

        failpoint::clear();
        failpoint::arm(site, fire_at, FailAction::Err);
        // `applied` is durable-and-applied history; `visible` is how
        // much of it the latest *published* epoch exposes (a failed
        // publish lags until the next successful commit subsumes it).
        let mut applied: Vec<Tx> = Vec::new();
        let mut visible = 0usize;
        for tx in &txs {
            for _ in 0..2 {
                let r = server.query(&goal(), None, None).expect("pre-commit read");
                assert_eq!(
                    r.tuples,
                    serial_replay(&applied[..visible]),
                    "seed {seed} ({site}@{fire_at}): stale answer before commit"
                );
            }
            match server.commit(tx) {
                Ok(_) => {
                    applied.push(tx.clone());
                    visible = applied.len();
                }
                Err(ServeError::Io(msg)) => {
                    assert!(msg.contains("injected"), "seed {seed}: {msg}");
                    if msg.contains("snapshot publish") {
                        applied.push(tx.clone());
                    }
                }
                Err(other) => panic!("seed {seed} ({site}@{fire_at}): untyped {other:?}"),
            }
            for _ in 0..2 {
                let r = server.query(&goal(), None, None).expect("post-commit read");
                assert_eq!(
                    r.tuples,
                    serial_replay(&applied[..visible]),
                    "seed {seed} ({site}@{fire_at}): stale answer after commit"
                );
            }
        }
        failpoint::clear();
        let stats = server.stats();
        assert!(
            stats.cache_hits > 0,
            "seed {seed}: the repeated goals must be hitting the cache"
        );
        let _ = std::fs::remove_file(&wal);
    }
}

/// Seeded schedules over the reader site: an injected reader fault is a
/// typed error, never a wrong answer, and the next (disarmed) read of
/// the same epoch is exact.
#[test]
fn seeded_reader_schedules_fail_typed_then_answer_exact() {
    let _g = serial();
    let (server, _) = Server::open(&unit(), ServeConfig::default(), None).expect("open");
    let expect = serial_replay(&[]);
    for seed in 0..8u64 {
        let mut rng = Rng::seed_from_u64(0xF00D + seed);
        let fire_at = rng.gen_range(0..2usize) as u64;
        failpoint::clear();
        failpoint::arm("serve.reader", fire_at, FailAction::Err);
        let first = server.query(&goal(), None, None);
        let second = server.query(&goal(), None, None);
        failpoint::clear();
        let results = [first, second];
        let fired = results
            .iter()
            .filter(|r| match r {
                Err(ServeError::Io(msg)) => {
                    assert!(msg.contains("injected"), "seed {seed}: {msg}");
                    true
                }
                Ok(reply) => {
                    assert_eq!(reply.tuples, expect, "seed {seed}: wrong answer");
                    false
                }
                Err(other) => panic!("seed {seed}: untyped {other:?}"),
            })
            .count();
        assert_eq!(
            fired, 1,
            "seed {seed}: one-shot site must fire exactly once"
        );
        // Disarmed: exact again.
        let clean = server.query(&goal(), None, None).expect("clean read");
        assert_eq!(clean.tuples, expect, "seed {seed}");
    }
}

/// Kill-and-restart mid-commit, torn-tail flavor: the process dies while
/// the last record is partially on disk. Reopen must truncate the torn
/// tail and reconverge on the acknowledged prefix.
#[test]
fn kill_and_restart_mid_commit_recovers_acknowledged_prefix() {
    let _g = serial();
    failpoint::clear();
    let wal = tmp_wal("torn");
    let mut rng = Rng::seed_from_u64(0x7EA2);
    let txs = tx_mix(&mut rng);
    let mut lens = Vec::new();
    {
        let (server, _) = Server::open(&unit(), ServeConfig::default(), Some(&wal)).expect("open");
        for tx in &txs {
            server.commit(tx).expect("commit");
            lens.push(std::fs::metadata(&wal).expect("wal meta").len());
        }
    }
    // Simulate the crash: the last record made it only partway to disk.
    let keep_records = txs.len() - 1;
    let torn_len = lens[keep_records - 1] + (lens[keep_records] - lens[keep_records - 1]) / 2;
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal)
        .expect("open wal for tearing");
    f.set_len(torn_len).expect("tear");
    drop(f);

    let (server, report) =
        Server::open(&unit(), ServeConfig::default(), Some(&wal)).expect("reopen after tear");
    assert_eq!(report.replayed_commits, keep_records);
    assert!(report.truncated_tail.is_some(), "tear must be detected");
    let got = server.query(&goal(), None, None).expect("query");
    assert_eq!(
        got.tuples,
        serial_replay(&txs[..keep_records]),
        "recovered state must equal the serial replay of the surviving prefix"
    );
    let _ = std::fs::remove_file(&wal);
}

/// Kill-and-restart mid-commit, fsync-then-die flavor: the record is
/// fully durable but the process dies before `apply`. Replay must apply
/// it — restart state is the serial replay of the whole surviving log.
#[test]
fn kill_and_restart_between_fsync_and_apply_replays_the_commit() {
    let _g = serial();
    failpoint::clear();
    let wal = tmp_wal("fsync-die");
    let mut tx1 = Tx::new();
    tx1.insert("edge", int_tuple(&[4, 5]));
    tx1.insert("witness", int_tuple(&[5, 5000]));
    {
        let (server, _) = Server::open(&unit(), ServeConfig::default(), Some(&wal)).expect("open");
        server.commit(&tx1).expect("commit");
    }
    // The "crashed" commit: its record is durable in the log, but no
    // process ever applied it.
    let mut tx2 = Tx::new();
    tx2.insert("edge", int_tuple(&[5, 6]));
    tx2.insert("witness", int_tuple(&[6, 6000]));
    {
        let (mut w, replay) = semrec::serve::Wal::open(&wal).expect("raw wal open");
        assert_eq!(replay.records.len(), 1);
        w.append_commit(&semrec::engine::tx_to_stream(&tx2))
            .expect("raw append");
    }
    let (server, report) =
        Server::open(&unit(), ServeConfig::default(), Some(&wal)).expect("reopen");
    assert_eq!(report.replayed_commits, 2);
    let got = server.query(&goal(), None, None).expect("query");
    assert_eq!(got.tuples, serial_replay(&[tx1, tx2]));
    let _ = std::fs::remove_file(&wal);
}

/// Overload sheds typed (with a retry hint) while admitted requests
/// answer exactly; capacity freeing re-admits.
#[test]
fn overload_sheds_typed_while_admitted_queries_answer_exactly() {
    let _g = serial();
    failpoint::clear();
    let cfg = ServeConfig {
        admission: AdmissionConfig {
            max_inflight: 2,
            ..AdmissionConfig::default()
        },
        ..ServeConfig::default()
    };
    let (server, _) = Server::open(&unit(), cfg, None).expect("open");
    let expect = serial_replay(&[]);
    // Saturate the gate with held permits, then overload.
    let held = server.admission().admit(None).expect("permit 1");
    let _held2 = server.admission().admit(None).expect("permit 2");
    match server.query(&goal(), None, None) {
        Err(ServeError::Overloaded {
            limit,
            retry_after_ms,
            ..
        }) => {
            assert_eq!(limit, 2);
            assert!(retry_after_ms >= 1);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    drop(held);
    let got = server
        .query(&goal(), None, None)
        .expect("admitted after free");
    assert_eq!(got.tuples, expect, "admitted query answers exactly");
}

/// An epoch that fell off the retention ring is the typed
/// `EpochReclaimed`; retained epochs keep answering their exact
/// historical snapshot.
#[test]
fn reclaimed_epoch_is_typed_and_retained_epochs_stay_exact() {
    let _g = serial();
    failpoint::clear();
    let cfg = ServeConfig {
        retain_epochs: 2,
        ..ServeConfig::default()
    };
    let (server, _) = Server::open(&unit(), cfg, None).expect("open");
    let epoch0 = server
        .query(&goal(), Some(0), None)
        .expect("epoch 0")
        .tuples;
    let mut applied = Vec::new();
    for i in 0..3i64 {
        let mut tx = Tx::new();
        tx.insert("edge", int_tuple(&[4, 10 + i]));
        tx.insert("witness", int_tuple(&[10 + i, (10 + i) * 1000]));
        server.commit(&tx).expect("commit");
        applied.push(tx);
    }
    match server.query(&goal(), Some(0), None) {
        Err(ServeError::EpochReclaimed { requested, oldest }) => {
            assert_eq!(requested, 0);
            assert_eq!(oldest, 2);
        }
        other => panic!("expected EpochReclaimed, got {other:?}"),
    }
    let at2 = server.query(&goal(), Some(2), None).expect("epoch 2");
    assert_eq!(at2.tuples, serial_replay(&applied[..2]));
    assert_ne!(at2.tuples, epoch0, "history actually moved");
}

/// Graceful degradation mid-stream: an IC-violating commit flips the
/// route to the rectified program (reported as `violated`), a reader
/// pinned on the pre-violation epoch keeps its exact snapshot, and the
/// repairing commit restores the optimized route — all answers matching
/// serial replay throughout.
#[test]
fn ic_violation_mid_stream_degrades_without_dropping_pinned_readers() {
    let _g = serial();
    failpoint::clear();
    let (server, _) = Server::open(&unit(), ServeConfig::default(), None).expect("open");
    assert_eq!(
        server.registry().latest().route,
        semrec::engine::Route::Optimized
    );
    let pre = server
        .query(&goal(), None, None)
        .expect("pre-violation read");

    let mut bad = Tx::new();
    bad.insert("edge", int_tuple(&[2, 50])); // witness-less target
    let reply = server.commit(&bad).expect("violating commit applies");
    assert_eq!(reply.route, semrec::engine::Route::IncrementalInvalidated);
    assert!(!reply.violated.is_empty(), "violation must be reported");
    assert_eq!(
        server
            .query(&goal(), None, None)
            .expect("degraded read")
            .tuples,
        serial_replay(std::slice::from_ref(&bad)),
        "rectified route must answer exactly"
    );
    // The pinned pre-violation epoch is untouched by the route flip.
    let pinned = server
        .query(&goal(), Some(pre.epoch), None)
        .expect("pinned read survives invalidation");
    assert_eq!(pinned.tuples, pre.tuples);

    let mut repair = Tx::new();
    repair.delete("edge", int_tuple(&[2, 50]));
    let reply = server.commit(&repair).expect("repairing commit");
    assert_eq!(reply.route, semrec::engine::Route::IncrementalOptimized);
    assert!(reply.violated.is_empty());
    assert_eq!(
        server
            .query(&goal(), None, None)
            .expect("recovered read")
            .tuples,
        serial_replay(&[bad, repair])
    );
}
