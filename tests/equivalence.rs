//! Property-based equivalence tests: the paper's Theorem 4.1 (isolation
//! preserves semantics on *all* databases) and the soundness of pushing
//! (the optimized program agrees on every *IC-satisfying* database).

use proptest::prelude::*;
use semrec::core::isolate::isolate;
use semrec::core::optimizer::{Optimizer, OptimizerConfig};
use semrec::core::sequence::unfold;
use semrec::datalog::analysis::{classify_linear_pred, rectify};
use semrec::datalog::parser::parse_unit;
use semrec::datalog::{Pred, Value};
use semrec::engine::{evaluate, Database, Strategy};
use semrec::gen::{fanout, genealogy, org, parse_scenario, university};

fn random_graph_db(pred: &str, edges: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    for &(a, b) in edges {
        db.insert(pred, vec![Value::Int(a), Value::Int(b)]);
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 4.1: the α/β/γ isolation of any expansion sequence computes
    /// the same IDB as the original program, on arbitrary databases (no IC
    /// involvement at all).
    #[test]
    fn isolation_preserves_semantics(
        edges in proptest::collection::vec((0i64..14, 0i64..14), 1..40),
        seq_spec in proptest::collection::vec(proptest::bool::ANY, 1..4),
    ) {
        let unit = parse_unit(
            "anc(X, Y) :- par(X, Y). anc(X, Y) :- anc(X, Z), par(Z, Y)."
        ).unwrap();
        let (prog, _) = rectify(&unit.program());
        let info = classify_linear_pred(&prog, Pred::new("anc")).unwrap();
        // Sequence: recursive rules, with an optional exit-rule ending.
        let mut seq: Vec<usize> = seq_spec.iter().map(|_| 1usize).collect();
        if seq_spec[0] {
            seq.push(0);
        }
        let u = unfold(&prog, &info, &seq).unwrap();
        let iso = isolate(&prog, &info, &u);

        let db = random_graph_db("par", &edges);
        let base = evaluate(&db, &prog, Strategy::SemiNaive).unwrap();
        let isod = evaluate(&db, &iso.program, Strategy::SemiNaive).unwrap();
        prop_assert_eq!(
            base.relation("anc").unwrap().sorted_tuples(),
            isod.relation("anc").unwrap().sorted_tuples()
        );
    }

    /// Naive and semi-naive evaluation agree on random graphs.
    #[test]
    fn naive_equals_seminaive(
        edges in proptest::collection::vec((0i64..12, 0i64..12), 1..50),
    ) {
        let prog = parse_unit(
            "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y)."
        ).unwrap().program();
        let db = random_graph_db("e", &edges);
        let a = evaluate(&db, &prog, Strategy::Naive).unwrap();
        let b = evaluate(&db, &prog, Strategy::SemiNaive).unwrap();
        prop_assert_eq!(
            a.relation("t").unwrap().sorted_tuples(),
            b.relation("t").unwrap().sorted_tuples()
        );
    }

    /// The fully optimized org program agrees with the original on every
    /// generated IC-consistent database.
    #[test]
    fn org_optimization_sound(seed in 0u64..500, frac in 0.0f64..1.0) {
        let s = parse_scenario(org::PROGRAM);
        let plan = Optimizer::new(&s.program)
            .with_constraints(&s.constraints)
            .run()
            .unwrap();
        let db = org::generate(&org::OrgParams {
            employees: 60,
            executive_frac: frac,
            seed,
            ..org::OrgParams::default()
        });
        for ic in &s.constraints {
            prop_assert!(db.satisfies(ic));
        }
        let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
        let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap();
        prop_assert_eq!(
            base.relation("triple").unwrap().sorted_tuples(),
            opt.relation("triple").unwrap().sorted_tuples()
        );
    }

    /// Same for the university program (elimination + introduction).
    #[test]
    fn university_optimization_sound(seed in 0u64..500, chain in 2usize..6) {
        let s = parse_scenario(university::PROGRAM);
        let mut config = OptimizerConfig::default();
        config.policy.small_relations.insert(Pred::new("doctoral"));
        let plan = Optimizer::new(&s.program)
            .with_constraints(&s.constraints)
            .with_config(config)
            .run()
            .unwrap();
        let db = university::generate(&university::UniversityParams {
            professors: 24,
            students: 40,
            chain_len: chain,
            seed,
            ..university::UniversityParams::default()
        });
        let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
        let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap();
        for p in ["eval", "eval_support"] {
            prop_assert_eq!(
                base.relation(p).unwrap().sorted_tuples(),
                opt.relation(p).unwrap().sorted_tuples()
            );
        }
    }

    /// Same for the genealogy program (conditional pruning).
    #[test]
    fn genealogy_optimization_sound(seed in 0u64..500, depth in 1usize..5) {
        let s = parse_scenario(genealogy::PROGRAM);
        let plan = Optimizer::new(&s.program)
            .with_constraints(&s.constraints)
            .run()
            .unwrap();
        let db = genealogy::generate(&genealogy::GenealogyParams {
            families: 2,
            depth,
            branching: 2,
            seed,
        });
        for ic in &s.constraints {
            prop_assert!(db.satisfies(ic));
        }
        let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
        let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap();
        prop_assert_eq!(
            base.relation("anc").unwrap().sorted_tuples(),
            opt.relation("anc").unwrap().sorted_tuples()
        );
    }

    /// Same for the guarded-reachability program (k = 1 elimination).
    #[test]
    fn fanout_optimization_sound(seed in 0u64..500, fo in 1usize..6) {
        let s = parse_scenario(fanout::PROGRAM);
        let plan = Optimizer::new(&s.program)
            .with_constraints(&s.constraints)
            .run()
            .unwrap();
        let db = fanout::generate(&fanout::FanoutParams {
            nodes: 30,
            extra_edges: 20,
            fanout: fo,
            seed,
        });
        let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
        let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap();
        prop_assert_eq!(
            base.relation("reach").unwrap().sorted_tuples(),
            opt.relation("reach").unwrap().sorted_tuples()
        );
    }

    /// Magic-sets evaluation is sound and complete w.r.t. full evaluation,
    /// for random goal bindings.
    #[test]
    fn magic_query_complete(
        edges in proptest::collection::vec((0i64..12, 0i64..12), 1..40),
        bind_first in proptest::bool::ANY,
        value in 0i64..12,
    ) {
        let prog = parse_unit(
            "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y)."
        ).unwrap().program();
        let db = random_graph_db("e", &edges);
        let goal = if bind_first {
            semrec::datalog::parser::parse_atom(&format!("t({value}, Y)")).unwrap()
        } else {
            semrec::datalog::parser::parse_atom(&format!("t(X, {value})")).unwrap()
        };
        let (mut answers, _) =
            semrec::engine::magic::evaluate_query(&db, &prog, &goal, Strategy::SemiNaive).unwrap();
        answers.sort();
        let full = evaluate(&db, &prog, Strategy::SemiNaive).unwrap();
        let mut expected = full.answers(&goal);
        expected.sort();
        expected.dedup();
        prop_assert_eq!(answers, expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Theorem 4.1 on *random* linear programs: isolation of a random
    /// sequence preserves the IDB on random databases.
    #[test]
    fn isolation_preserves_semantics_on_random_programs(
        seed in 0u64..300,
        arity in 1usize..4,
        nrules in 1usize..3,
        locals in 0usize..3,
        seq_len in 1usize..4,
        close_with_exit in proptest::bool::ANY,
        edges in proptest::collection::vec((0i64..6, 0i64..6), 1..20),
    ) {
        use semrec::gen::programs::{random_linear, RandomLinearParams};
        let program = random_linear(&RandomLinearParams {
            arity,
            recursive_rules: nrules,
            locals,
            seed,
        });
        let (prog, _) = rectify(&program);
        let info = classify_linear_pred(&prog, Pred::new("p")).unwrap();

        // A random sequence over the recursive rules, optionally closed by
        // the exit rule.
        let mut seq: Vec<usize> = (0..seq_len)
            .map(|i| info.recursive_rules[(seed as usize + i) % info.recursive_rules.len()])
            .collect();
        if close_with_exit {
            seq.push(info.exit_rules[0]);
        }
        let u = unfold(&prog, &info, &seq).unwrap();
        let iso = isolate(&prog, &info, &u);

        // Fill every EDB predicate with the same random binary data; the
        // exit relation gets `arity`-wide tuples.
        let mut db = Database::new();
        for (a, b) in &edges {
            let tuple: Vec<Value> = (0..arity)
                .map(|i| Value::Int(if i % 2 == 0 { *a } else { *b }))
                .collect();
            db.insert("e0", tuple);
        }
        for pred in prog.edb_preds() {
            if pred.name().starts_with('b') {
                for (a, b) in &edges {
                    db.insert(pred, vec![Value::Int(*a), Value::Int(*b)]);
                }
            }
        }

        let base = evaluate(&db, &prog, Strategy::SemiNaive).unwrap();
        let isod = evaluate(&db, &iso.program, Strategy::SemiNaive).unwrap();
        prop_assert_eq!(
            base.relation("p").unwrap().sorted_tuples(),
            isod.relation("p").unwrap().sorted_tuples(),
            "seed {} seq {:?} program:\n{}",
            seed,
            seq,
            prog
        );

        // The full-commitment structure used by the pusher must also be
        // equivalence-preserving when no optimization is applied.
        let pusher = semrec::core::push::Pusher::new(&prog, &info, &u);
        let committed = pusher.finish();
        let com = evaluate(&db, &committed.program, Strategy::SemiNaive).unwrap();
        prop_assert_eq!(
            base.relation("p").unwrap().sorted_tuples(),
            com.relation("p").unwrap().sorted_tuples(),
            "commitment structure diverged for seed {} seq {:?}",
            seed,
            seq
        );
    }
}
