//! Randomized equivalence tests: the paper's Theorem 4.1 (isolation
//! preserves semantics on *all* databases) and the soundness of pushing
//! (the optimized program agrees on every *IC-satisfying* database).
//!
//! Formerly a `proptest` suite; rewritten as seeded loops over the
//! workspace's own SplitMix64 PRNG so plain `cargo test -q` needs no
//! registry access (offline-build policy). Coverage is equivalent: each
//! test draws the same parameter ranges across a fixed number of cases,
//! and every case is reproducible from the printed seed.

use semrec::core::isolate::isolate;
use semrec::core::optimizer::{Optimizer, OptimizerConfig};
use semrec::core::sequence::unfold;
use semrec::datalog::analysis::{classify_linear_pred, rectify};
use semrec::datalog::parser::parse_unit;
use semrec::datalog::{Pred, Value};
use semrec::engine::{evaluate, Database, Strategy};
use semrec::gen::rng::Rng;
use semrec::gen::{fanout, genealogy, org, parse_scenario, university};

fn random_graph_db(pred: &str, edges: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    for &(a, b) in edges {
        db.insert(pred, vec![Value::Int(a), Value::Int(b)]);
    }
    db
}

fn random_edges(rng: &mut Rng, nodes: i64, max_edges: usize) -> Vec<(i64, i64)> {
    let m = rng.gen_range(1..max_edges.max(2));
    (0..m)
        .map(|_| (rng.gen_range(0..nodes), rng.gen_range(0..nodes)))
        .collect()
}

/// Theorem 4.1: the α/β/γ isolation of any expansion sequence computes
/// the same IDB as the original program, on arbitrary databases (no IC
/// involvement at all).
#[test]
fn isolation_preserves_semantics() {
    for case in 0u64..48 {
        let mut rng = Rng::seed_from_u64(0x150 + case);
        let edges = random_edges(&mut rng, 14, 40);
        let seq_len = rng.gen_range(1..4usize);

        let unit =
            parse_unit("anc(X, Y) :- par(X, Y). anc(X, Y) :- anc(X, Z), par(Z, Y).").unwrap();
        let (prog, _) = rectify(&unit.program());
        let info = classify_linear_pred(&prog, Pred::new("anc")).unwrap();
        // Sequence: recursive rules, with an optional exit-rule ending.
        let mut seq: Vec<usize> = vec![1; seq_len];
        if rng.gen_bool(0.5) {
            seq.push(0);
        }
        let u = unfold(&prog, &info, &seq).unwrap();
        let iso = isolate(&prog, &info, &u);

        let db = random_graph_db("par", &edges);
        let base = evaluate(&db, &prog, Strategy::SemiNaive).unwrap();
        let isod = evaluate(&db, &iso.program, Strategy::SemiNaive).unwrap();
        assert_eq!(
            base.relation("anc").unwrap().sorted_tuples(),
            isod.relation("anc").unwrap().sorted_tuples(),
            "case {case}"
        );
    }
}

/// Naive and semi-naive evaluation agree on random graphs.
#[test]
fn naive_equals_seminaive() {
    for case in 0u64..48 {
        let mut rng = Rng::seed_from_u64(0x251 + case);
        let edges = random_edges(&mut rng, 12, 50);
        let prog = parse_unit("t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y).")
            .unwrap()
            .program();
        let db = random_graph_db("e", &edges);
        let a = evaluate(&db, &prog, Strategy::Naive).unwrap();
        let b = evaluate(&db, &prog, Strategy::SemiNaive).unwrap();
        assert_eq!(
            a.relation("t").unwrap().sorted_tuples(),
            b.relation("t").unwrap().sorted_tuples(),
            "case {case}"
        );
    }
}

/// The fully optimized org program agrees with the original on every
/// generated IC-consistent database.
#[test]
fn org_optimization_sound() {
    let s = parse_scenario(org::PROGRAM);
    let plan = Optimizer::new(&s.program)
        .with_constraints(&s.constraints)
        .run()
        .unwrap();
    for case in 0u64..48 {
        let mut rng = Rng::seed_from_u64(0x352 + case);
        let seed = rng.gen_range(0..500usize) as u64;
        let frac = rng.gen_range(0..1000usize) as f64 / 1000.0;
        let db = org::generate(&org::OrgParams {
            employees: 60,
            executive_frac: frac,
            seed,
            ..org::OrgParams::default()
        });
        for ic in &s.constraints {
            assert!(db.satisfies(ic), "case {case}");
        }
        let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
        let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap();
        assert_eq!(
            base.relation("triple").unwrap().sorted_tuples(),
            opt.relation("triple").unwrap().sorted_tuples(),
            "case {case} seed {seed}"
        );
    }
}

/// Same for the university program (elimination + introduction).
#[test]
fn university_optimization_sound() {
    let s = parse_scenario(university::PROGRAM);
    let mut config = OptimizerConfig::default();
    config.policy.small_relations.insert(Pred::new("doctoral"));
    let plan = Optimizer::new(&s.program)
        .with_constraints(&s.constraints)
        .with_config(config)
        .run()
        .unwrap();
    for case in 0u64..24 {
        let mut rng = Rng::seed_from_u64(0x453 + case);
        let seed = rng.gen_range(0..500usize) as u64;
        let chain = rng.gen_range(2..6usize);
        let db = university::generate(&university::UniversityParams {
            professors: 24,
            students: 40,
            chain_len: chain,
            seed,
            ..university::UniversityParams::default()
        });
        let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
        let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap();
        for p in ["eval", "eval_support"] {
            assert_eq!(
                base.relation(p).unwrap().sorted_tuples(),
                opt.relation(p).unwrap().sorted_tuples(),
                "case {case} seed {seed} pred {p}"
            );
        }
    }
}

/// Same for the genealogy program (conditional pruning).
#[test]
fn genealogy_optimization_sound() {
    let s = parse_scenario(genealogy::PROGRAM);
    let plan = Optimizer::new(&s.program)
        .with_constraints(&s.constraints)
        .run()
        .unwrap();
    for case in 0u64..24 {
        let mut rng = Rng::seed_from_u64(0x554 + case);
        let seed = rng.gen_range(0..500usize) as u64;
        let depth = rng.gen_range(1..5usize);
        let db = genealogy::generate(&genealogy::GenealogyParams {
            families: 2,
            depth,
            branching: 2,
            seed,
        });
        for ic in &s.constraints {
            assert!(db.satisfies(ic), "case {case}");
        }
        let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
        let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap();
        assert_eq!(
            base.relation("anc").unwrap().sorted_tuples(),
            opt.relation("anc").unwrap().sorted_tuples(),
            "case {case} seed {seed}"
        );
    }
}

/// Same for the guarded-reachability program (k = 1 elimination).
#[test]
fn fanout_optimization_sound() {
    let s = parse_scenario(fanout::PROGRAM);
    let plan = Optimizer::new(&s.program)
        .with_constraints(&s.constraints)
        .run()
        .unwrap();
    for case in 0u64..24 {
        let mut rng = Rng::seed_from_u64(0x655 + case);
        let seed = rng.gen_range(0..500usize) as u64;
        let fo = rng.gen_range(1..6usize);
        let db = fanout::generate(&fanout::FanoutParams {
            nodes: 30,
            extra_edges: 20,
            fanout: fo,
            seed,
        });
        let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
        let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap();
        assert_eq!(
            base.relation("reach").unwrap().sorted_tuples(),
            opt.relation("reach").unwrap().sorted_tuples(),
            "case {case} seed {seed}"
        );
    }
}

/// Magic-sets evaluation is sound and complete w.r.t. full evaluation,
/// for random goal bindings.
#[test]
fn magic_query_complete() {
    let prog = parse_unit("t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y).")
        .unwrap()
        .program();
    for case in 0u64..48 {
        let mut rng = Rng::seed_from_u64(0x756 + case);
        let edges = random_edges(&mut rng, 12, 40);
        let bind_first = rng.gen_bool(0.5);
        let value = rng.gen_range(0..12i64);
        let db = random_graph_db("e", &edges);
        let goal = if bind_first {
            semrec::datalog::parser::parse_atom(&format!("t({value}, Y)")).unwrap()
        } else {
            semrec::datalog::parser::parse_atom(&format!("t(X, {value})")).unwrap()
        };
        let (mut answers, _) =
            semrec::engine::magic::evaluate_query(&db, &prog, &goal, Strategy::SemiNaive).unwrap();
        answers.sort();
        let full = evaluate(&db, &prog, Strategy::SemiNaive).unwrap();
        let mut expected = full.answers(&goal);
        expected.sort();
        expected.dedup();
        assert_eq!(answers, expected, "case {case}");
    }
}

/// Theorem 4.1 on *random* linear programs: isolation of a random
/// sequence preserves the IDB on random databases.
#[test]
fn isolation_preserves_semantics_on_random_programs() {
    use semrec::gen::programs::{random_linear, RandomLinearParams};
    for case in 0u64..32 {
        let mut rng = Rng::seed_from_u64(0x857 + case);
        let seed = rng.gen_range(0..300usize) as u64;
        let arity = rng.gen_range(1..4usize);
        let nrules = rng.gen_range(1..3usize);
        let locals = rng.gen_range(0..3usize);
        let seq_len = rng.gen_range(1..4usize);
        let close_with_exit = rng.gen_bool(0.5);
        let edges = random_edges(&mut rng, 6, 20);

        let program = random_linear(&RandomLinearParams {
            arity,
            recursive_rules: nrules,
            locals,
            seed,
        });
        let (prog, _) = rectify(&program);
        let info = classify_linear_pred(&prog, Pred::new("p")).unwrap();

        // A random sequence over the recursive rules, optionally closed by
        // the exit rule.
        let mut seq: Vec<usize> = (0..seq_len)
            .map(|i| info.recursive_rules[(seed as usize + i) % info.recursive_rules.len()])
            .collect();
        if close_with_exit {
            seq.push(info.exit_rules[0]);
        }
        let u = unfold(&prog, &info, &seq).unwrap();
        let iso = isolate(&prog, &info, &u);

        // Fill every EDB predicate with the same random binary data; the
        // exit relation gets `arity`-wide tuples.
        let mut db = Database::new();
        for (a, b) in &edges {
            let tuple: Vec<Value> = (0..arity)
                .map(|i| Value::Int(if i % 2 == 0 { *a } else { *b }))
                .collect();
            db.insert("e0", tuple);
        }
        for pred in prog.edb_preds() {
            if pred.name().starts_with('b') {
                for (a, b) in &edges {
                    db.insert(pred, vec![Value::Int(*a), Value::Int(*b)]);
                }
            }
        }

        let base = evaluate(&db, &prog, Strategy::SemiNaive).unwrap();
        let isod = evaluate(&db, &iso.program, Strategy::SemiNaive).unwrap();
        assert_eq!(
            base.relation("p").unwrap().sorted_tuples(),
            isod.relation("p").unwrap().sorted_tuples(),
            "case {case} seed {seed} seq {seq:?} program:\n{prog}"
        );

        // The full-commitment structure used by the pusher must also be
        // equivalence-preserving when no optimization is applied.
        let pusher = semrec::core::push::Pusher::new(&prog, &info, &u);
        let committed = pusher.finish();
        let com = evaluate(&db, &committed.program, Strategy::SemiNaive).unwrap();
        assert_eq!(
            base.relation("p").unwrap().sorted_tuples(),
            com.relation("p").unwrap().sorted_tuples(),
            "commitment structure diverged for case {case} seed {seed} seq {seq:?}"
        );
    }
}
