//! Resource-governance behavior: budgets and cancellation must stop an
//! evaluation with a typed error — mid-round for deadline/cancel — while
//! leaving every committed relation structurally intact (partial rounds
//! discarded wholesale), and a generous budget must change nothing.

use semrec::datalog::{Pred, Program};
use semrec::engine::{
    Budget, CancelToken, Cutover, Database, EngineError, Evaluator, Route, Strategy, Tuple,
};
use semrec::gen::{fanout, parse_scenario};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// E1's fanout workload at a size where evaluation takes well over the
/// deadlines used below (reach is a near-transitive-closure).
fn heavy_fanout() -> (Program, Database) {
    let s = parse_scenario(fanout::PROGRAM);
    let db = fanout::generate(&fanout::FanoutParams {
        nodes: 1000,
        extra_edges: 800,
        fanout: 64,
        seed: 7,
    });
    (s.program, db)
}

fn tc_chain(n: i64) -> (Program, Database) {
    let prog: Program = "t(X,Y) :- e(X,Y). t(X,Y) :- e(X,Z), t(Z,Y)."
        .parse()
        .unwrap();
    let mut db = Database::new();
    for i in 0..n {
        db.insert("e", semrec::engine::int_tuple(&[i, i + 1]));
    }
    (prog, db)
}

fn idb_map(ev: &semrec::engine::EvalResult) -> BTreeMap<Pred, Vec<Tuple>> {
    ev.idb
        .iter()
        .map(|(p, r)| (*p, r.sorted_tuples()))
        .collect()
}

#[test]
fn deadline_interrupts_mid_round_within_2x() {
    let (prog, db) = heavy_fanout();
    // Sanity: ungoverned evaluation takes much longer than the deadline,
    // so the trip must happen inside a round, not between rounds.
    let deadline = Duration::from_millis(150);
    let mut ev = Evaluator::new(&db, &prog, Strategy::SemiNaive)
        .unwrap()
        .with_parallelism(4)
        .with_cutover(Cutover::ForceParallel)
        .with_budget(Budget::unlimited().with_deadline(deadline));
    let start = Instant::now();
    let err = ev.run().expect_err("deadline must trip");
    let elapsed = start.elapsed();
    match err {
        EngineError::DeadlineExceeded { elapsed_ms } => {
            assert!(
                elapsed_ms as u128 <= 2 * deadline.as_millis(),
                "tripped at {elapsed_ms} ms for a {deadline:?} deadline"
            );
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(
        elapsed <= 2 * deadline,
        "cooperative checks must interrupt the round in flight: took {elapsed:?}"
    );
    // The aborted round's partial derivations were discarded: every
    // committed relation still satisfies the flat-storage invariant.
    ev.check_invariants().expect("IDB invariants after abort");
}

#[test]
fn cancel_token_stops_evaluation_from_another_thread() {
    let (prog, db) = heavy_fanout();
    let token = CancelToken::new();
    let canceller = token.clone();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        canceller.cancel();
    });
    let mut ev = Evaluator::new(&db, &prog, Strategy::SemiNaive)
        .unwrap()
        .with_parallelism(4)
        .with_cutover(Cutover::ForceParallel)
        .with_cancel_token(token);
    let err = ev.run().expect_err("cancel must stop evaluation");
    assert_eq!(err, EngineError::Cancelled);
    ev.check_invariants().expect("IDB invariants after cancel");
    killer.join().unwrap();
}

#[test]
fn pre_cancelled_token_stops_before_any_round() {
    let (prog, db) = tc_chain(20);
    let token = CancelToken::new();
    token.cancel();
    let mut ev = Evaluator::new(&db, &prog, Strategy::SemiNaive)
        .unwrap()
        .with_cancel_token(token);
    assert_eq!(ev.run(), Err(EngineError::Cancelled));
    assert_eq!(ev.rounds(), 0, "no round may start after cancellation");
}

#[test]
fn row_budget_trips_with_partial_sound_idb() {
    let (prog, db) = tc_chain(60);
    let reference = {
        let mut ev = Evaluator::new(&db, &prog, Strategy::SemiNaive).unwrap();
        ev.run().unwrap();
        ev.finish()
    };
    let full: std::collections::BTreeSet<Tuple> = reference
        .relation("t")
        .unwrap()
        .sorted_tuples()
        .into_iter()
        .collect();
    let mut ev = Evaluator::new(&db, &prog, Strategy::SemiNaive)
        .unwrap()
        .with_budget(Budget::unlimited().with_max_idb_rows(200));
    let err = ev.run().expect_err("row budget must trip");
    match err {
        EngineError::BudgetExceeded {
            resource,
            limit,
            used,
        } => {
            assert_eq!(resource, "idb_rows");
            assert_eq!(limit, 200);
            assert!(used > limit, "{used} must exceed {limit}");
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    ev.check_invariants().expect("IDB invariants after trip");
    // Round-boundary enforcement keeps whole rounds: everything
    // committed is a sound subset of the fixpoint.
    let partial = ev.idb_relation(Pred::new("t")).unwrap().sorted_tuples();
    assert!(!partial.is_empty(), "at least one round committed");
    for t in partial {
        assert!(full.contains(&t), "unsound tuple {t:?}");
    }
}

#[test]
fn byte_budget_trips() {
    let (prog, db) = tc_chain(60);
    let mut ev = Evaluator::new(&db, &prog, Strategy::SemiNaive)
        .unwrap()
        .with_budget(Budget::unlimited().with_max_resident_bytes(4096));
    let err = ev.run().expect_err("byte budget must trip");
    assert!(
        matches!(
            err,
            EngineError::BudgetExceeded {
                resource: "resident_bytes",
                ..
            }
        ),
        "got {err:?}"
    );
    ev.check_invariants().expect("IDB invariants after trip");
}

#[test]
fn budget_iteration_cap_matches_legacy_path() {
    let (prog, db) = tc_chain(50);
    let mut ev = Evaluator::new(&db, &prog, Strategy::SemiNaive)
        .unwrap()
        .with_budget(Budget::unlimited().with_max_iterations(3));
    assert_eq!(ev.run(), Err(EngineError::IterationLimit(3)));
}

#[test]
fn generous_budget_changes_nothing() {
    let s = parse_scenario(fanout::PROGRAM);
    let prog = s.program;
    let db = fanout::generate(&fanout::FanoutParams {
        nodes: 150,
        extra_edges: 80,
        fanout: 8,
        seed: 11,
    });
    let mut plain = Evaluator::new(&db, &prog, Strategy::SemiNaive).unwrap();
    plain.run().unwrap();
    let plain = plain.finish();
    let mut governed = Evaluator::new(&db, &prog, Strategy::SemiNaive)
        .unwrap()
        .with_budget(
            Budget::unlimited()
                .with_deadline(Duration::from_secs(3600))
                .with_max_idb_rows(u64::MAX)
                .with_max_resident_bytes(u64::MAX),
        )
        .with_cancel_token(CancelToken::new());
    governed.run().unwrap();
    let governed = governed.finish();
    assert_eq!(governed.route, Route::Direct);
    assert_eq!(idb_map(&plain), idb_map(&governed));
    assert_eq!(plain.stats.derived, governed.stats.derived);
    assert_eq!(plain.stats.inserted, governed.stats.inserted);
}

#[test]
fn governed_optimize_answers_like_rectified() {
    // The full degradation entry point on the fanout scenario: a
    // generous budget lets the optimized route answer, and its answer
    // must match the rectified reference exactly.
    let s = parse_scenario(fanout::PROGRAM);
    let db = fanout::generate(&fanout::FanoutParams {
        nodes: 60,
        extra_edges: 30,
        fanout: 4,
        seed: 3,
    });
    let reference = {
        let (rect, _) = semrec::datalog::analysis::rectify(&s.program);
        let mut ev = Evaluator::new(&db, &rect, Strategy::SemiNaive).unwrap();
        ev.run().unwrap();
        ev.finish()
    };
    let outcome = semrec::core::evaluate_governed(
        &db,
        &s.program,
        &s.constraints,
        semrec::core::OptimizerConfig::default(),
        Budget::unlimited().with_deadline(Duration::from_secs(600)),
        CancelToken::new(),
        2,
    )
    .expect("governed evaluation answers");
    assert!(outcome.degraded.is_none(), "{:?}", outcome.degraded);
    assert_eq!(outcome.result.route, Route::Optimized);
    assert_eq!(
        reference.relation("reach").unwrap().sorted_tuples(),
        outcome.result.relation("reach").unwrap().sorted_tuples()
    );
}

#[test]
fn governed_cancel_is_not_degraded_around() {
    let s = parse_scenario(fanout::PROGRAM);
    let db = fanout::generate(&fanout::FanoutParams::default());
    let token = CancelToken::new();
    token.cancel();
    let err = semrec::core::evaluate_governed(
        &db,
        &s.program,
        &s.constraints,
        semrec::core::OptimizerConfig::default(),
        Budget::unlimited(),
        token,
        1,
    )
    .expect_err("pre-cancelled token must stop both routes");
    assert_eq!(err, EngineError::Cancelled);
}
