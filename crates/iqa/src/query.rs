//! Knowledge queries: `describe φ(X) where ψ(X)` (Motro & Yuan's syntax,
//! §5 of the paper).

use semrec_datalog::atom::Atom;
use semrec_datalog::error::Error;
use semrec_datalog::literal::Literal;
use semrec_datalog::parser::{lex, TokenKind};

/// A parsed knowledge query.
#[derive(Clone, Debug)]
pub struct KnowledgeQuery {
    /// The described atom `φ(X)`.
    pub target: Atom,
    /// The context `ψ(X)`: database atoms and comparisons.
    pub context: Vec<Literal>,
}

/// Parses `describe φ(X) where l1, …, ln.` (the trailing dot and the
/// `where` clause are optional: `describe φ(X).` asks for an unconditional
/// description).
pub fn parse_describe(src: &str) -> Result<KnowledgeQuery, Error> {
    // Lex once to find the `describe` / `where` keywords robustly, then
    // reuse the main parser for the pieces.
    let tokens = lex(src)?;
    let mut idx = 0;
    let kw = |t: &TokenKind, s: &str| matches!(t, TokenKind::Ident(i) if i == s);
    if !kw(&tokens[idx].kind, "describe") {
        return Err(Error::parse(
            tokens[idx].line,
            tokens[idx].col,
            "expected `describe`",
        ));
    }
    idx += 1;

    // Find the `where` keyword (if any) at the top level.
    let mut where_idx = None;
    for (i, t) in tokens.iter().enumerate().skip(idx) {
        if kw(&t.kind, "where") {
            where_idx = Some(i);
            break;
        }
    }

    let src_body = |from: usize, to: usize| -> String {
        // Reconstruct source text by re-rendering tokens; good enough for
        // our token set.
        tokens[from..to]
            .iter()
            .map(|t| render(&t.kind))
            .collect::<Vec<_>>()
            .join(" ")
    };

    let end = tokens
        .iter()
        .position(|t| t.kind == TokenKind::Dot)
        .unwrap_or(tokens.len() - 1);
    let (target_end, ctx) = match where_idx {
        Some(w) => (w, Some((w + 1, end))),
        None => (end, None),
    };

    let target = semrec_datalog::parser::parse_atom(&src_body(idx, target_end))?;
    let context = match ctx {
        None => vec![],
        Some((from, to)) => {
            // Parse as a rule body by wrapping in a dummy head whose
            // variables don't matter (range restriction is not required
            // for contexts).
            let text = format!("dummy@(0) :- {}.", src_body(from, to));
            // `dummy@` is not lexable, so parse literal list manually via a
            // valid dummy predicate instead.
            let text = text.replace("dummy@", "iqa_dummy_head");
            let rule = semrec_datalog::parser::parse_rule(&text)?;
            rule.body
        }
    };
    Ok(KnowledgeQuery { target, context })
}

fn render(kind: &TokenKind) -> String {
    match kind {
        TokenKind::Ident(s) => s.clone(),
        TokenKind::Var(s) => s.clone(),
        TokenKind::Int(i) => i.to_string(),
        TokenKind::Str(s) => format!("{s:?}"),
        TokenKind::LParen => "(".into(),
        TokenKind::RParen => ")".into(),
        TokenKind::Comma => ",".into(),
        TokenKind::Dot => ".".into(),
        TokenKind::ColonDash => ":-".into(),
        TokenKind::Colon => ":".into(),
        TokenKind::Arrow => "->".into(),
        TokenKind::Eq => "=".into(),
        TokenKind::Ne => "!=".into(),
        TokenKind::Bang => "!".into(),
        TokenKind::Lt => "<".into(),
        TokenKind::Le => "<=".into(),
        TokenKind::Gt => ">".into(),
        TokenKind::Ge => ">=".into(),
        TokenKind::Eof => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_example_5_1_query() {
        let q = parse_describe(
            "describe honors(Stud) where major(Stud, cs), graduated(Stud, College), \
             topten(College), hobby(Stud, chess).",
        )
        .unwrap();
        assert_eq!(q.target.to_string(), "honors(Stud)");
        assert_eq!(q.context.len(), 4);
    }

    #[test]
    fn parse_without_context() {
        let q = parse_describe("describe honors(Stud).").unwrap();
        assert!(q.context.is_empty());
    }

    #[test]
    fn parse_with_comparison_in_context() {
        let q = parse_describe("describe rich(P) where salary(P, S), S > 100000.").unwrap();
        assert_eq!(q.context.len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_describe("explain honors(S).").is_err());
    }
}
