//! # semrec-iqa
//!
//! §5 of the paper: intelligent (intensional) query answering via the
//! semantic-optimization machinery, after Motro & Yuan.
//!
//! A *knowledge query* `describe φ(X) where ψ(X)` asks for a description
//! of the objects satisfying `φ` in the context `ψ`, rather than for
//! tuples. The answering method:
//!
//! 1. **relevance** — context predicates not reachable from the query
//!    predicate (in the undirected dependency graph) are discarded;
//! 2. **proof trees** — the query predicate's proof trees are enumerated
//!    (to a bounded depth for recursive programs) as conjunctive queries;
//! 3. **subsumption** — the relevant context is treated as an axiom and
//!    (partially) subsumed against each proof tree's leaves; the residue —
//!    the part of the tree the context does not cover — is the *additional
//!    qualification* the described objects must meet. An empty residue
//!    means every object satisfying the context qualifies.

#![warn(missing_docs)]

pub mod answer;
pub mod proof;
pub mod query;

pub use answer::{answer, answer_with_data, Answer, TreeVerdict};
pub use proof::{proof_trees, ConjQuery};
pub use query::{parse_describe, KnowledgeQuery};
