//! Proof-tree enumeration: each proof tree of a goal atom is a conjunctive
//! query over EDB atoms and comparisons (§5: "each proof tree is a
//! conjunctive query that says if an object satisfies the leaves, then the
//! object is a valid answer to the query associated with the root").

use semrec_datalog::atom::Atom;
use semrec_datalog::literal::{Cmp, Literal};
use semrec_datalog::program::Program;
use semrec_datalog::subst::Subst;
use semrec_datalog::symbol::Symbol;
use semrec_datalog::term::Term;
use semrec_datalog::unify::unify_atoms;
use std::fmt;

/// A conjunctive query: the leaves of one proof tree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConjQuery {
    /// The (instantiated) root goal.
    pub root: Atom,
    /// EDB leaf atoms.
    pub atoms: Vec<Atom>,
    /// Negated EDB leaves (stratified negation on base relations).
    pub negs: Vec<Atom>,
    /// Comparison leaves.
    pub cmps: Vec<Cmp>,
    /// The rule indices applied, in top-down left-to-right order.
    pub rules: Vec<usize>,
}

impl fmt::Display for ConjQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ⇐ ", self.root)?;
        let mut first = true;
        for a in &self.atoms {
            if !first {
                write!(f, " ∧ ")?;
            }
            first = false;
            write!(f, "{a}")?;
        }
        for a in &self.negs {
            if !first {
                write!(f, " ∧ ")?;
            }
            first = false;
            write!(f, "!{a}")?;
        }
        for c in &self.cmps {
            if !first {
                write!(f, " ∧ ")?;
            }
            first = false;
            write!(f, "{c}")?;
        }
        if first {
            write!(f, "true")?;
        }
        Ok(())
    }
}

/// Enumerates the proof trees of `goal` up to `max_depth` nested IDB
/// expansions per branch. Trees still containing IDB atoms at the depth
/// limit are discarded (for recursive programs this yields the finitely
/// many trees of bounded depth).
pub fn proof_trees(program: &Program, goal: &Atom, max_depth: usize) -> Vec<ConjQuery> {
    let idb = program.idb_preds();
    let mut out = Vec::new();
    let mut counter = 0usize;
    expand(
        program,
        &idb,
        goal.clone(),
        vec![(Literal::Atom(goal.clone()), max_depth)],
        Vec::new(),
        Vec::new(),
        Vec::new(),
        Vec::new(),
        &mut out,
        &mut counter,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn expand(
    program: &Program,
    idb: &std::collections::BTreeSet<semrec_datalog::atom::Pred>,
    root: Atom,
    mut agenda: Vec<(Literal, usize)>,
    mut atoms: Vec<Atom>,
    mut negs: Vec<Atom>,
    mut cmps: Vec<Cmp>,
    rules: Vec<usize>,
    out: &mut Vec<ConjQuery>,
    counter: &mut usize,
) {
    loop {
        let Some((lit, budget)) = agenda.pop() else {
            out.push(ConjQuery {
                root,
                atoms,
                negs,
                cmps,
                rules,
            });
            return;
        };
        match lit {
            Literal::Cmp(c) => cmps.push(c),
            // Negated subgoals are only expanded over base relations; a
            // negated IDB subgoal would need stratified tree semantics and
            // is kept opaque as a leaf.
            Literal::Neg(a) => negs.push(a),
            Literal::Atom(a) if !idb.contains(&a.pred) => atoms.push(a),
            Literal::Atom(goal_atom) => {
                if budget == 0 {
                    return; // incomplete tree — discarded
                }
                for ri in program.rules_for(goal_atom.pred) {
                    let rule = &program.rules[ri];
                    // Freshen the rule's variables, then unify its head
                    // with the goal atom.
                    *counter += 1;
                    let tag = *counter;
                    let fresh: Subst = rule
                        .vars()
                        .into_iter()
                        .map(|v| (v, Term::Var(Symbol::intern(&format!("{v}`{tag}")))))
                        .collect();
                    let head = fresh.apply_atom(&rule.head);
                    let Some(mgu) = unify_atoms(&head, &goal_atom) else {
                        continue;
                    };
                    let mut agenda2: Vec<(Literal, usize)> = agenda
                        .iter()
                        .map(|(l, b)| (mgu.apply_literal(l), *b))
                        .collect();
                    // Push body literals (reversed so they pop in order).
                    for l in rule.body.iter().rev() {
                        let l = mgu.apply_literal(&fresh.apply_literal(l));
                        agenda2.push((l, budget - 1));
                    }
                    let mut rules2 = rules.clone();
                    rules2.push(ri);
                    expand(
                        program,
                        idb,
                        mgu.apply_atom(&root),
                        agenda2,
                        atoms.iter().map(|a| mgu.apply_atom(a)).collect(),
                        negs.iter().map(|a| mgu.apply_atom(a)).collect(),
                        cmps.iter().map(|c| mgu.apply_cmp(c)).collect(),
                        rules2,
                        out,
                        counter,
                    );
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_datalog::parser::{parse_atom, parse_unit};

    const HONORS: &str = "
        honors(Stud) :- transcript(Stud, Major, Cred, Gpa), Cred >= 30, Gpa >= 38.
        honors(Stud) :- transcript(Stud, Major, Cred, Gpa), Gpa >= 38, exceptional(Stud).
        exceptional(Stud) :- publication(Stud, P), appears(P, Jl), reputed(Jl).
        honors(Stud) :- graduated(Stud, College), topten(College).
    ";

    #[test]
    fn example_5_1_has_three_trees() {
        let p = parse_unit(HONORS).unwrap().program();
        let goal = parse_atom("honors(Stud)").unwrap();
        let trees = proof_trees(&p, &goal, 4);
        assert_eq!(trees.len(), 3);
        // Rule sequences: r0; r1·r2; r3.
        let seqs: Vec<Vec<usize>> = trees.iter().map(|t| t.rules.clone()).collect();
        assert!(seqs.contains(&vec![0]));
        assert!(seqs.contains(&vec![1, 2]));
        assert!(seqs.contains(&vec![3]));
        // The r1·r2 tree has 4 EDB leaves and one comparison pair.
        let deep = trees.iter().find(|t| t.rules == vec![1, 2]).unwrap();
        assert_eq!(deep.atoms.len(), 4);
        assert_eq!(deep.cmps.len(), 1);
    }

    #[test]
    fn recursion_is_depth_bounded() {
        let p: Program = "t(X,Y) :- e(X,Y). t(X,Y) :- e(X,Z), t(Z,Y)."
            .parse()
            .unwrap();
        let goal = parse_atom("t(A, B)").unwrap();
        let trees = proof_trees(&p, &goal, 4);
        // Depth d allows chains of 1..4 e-atoms: 4 trees.
        assert_eq!(trees.len(), 4);
        let sizes: Vec<usize> = trees.iter().map(|t| t.atoms.len()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3, 4]);
    }

    #[test]
    fn goal_constants_propagate() {
        let p = parse_unit(HONORS).unwrap().program();
        let goal = parse_atom("honors(alice)").unwrap();
        let trees = proof_trees(&p, &goal, 3);
        for t in &trees {
            assert_eq!(t.root.to_string(), "honors(alice)");
            // Every transcript/graduated leaf mentions alice directly.
            for a in &t.atoms {
                if a.pred.name() == "transcript" || a.pred.name() == "graduated" {
                    assert_eq!(a.args[0], Term::Const(semrec_datalog::Value::str("alice")));
                }
            }
        }
    }
}

#[cfg(test)]
mod negation_tests {
    use super::*;
    use semrec_datalog::parser::{parse_atom, parse_unit};

    #[test]
    fn negated_leaves_are_preserved() {
        let p = parse_unit("eligible(S) :- applied(S), !banned(S).")
            .unwrap()
            .program();
        let trees = proof_trees(&p, &parse_atom("eligible(S)").unwrap(), 2);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].negs.len(), 1);
        assert_eq!(trees[0].negs[0].pred.name(), "banned");
        assert!(trees[0].to_string().contains("!banned("));
    }
}
