//! Answering knowledge queries: relevance filtering, context subsumption
//! against proof trees, and descriptive answers (§5, Example 5.1).

use crate::proof::{proof_trees, ConjQuery};
use crate::query::KnowledgeQuery;
use semrec_core::subsume::{maximal_partial_matches, Match};
use semrec_datalog::analysis::DepGraph;
use semrec_datalog::atom::Atom;
use semrec_datalog::literal::{Cmp, Literal};
use semrec_datalog::program::Program;
use std::collections::BTreeSet;
use std::fmt;

/// How one proof tree relates to the (relevant) context.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TreeVerdict {
    /// The context totally subsumes the tree: every object satisfying the
    /// context is an answer through this tree.
    Qualified,
    /// The context partially covers the tree: the listed leaves remain as
    /// additional qualifications.
    NeedsMore {
        /// Uncovered database leaves.
        atoms: Vec<Atom>,
        /// Uncovered comparison leaves.
        cmps: Vec<Cmp>,
    },
    /// No part of the context maps onto the tree.
    Unrelated,
}

/// A per-tree description.
#[derive(Clone, Debug)]
pub struct TreeAnswer {
    /// The proof tree.
    pub tree: ConjQuery,
    /// The verdict.
    pub verdict: TreeVerdict,
    /// How many objects actually qualify through this tree, when a
    /// database was supplied ([`answer_with_data`]).
    pub matching: Option<usize>,
}

/// The full descriptive answer.
#[derive(Clone, Debug)]
pub struct Answer {
    /// The query.
    pub target: Atom,
    /// Context literals kept after the reachability analysis.
    pub relevant: Vec<Literal>,
    /// Context literals discarded as irrelevant.
    pub irrelevant: Vec<Literal>,
    /// Per-proof-tree descriptions.
    pub trees: Vec<TreeAnswer>,
}

impl Answer {
    /// True if some proof tree is fully covered by the context.
    pub fn fully_qualified(&self) -> bool {
        self.trees
            .iter()
            .any(|t| t.verdict == TreeVerdict::Qualified)
    }
}

impl fmt::Display for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "describe {}:", self.target)?;
        if !self.irrelevant.is_empty() {
            let xs: Vec<String> = self.irrelevant.iter().map(|l| l.to_string()).collect();
            writeln!(f, "  ignoring irrelevant context: {}", xs.join(", "))?;
        }
        if self.fully_qualified() {
            writeln!(
                f,
                "  ⇒ every object satisfying the context is a {}",
                self.target.pred
            )?;
        }
        for t in &self.trees {
            match &t.verdict {
                TreeVerdict::Qualified => {
                    write!(f, "  [qualified")?;
                    if let Some(n) = t.matching {
                        write!(f, ", {n} in db")?;
                    }
                    writeln!(f, "] {}", t.tree)?;
                }
                TreeVerdict::NeedsMore { atoms, cmps } => {
                    let mut parts: Vec<String> = atoms.iter().map(|a| a.to_string()).collect();
                    parts.extend(cmps.iter().map(|c| c.to_string()));
                    writeln!(f, "  [needs: {}] via {}", parts.join(" ∧ "), t.tree)?;
                }
                TreeVerdict::Unrelated => {
                    writeln!(f, "  [unrelated to context] {}", t.tree)?;
                }
            }
        }
        Ok(())
    }
}

/// Splits the context into relevant and irrelevant parts. A context atom is
/// relevant when its predicate lies in the undirected dependency component
/// of the query predicate (§5's reachability); comparisons are relevant
/// when they share a variable with some relevant atom.
pub fn relevant_context(program: &Program, query: &KnowledgeQuery) -> (Vec<Literal>, Vec<Literal>) {
    let graph = DepGraph::new(program);
    let component = graph.undirected_component(query.target.pred);
    let mut relevant = Vec::new();
    let mut irrelevant = Vec::new();
    let mut relevant_vars: BTreeSet<semrec_datalog::Symbol> = query.target.vars().collect();
    for l in &query.context {
        if let Literal::Atom(a) = l {
            if component.contains(&a.pred) {
                relevant_vars.extend(a.vars());
            }
        }
    }
    for l in &query.context {
        match l {
            Literal::Atom(a) | Literal::Neg(a) => {
                if component.contains(&a.pred) {
                    relevant.push(l.clone());
                } else {
                    irrelevant.push(l.clone());
                }
            }
            Literal::Cmp(c) => {
                if c.vars().all(|v| relevant_vars.contains(&v)) {
                    relevant.push(l.clone());
                } else {
                    irrelevant.push(l.clone());
                }
            }
        }
    }
    (relevant, irrelevant)
}

/// Answers a knowledge query against a program. `max_depth` bounds proof-
/// tree enumeration for recursive programs.
pub fn answer(program: &Program, query: &KnowledgeQuery, max_depth: usize) -> Answer {
    let (relevant, irrelevant) = relevant_context(program, query);
    let ctx_atoms: Vec<Atom> = relevant
        .iter()
        .filter_map(|l| l.as_atom().cloned())
        .collect();
    let ctx_cmps: Vec<Cmp> = relevant
        .iter()
        .filter_map(|l| l.as_cmp().copied())
        .collect();

    let trees = proof_trees(program, &query.target, max_depth);
    let mut out = Vec::new();
    for tree in trees {
        let targets: Vec<&Atom> = tree.atoms.iter().collect();
        let matches = if ctx_atoms.is_empty() {
            vec![]
        } else {
            maximal_partial_matches(&ctx_atoms, &targets, 1)
        };
        let verdict = best_verdict(&tree, &matches, &ctx_cmps);
        out.push(TreeAnswer {
            tree,
            verdict,
            matching: None,
        });
    }
    Answer {
        target: query.target.clone(),
        relevant,
        irrelevant,
        trees: out,
    }
}

/// Like [`answer`], additionally evaluating each proof tree as a
/// conjunctive query over `db` and recording how many distinct root
/// instantiations qualify through it — Motro & Yuan's descriptive answers
/// grounded in the actual database.
pub fn answer_with_data(
    program: &Program,
    query: &KnowledgeQuery,
    db: &semrec_engine::Database,
    max_depth: usize,
) -> Answer {
    let mut a = answer(program, query, max_depth);
    for (i, t) in a.trees.iter_mut().enumerate() {
        t.matching = count_tree_matches(db, &t.tree, i);
    }
    a
}

/// Evaluates one proof tree's conjunctive query over the database.
fn count_tree_matches(
    db: &semrec_engine::Database,
    tree: &ConjQuery,
    index: usize,
) -> Option<usize> {
    use semrec_datalog::literal::Literal as L;
    use semrec_datalog::rule::Rule;
    let head = Atom::new(
        semrec_datalog::Pred::new(&format!("describe@{index}")),
        tree.root.args.clone(),
    );
    let mut body: Vec<L> = tree.atoms.iter().cloned().map(L::Atom).collect();
    body.extend(tree.negs.iter().cloned().map(L::Neg));
    body.extend(tree.cmps.iter().copied().map(L::Cmp));
    let rule = Rule::new(head, body);
    let program = Program::new(vec![rule]);
    let result = semrec_engine::evaluate(db, &program, semrec_engine::Strategy::SemiNaive).ok()?;
    result
        .relation(semrec_datalog::Pred::new(&format!("describe@{index}")))
        .map(semrec_engine::Relation::len)
}

/// Chooses the verdict from the best (largest-coverage) match.
fn best_verdict(tree: &ConjQuery, matches: &[Match], ctx_cmps: &[Cmp]) -> TreeVerdict {
    let Some(best) = matches.iter().max_by_key(|m| m.matched_count()) else {
        return TreeVerdict::Unrelated;
    };
    if best.matched_count() == 0 {
        return TreeVerdict::Unrelated;
    }
    // Leaves covered by the context: images of the matched context atoms.
    let covered: BTreeSet<usize> = best.onto.iter().flatten().copied().collect();
    let residue_atoms: Vec<Atom> = tree
        .atoms
        .iter()
        .enumerate()
        .filter(|(i, _)| !covered.contains(i))
        .map(|(_, a)| a.clone())
        .collect();
    // Tree comparisons discharged by context comparisons that imply them
    // (after the subsuming substitution): a context `G >= 40` covers a
    // tree's `G >= 38`.
    let instantiated_ctx: Vec<Cmp> = ctx_cmps.iter().map(|c| best.theta.apply_cmp(c)).collect();
    let residue_cmps: Vec<Cmp> = tree
        .cmps
        .iter()
        .filter(|c| !c.is_trivially_true() && !instantiated_ctx.iter().any(|ctx| ctx.implies(c)))
        .copied()
        .collect();
    if residue_atoms.is_empty() && residue_cmps.is_empty() {
        TreeVerdict::Qualified
    } else {
        TreeVerdict::NeedsMore {
            atoms: residue_atoms,
            cmps: residue_cmps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_describe;
    use semrec_datalog::parser::parse_unit;

    const HONORS: &str = "
        honors(Stud) :- transcript(Stud, Major, Cred, Gpa), Cred >= 30, Gpa >= 38.
        honors(Stud) :- transcript(Stud, Major, Cred, Gpa), Gpa >= 38, exceptional(Stud).
        exceptional(Stud) :- publication(Stud, P), appears(P, Jl), reputed(Jl).
        honors(Stud) :- graduated(Stud, College), topten(College).
    ";

    fn program() -> Program {
        parse_unit(HONORS).unwrap().program()
    }

    #[test]
    fn example_5_1_full_answer() {
        let q = parse_describe(
            "describe honors(Stud) where major(Stud, cs), graduated(Stud, College), \
             topten(College), hobby(Stud, chess).",
        )
        .unwrap();
        let a = answer(&program(), &q, 4);
        // major and hobby are irrelevant (not reachable from honors).
        assert_eq!(a.irrelevant.len(), 2);
        assert_eq!(a.relevant.len(), 2);
        // The graduated/topten tree is totally subsumed: all individuals
        // satisfying the context qualify.
        assert!(a.fully_qualified());
        // The other two trees are unrelated (their residues are the entire
        // proof trees, which the qualified tree's empty residue absorbs).
        let unrelated = a
            .trees
            .iter()
            .filter(|t| t.verdict == TreeVerdict::Unrelated)
            .count();
        assert_eq!(unrelated, 2);
        let text = a.to_string();
        assert!(text.contains("ignoring irrelevant context"));
        assert!(text.contains("every object satisfying the context"));
    }

    #[test]
    fn partial_coverage_yields_residue() {
        let q = parse_describe("describe honors(Stud) where transcript(Stud, M, C, G).").unwrap();
        let a = answer(&program(), &q, 4);
        assert!(!a.fully_qualified());
        let needs: Vec<&TreeAnswer> = a
            .trees
            .iter()
            .filter(|t| matches!(t.verdict, TreeVerdict::NeedsMore { .. }))
            .collect();
        // Both transcript-based trees report remaining qualifications
        // (the GPA/credits comparisons and, for r1, exceptional's leaves).
        assert_eq!(needs.len(), 2);
        if let TreeVerdict::NeedsMore { cmps, .. } = &needs[0].verdict {
            assert!(!cmps.is_empty());
        }
    }

    #[test]
    fn context_comparisons_discharge_tree_comparisons() {
        let q = parse_describe(
            "describe honors(Stud) where transcript(Stud, M, C, G), C >= 30, G >= 38.",
        )
        .unwrap();
        let a = answer(&program(), &q, 4);
        // Tree r0 is now fully qualified: its atoms and both comparisons
        // are covered.
        assert!(a.fully_qualified());
    }

    #[test]
    fn empty_context_all_trees_unrelated() {
        let q = parse_describe("describe honors(S).").unwrap();
        let a = answer(&program(), &q, 4);
        assert!(!a.fully_qualified());
        assert!(a.trees.iter().all(|t| t.verdict == TreeVerdict::Unrelated));
    }
}

#[cfg(test)]
mod data_tests {
    use super::*;
    use crate::query::parse_describe;
    use semrec_datalog::parser::parse_unit;
    use semrec_engine::Database;

    #[test]
    fn counts_qualifying_objects_per_tree() {
        let unit = parse_unit(
            "honors(S) :- transcript(S, M, C, G), C >= 30, G >= 38.
             honors(S) :- graduated(S, College), topten(College).
             transcript(ann, cs, 33, 39).
             transcript(bob, cs, 20, 39).
             graduated(ben, mit).
             graduated(cal, yale).
             topten(mit).
             topten(yale).",
        )
        .unwrap();
        let db = Database::from_facts(&unit.facts);
        let q = parse_describe("describe honors(S) where graduated(S, C), topten(C).").unwrap();
        let a = answer_with_data(&unit.program(), &q, &db, 3);
        // Tree 1 (transcript): 1 object (ann); tree 2 (graduated): 2.
        let counts: Vec<Option<usize>> = a.trees.iter().map(|t| t.matching).collect();
        assert!(counts.contains(&Some(1)));
        assert!(counts.contains(&Some(2)));
        let text = a.to_string();
        assert!(text.contains("2 in db"), "{text}");
    }

    #[test]
    fn ground_target_counts_zero_or_one() {
        let unit = parse_unit(
            "honors(S) :- graduated(S, College), topten(College).
             graduated(ben, mit).
             topten(mit).",
        )
        .unwrap();
        let db = Database::from_facts(&unit.facts);
        let q = parse_describe("describe honors(ben) where graduated(ben, C).").unwrap();
        let a = answer_with_data(&unit.program(), &q, &db, 3);
        assert_eq!(a.trees[0].matching, Some(1));
        let q = parse_describe("describe honors(zoe) where graduated(zoe, C).").unwrap();
        let a = answer_with_data(&unit.program(), &q, &db, 3);
        assert_eq!(a.trees[0].matching, Some(0));
    }
}

#[cfg(test)]
mod implication_discharge_tests {
    use super::*;
    use crate::query::parse_describe;
    use semrec_datalog::parser::parse_unit;

    #[test]
    fn stronger_context_comparisons_discharge_tree_conditions() {
        let program = parse_unit("honors(S) :- transcript(S, M, C, G), C >= 30, G >= 38.")
            .unwrap()
            .program();
        // The context asserts MORE than the tree requires.
        let q =
            parse_describe("describe honors(S) where transcript(S, M, C, G), C >= 60, G >= 40.")
                .unwrap();
        let a = answer(&program, &q, 3);
        assert!(a.fully_qualified(), "{a}");

        // A weaker context does not qualify.
        let q =
            parse_describe("describe honors(S) where transcript(S, M, C, G), C >= 10, G >= 40.")
                .unwrap();
        let a = answer(&program, &q, 3);
        assert!(!a.fully_qualified());
    }
}

#[cfg(test)]
mod recursive_program_tests {
    use super::*;
    use crate::query::parse_describe;
    use semrec_datalog::parser::parse_unit;

    #[test]
    fn describe_over_recursive_programs_is_depth_bounded() {
        let program = parse_unit(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- anc(X, Z), par(Z, Y).",
        )
        .unwrap()
        .program();
        let q = parse_describe("describe anc(X, Y) where par(X, Y).").unwrap();
        let a = answer(&program, &q, 3);
        // Trees of depth 1..3; the direct-parent tree is fully qualified.
        assert_eq!(a.trees.len(), 3);
        assert!(a.fully_qualified());
        // Deeper trees report the remaining par hops as qualifications.
        assert!(a.trees.iter().any(|t| matches!(
            &t.verdict,
            TreeVerdict::NeedsMore { atoms, .. } if !atoms.is_empty()
        )));
    }
}
