//! Body literals: database/IDB atoms and evaluable comparison atoms.
//!
//! Following the paper, "built-in predicates like `X > Y`, `X > 100` are
//! called *evaluable predicates* while all others are called *database
//! predicates*". Evaluable atoms here are binary comparisons over the
//! totally ordered [`crate::term::Value`] domain. The comparison set
//! is closed under negation (`¬(<) = ≥` and so on), which is what lets the
//! program transformations of §4 split rules on `E` / `¬E` without needing
//! general negation in the engine.

use crate::atom::Atom;
use crate::term::{Term, Value};
use std::fmt;

/// A comparison operator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The complementary operator: `negate(op)(x, y) ⇔ ¬ op(x, y)`.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The operator with its argument order flipped: `flip(op)(x, y) ⇔ op(y, x)`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Applies the comparison to two ordered values.
    pub fn eval<T: Ord>(self, a: &T, b: &T) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// An evaluable atom `lhs op rhs`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Cmp {
    /// Left operand.
    pub lhs: Term,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: Term,
}

impl Cmp {
    /// Builds a comparison atom.
    pub fn new(lhs: Term, op: CmpOp, rhs: Term) -> Cmp {
        Cmp { lhs, op, rhs }
    }

    /// The negation `¬(lhs op rhs)`, still a single comparison atom.
    pub fn negate(self) -> Cmp {
        Cmp {
            lhs: self.lhs,
            op: self.op.negate(),
            rhs: self.rhs,
        }
    }

    /// Variables occurring in the comparison.
    pub fn vars(&self) -> impl Iterator<Item = crate::symbol::Symbol> {
        [self.lhs, self.rhs].into_iter().filter_map(|t| t.as_var())
    }

    /// If both operands are constants, evaluates the comparison.
    pub fn eval_ground(&self) -> Option<bool> {
        match (self.lhs.as_const(), self.rhs.as_const()) {
            (Some(a), Some(b)) => Some(self.op.eval(&a, &b)),
            _ => None,
        }
    }

    /// True if this comparison is a tautology regardless of bindings
    /// (e.g. `X = X`, or a true ground comparison).
    pub fn is_trivially_true(&self) -> bool {
        if self.lhs == self.rhs {
            return matches!(self.op, CmpOp::Eq | CmpOp::Le | CmpOp::Ge);
        }
        self.eval_ground() == Some(true)
    }

    /// True if this comparison is unsatisfiable regardless of bindings.
    pub fn is_trivially_false(&self) -> bool {
        if self.lhs == self.rhs {
            return matches!(self.op, CmpOp::Ne | CmpOp::Lt | CmpOp::Gt);
        }
        self.eval_ground() == Some(false)
    }

    /// The same comparison with operands in a canonical order (variables
    /// before constants, then term order), flipping the operator as needed.
    pub fn normalized(&self) -> Cmp {
        if self.rhs < self.lhs {
            Cmp {
                lhs: self.rhs,
                op: self.op.flip(),
                rhs: self.lhs,
            }
        } else {
            *self
        }
    }

    /// True if this comparison logically implies `other` on every binding
    /// (a sound, incomplete check — single-comparison reasoning only).
    ///
    /// Covers: identity (after normalization); `=`/`<`/`>` implying the
    /// non-strict and `!=` forms over the same operands; and constant-bound
    /// strengthening on a shared variable, e.g. `X > 7 ⇒ X > 3`,
    /// `X = 5 ⇒ X <= 9`.
    pub fn implies(&self, other: &Cmp) -> bool {
        let a = self.normalized();
        let b = other.normalized();
        if a == b || b.is_trivially_true() {
            return true;
        }
        if a.lhs == b.lhs && a.rhs == b.rhs {
            let weaker = |x: CmpOp, y: CmpOp| {
                matches!(
                    (x, y),
                    (CmpOp::Eq, CmpOp::Le)
                        | (CmpOp::Eq, CmpOp::Ge)
                        | (CmpOp::Lt, CmpOp::Le)
                        | (CmpOp::Lt, CmpOp::Ne)
                        | (CmpOp::Gt, CmpOp::Ge)
                        | (CmpOp::Gt, CmpOp::Ne)
                )
            };
            if weaker(a.op, b.op) {
                return true;
            }
        }
        // Constant-bound reasoning on a shared variable: a = (V op c),
        // b = (V op' d).
        let (Term::Var(va), Term::Const(ca)) = (a.lhs, a.rhs) else {
            return false;
        };
        let (Term::Var(vb), Term::Const(cb)) = (b.lhs, b.rhs) else {
            return false;
        };
        if va != vb {
            return false;
        }
        // The set of values satisfying `op c` must be contained in the set
        // satisfying `op' d`. Enumerate the useful cases.
        let (lo_a, hi_a, eq_a) = range_of(a.op, ca);
        let (lo_b, hi_b, _) = range_of(b.op, cb);
        match b.op {
            CmpOp::Ne => {
                // a excludes cb entirely?
                match a.op {
                    CmpOp::Eq => ca != cb,
                    CmpOp::Lt => cb >= ca,
                    CmpOp::Le => cb > ca,
                    CmpOp::Gt => cb <= ca,
                    CmpOp::Ge => cb < ca,
                    CmpOp::Ne => ca == cb,
                }
            }
            _ => {
                if let Some(eq) = eq_a {
                    return b.op.eval(&eq, &cb);
                }
                let lo_ok = match (lo_a, lo_b) {
                    (_, Bound::None) => true,
                    (Bound::None, _) => false,
                    (Bound::Open(x), Bound::Open(y)) | (Bound::Closed(x), Bound::Closed(y)) => {
                        x >= y
                    }
                    (Bound::Open(x), Bound::Closed(y)) => x >= y,
                    (Bound::Closed(x), Bound::Open(y)) => x > y,
                };
                let hi_ok = match (hi_a, hi_b) {
                    (_, Bound::None) => true,
                    (Bound::None, _) => false,
                    (Bound::Open(x), Bound::Open(y)) | (Bound::Closed(x), Bound::Closed(y)) => {
                        x <= y
                    }
                    (Bound::Open(x), Bound::Closed(y)) => x <= y,
                    (Bound::Closed(x), Bound::Open(y)) => x < y,
                };
                lo_ok && hi_ok
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Bound {
    None,
    Open(Value),
    Closed(Value),
}

/// The (lo, hi, point) characterization of `V op c`.
fn range_of(op: CmpOp, c: Value) -> (Bound, Bound, Option<Value>) {
    match op {
        CmpOp::Eq => (Bound::Closed(c), Bound::Closed(c), Some(c)),
        CmpOp::Ne => (Bound::None, Bound::None, None),
        CmpOp::Lt => (Bound::None, Bound::Open(c), None),
        CmpOp::Le => (Bound::None, Bound::Closed(c), None),
        CmpOp::Gt => (Bound::Open(c), Bound::None, None),
        CmpOp::Ge => (Bound::Closed(c), Bound::None, None),
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// A body literal: a database/IDB atom, a negated atom, or an evaluable
/// comparison.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Literal {
    /// A positive database or IDB subgoal.
    Atom(Atom),
    /// A negated subgoal `!p(…)` (stratified negation; all its variables
    /// must be bound by positive literals).
    Neg(Atom),
    /// An evaluable comparison.
    Cmp(Cmp),
}

impl Literal {
    /// The *positive* atom, if this literal is one.
    pub fn as_atom(&self) -> Option<&Atom> {
        match self {
            Literal::Atom(a) => Some(a),
            _ => None,
        }
    }

    /// The negated atom, if this literal is one.
    pub fn as_neg(&self) -> Option<&Atom> {
        match self {
            Literal::Neg(a) => Some(a),
            _ => None,
        }
    }

    /// The comparison, if this literal is one.
    pub fn as_cmp(&self) -> Option<&Cmp> {
        match self {
            Literal::Cmp(c) => Some(c),
            _ => None,
        }
    }

    /// Variables occurring in the literal.
    pub fn vars(&self) -> Vec<crate::symbol::Symbol> {
        match self {
            Literal::Atom(a) | Literal::Neg(a) => a.vars().collect(),
            Literal::Cmp(c) => c.vars().collect(),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Atom(a) => write!(f, "{a}"),
            Literal::Neg(a) => write!(f, "!{a}"),
            Literal::Cmp(c) => write!(f, "{c}"),
        }
    }
}

impl From<Atom> for Literal {
    fn from(a: Atom) -> Self {
        Literal::Atom(a)
    }
}

impl From<Cmp> for Literal {
    fn from(c: Cmp) -> Self {
        Literal::Cmp(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Value;

    #[test]
    fn negation_is_involutive_and_complementary() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.negate().negate(), op);
            for (a, b) in [(1, 2), (2, 2), (3, 2)] {
                assert_eq!(op.eval(&a, &b), !op.negate().eval(&a, &b));
                assert_eq!(op.eval(&a, &b), op.flip().eval(&b, &a));
            }
        }
    }

    #[test]
    fn ground_eval() {
        let c = Cmp::new(Term::int(5), CmpOp::Gt, Term::int(3));
        assert_eq!(c.eval_ground(), Some(true));
        assert!(c.is_trivially_true());
        assert!(c.negate().is_trivially_false());
        let open = Cmp::new(Term::var("X"), CmpOp::Gt, Term::int(3));
        assert_eq!(open.eval_ground(), None);
        assert!(!open.is_trivially_true());
    }

    #[test]
    fn same_term_triviality() {
        let x = Term::var("X");
        assert!(Cmp::new(x, CmpOp::Eq, x).is_trivially_true());
        assert!(Cmp::new(x, CmpOp::Lt, x).is_trivially_false());
        assert!(Cmp::new(x, CmpOp::Le, x).is_trivially_true());
    }

    #[test]
    fn string_comparisons() {
        let c = Cmp::new(
            Term::Const(Value::str("alpha")),
            CmpOp::Lt,
            Term::Const(Value::str("beta")),
        );
        assert_eq!(c.eval_ground(), Some(true));
    }
}

#[cfg(test)]
mod implication_tests {
    use super::*;

    fn c(src: &str) -> Cmp {
        let r = crate::parser::parse_rule(&format!("p(X) :- q(X), {src}.")).unwrap();
        let cmp = *r.body_cmps().next().unwrap();
        cmp
    }

    #[test]
    fn identity_and_flip() {
        assert!(c("X > 3").implies(&c("X > 3")));
        assert!(c("X > 3").implies(&c("3 < X")));
        assert!(!c("X > 3").implies(&c("X < 3")));
    }

    #[test]
    fn strict_implies_nonstrict() {
        assert!(c("X < Y").implies(&c("X <= Y")));
        assert!(c("X > Y").implies(&c("X != Y")));
        assert!(c("X = Y").implies(&c("X <= Y")));
        assert!(!c("X <= Y").implies(&c("X < Y")));
    }

    #[test]
    fn constant_bounds() {
        assert!(c("X > 7").implies(&c("X > 3")));
        assert!(c("X > 7").implies(&c("X >= 7")));
        assert!(c("X >= 8").implies(&c("X > 7")));
        assert!(!c("X > 3").implies(&c("X > 7")));
        assert!(c("X = 5").implies(&c("X <= 9")));
        assert!(c("X = 5").implies(&c("X != 9")));
        assert!(!c("X = 9").implies(&c("X != 9")));
        assert!(c("X < 2").implies(&c("X != 5")));
        assert!(c("X != 5").implies(&c("X != 5")));
        assert!(!c("X != 5").implies(&c("X != 6")));
    }

    #[test]
    fn different_variables_never_imply() {
        assert!(!c("X > 7").implies(&c("Y > 3")));
    }

    #[test]
    fn tautologies_are_implied() {
        assert!(c("X > 7").implies(&c("X >= X")));
        assert!(c("X > 7").implies(&c("2 < 3")));
    }
}
