//! Rectification (Ullman): all rules defining the same predicate get an
//! identical head `p(X1, …, Xn)` of distinct variables, with `Xi` in column
//! `i`. Constants and repeated variables in original heads become equality
//! comparisons in the body. The paper assumes rectified programs throughout
//! §3–§4 ("This assumption is not restrictive since it is well known that
//! all programs can be rectified").

use crate::atom::{Atom, Pred};
use crate::literal::{Cmp, CmpOp, Literal};
use crate::program::Program;
use crate::rule::Rule;
use crate::subst::Subst;
use crate::symbol::Symbol;
use crate::term::Term;
use std::collections::BTreeMap;

/// The canonical head variables chosen for each rectified predicate.
#[derive(Clone, Debug, Default)]
pub struct HeadVars {
    /// For each IDB predicate, the head variable of each column.
    pub vars: BTreeMap<Pred, Vec<Symbol>>,
}

/// Rectifies every rule of the program. Returns the transformed program and
/// the canonical head variables. Idempotent on already-rectified programs
/// *up to renaming*; rules that are already in canonical shape with
/// consistent head variables are left byte-identical.
pub fn rectify(program: &Program) -> (Program, HeadVars) {
    let mut head_vars = HeadVars::default();

    // Pass 1: pick canonical head variables per predicate. Reuse the head
    // variables of the first rule whose head is already all-distinct
    // variables, so typical hand-written programs survive unchanged.
    for r in &program.rules {
        let p = r.head.pred;
        if head_vars.vars.contains_key(&p) {
            continue;
        }
        let vars: Vec<Symbol> = r.head.args.iter().filter_map(|t| t.as_var()).collect();
        let all_distinct_vars = vars.len() == r.head.arity() && {
            let mut seen = std::collections::BTreeSet::new();
            vars.iter().all(|v| seen.insert(*v))
        };
        let chosen = if all_distinct_vars {
            vars
        } else {
            (0..r.head.arity())
                .map(|i| Symbol::fresh(&format!("{}@{}", p.name(), i)))
                .collect()
        };
        head_vars.vars.insert(p, chosen);
    }

    // Pass 2: rewrite each rule against the canonical head.
    let rules = program
        .rules
        .iter()
        .map(|r| rectify_rule(r, &head_vars.vars[&r.head.pred]))
        .collect();
    (Program::new(rules), head_vars)
}

fn rectify_rule(rule: &Rule, canon: &[Symbol]) -> Rule {
    // Rename any body-local variable that collides with a canonical head
    // variable it does not already stand for.
    let mut rename = Subst::new();
    let mut extra: Vec<Literal> = Vec::new();

    // First map original head variables: the first occurrence of a variable
    // in the head is renamed to the canonical name of its column.
    let mut mapped: BTreeMap<Symbol, Symbol> = BTreeMap::new();
    for (i, t) in rule.head.args.iter().enumerate() {
        if let Term::Var(v) = t {
            if !mapped.contains_key(v) {
                mapped.insert(*v, canon[i]);
            }
        }
    }

    // Protect body variables that accidentally equal a canonical name but
    // are not that head variable.
    for v in rule.vars() {
        if mapped.contains_key(&v) {
            continue;
        }
        if canon.contains(&v) {
            rename.insert(v, Term::Var(Symbol::fresh(v.as_str())));
        }
    }
    for (v, c) in &mapped {
        rename.insert(*v, Term::Var(*c));
    }

    let renamed = rename.apply_rule(rule);

    // Build the canonical head; emit equalities for constants and repeated
    // variables.
    let mut head_args = Vec::with_capacity(canon.len());
    for (i, t) in renamed.head.args.iter().enumerate() {
        let xi = Term::Var(canon[i]);
        match t {
            Term::Var(v) if *v == canon[i] => head_args.push(xi),
            other => {
                head_args.push(xi);
                extra.push(Literal::Cmp(Cmp::new(xi, CmpOp::Eq, *other)));
            }
        }
    }

    let mut body = renamed.body;
    body.extend(extra);
    Rule::new(Atom::new(rule.head.pred, head_args), body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unit;

    fn prog(src: &str) -> Program {
        parse_unit(src).unwrap().program()
    }

    #[test]
    fn already_rectified_is_untouched() {
        let p = prog("anc(X,Y) :- par(X,Y). anc(X,Y) :- anc(X,Z), par(Z,Y).");
        let (q, hv) = rectify(&p);
        assert_eq!(p, q);
        assert_eq!(
            hv.vars[&Pred::new("anc")],
            vec![Symbol::intern("X"), Symbol::intern("Y")]
        );
    }

    #[test]
    fn mixed_head_names_are_unified() {
        let p = prog("p(X,Y) :- e(X,Y). p(A,B) :- e(A,C), p(C,B).");
        let (q, _) = rectify(&p);
        assert_eq!(q.rules[0].head, q.rules[1].head);
        // Second rule's variables got renamed consistently: A→X, B→Y, C kept.
        assert_eq!(q.rules[1].to_string(), "p(X, Y) :- e(X, C), p(C, Y).");
    }

    #[test]
    fn constant_in_head_becomes_equality() {
        let p = prog("p(X, 3) :- e(X).");
        let (q, _) = rectify(&p);
        let r = &q.rules[0];
        assert_eq!(r.head.arity(), 2);
        assert!(r.head.args.iter().all(|t| t.is_var()));
        assert_eq!(r.body_cmps().count(), 1);
        let c = r.body_cmps().next().unwrap();
        assert_eq!(c.op, CmpOp::Eq);
        assert_eq!(c.rhs, Term::int(3));
    }

    #[test]
    fn repeated_head_var_becomes_equality() {
        let p = prog("p(X, X) :- e(X).");
        let (q, _) = rectify(&p);
        let r = &q.rules[0];
        let head_vars: Vec<_> = r.head.args.iter().map(|t| t.as_var().unwrap()).collect();
        assert_ne!(head_vars[0], head_vars[1]);
        assert_eq!(r.body_cmps().count(), 1);
    }

    #[test]
    fn colliding_local_var_is_protected() {
        // Second rule uses Y as a local, but column 1 canonical var is X and
        // column 2 is Y taken from rule 1; the local Y in rule 2's body (at
        // column-independent position) must not be captured.
        let p = prog("p(X, Y) :- e(X, Y). p(A, B) :- f(A, Y), g(Y, B), p(B, A).");
        let (q, _) = rectify(&p);
        let r = &q.rules[1];
        // Head is p(X, Y); the old local Y must have been renamed away.
        let f_atom = r.body[0].as_atom().unwrap();
        let local = f_atom.args[1].as_var().unwrap();
        assert_ne!(local, Symbol::intern("Y"));
        // And the recursive call carries the canonical names swapped.
        let rec = r.body[2].as_atom().unwrap();
        assert_eq!(rec.args[0], Term::var("Y"));
        assert_eq!(rec.args[1], Term::var("X"));
    }

    #[test]
    fn rectified_rules_share_identical_heads() {
        let p = prog(
            "t(X, Y, Z) :- base(X, Y, Z).
             t(A, A, C) :- step(A, C), t(A, A, C).",
        );
        let (q, _) = rectify(&p);
        assert_eq!(q.rules[0].head, q.rules[1].head);
        for r in &q.rules {
            assert!(r.is_range_restricted() || !r.body.is_empty());
        }
    }
}
