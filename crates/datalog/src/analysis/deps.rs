//! Predicate dependency graph and strongly connected components.

use crate::atom::Pred;
use crate::program::Program;
use std::collections::{BTreeMap, BTreeSet};

/// The predicate dependency graph of a program: an edge `p → q` exists when
/// `q` occurs in the body of a rule whose head predicate is `p`.
#[derive(Clone, Debug)]
pub struct DepGraph {
    /// All predicates, sorted.
    pub preds: Vec<Pred>,
    /// Adjacency: `edges[p]` = body predicates of rules for `p`.
    pub edges: BTreeMap<Pred, BTreeSet<Pred>>,
}

impl DepGraph {
    /// Builds the dependency graph of `program`.
    pub fn new(program: &Program) -> DepGraph {
        let mut preds: BTreeSet<Pred> = BTreeSet::new();
        let mut edges: BTreeMap<Pred, BTreeSet<Pred>> = BTreeMap::new();
        for r in &program.rules {
            preds.insert(r.head.pred);
            let entry = edges.entry(r.head.pred).or_default();
            for a in r.body_atoms() {
                preds.insert(a.pred);
                entry.insert(a.pred);
            }
        }
        DepGraph {
            preds: preds.into_iter().collect(),
            edges,
        }
    }

    /// Successors of `p` (empty for EDB predicates).
    pub fn succ(&self, p: Pred) -> impl Iterator<Item = Pred> + '_ {
        self.edges.get(&p).into_iter().flatten().copied()
    }

    /// Strongly connected components in reverse topological order
    /// (callees before callers), computed with an iterative Tarjan.
    pub fn sccs(&self) -> Vec<Vec<Pred>> {
        let index_of: BTreeMap<Pred, usize> = self
            .preds
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i))
            .collect();
        let n = self.preds.len();
        let adj: Vec<Vec<usize>> = self
            .preds
            .iter()
            .map(|&p| self.succ(p).map(|q| index_of[&q]).collect())
            .collect();

        const UNVISITED: usize = usize::MAX;
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut out: Vec<Vec<Pred>> = Vec::new();

        // Explicit DFS stack: (node, next child position).
        for start in 0..n {
            if index[start] != UNVISITED {
                continue;
            }
            let mut call: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(&mut (v, ref mut ci)) = call.last_mut() {
                if *ci == 0 {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if *ci < adj[v].len() {
                    let w = adj[v][*ci];
                    *ci += 1;
                    if index[w] == UNVISITED {
                        call.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(self.preds[w]);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort();
                        out.push(comp);
                    }
                }
            }
        }
        out
    }

    /// True if `p` is (directly or mutually) recursive.
    pub fn is_recursive(&self, p: Pred) -> bool {
        // p is recursive iff its SCC has >1 member or it has a self-edge.
        if self.succ(p).any(|q| q == p) {
            return true;
        }
        self.sccs()
            .into_iter()
            .any(|c| c.len() > 1 && c.contains(&p))
    }

    /// The undirected connected component of `p` (used by the §5 notion of
    /// *reachability* for intelligent query answering).
    pub fn undirected_component(&self, p: Pred) -> BTreeSet<Pred> {
        let mut undirected: BTreeMap<Pred, BTreeSet<Pred>> = BTreeMap::new();
        for (&h, bs) in &self.edges {
            for &b in bs {
                undirected.entry(h).or_default().insert(b);
                undirected.entry(b).or_default().insert(h);
            }
        }
        let mut seen = BTreeSet::new();
        let mut work = vec![p];
        while let Some(q) = work.pop() {
            if !seen.insert(q) {
                continue;
            }
            if let Some(next) = undirected.get(&q) {
                work.extend(next.iter().copied());
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unit;

    fn graph(src: &str) -> DepGraph {
        DepGraph::new(&parse_unit(src).unwrap().program())
    }

    #[test]
    fn simple_recursion() {
        let g = graph("p(X,Y) :- e(X,Y). p(X,Y) :- e(X,Z), p(Z,Y).");
        assert!(g.is_recursive(Pred::new("p")));
        assert!(!g.is_recursive(Pred::new("e")));
    }

    #[test]
    fn mutual_recursion_scc() {
        let g = graph(
            "even(X) :- zero(X). even(X) :- succ(Y,X), odd(Y). odd(X) :- succ(Y,X), even(X).",
        );
        let sccs = g.sccs();
        let big: Vec<_> = sccs.iter().filter(|c| c.len() > 1).collect();
        assert_eq!(big.len(), 1);
        assert_eq!(big[0].len(), 2);
        assert!(g.is_recursive(Pred::new("even")));
        assert!(g.is_recursive(Pred::new("odd")));
    }

    #[test]
    fn sccs_in_reverse_topological_order() {
        let g = graph("a(X) :- b(X). b(X) :- c(X).");
        let sccs = g.sccs();
        let pos = |p: &str| sccs.iter().position(|c| c.contains(&Pred::new(p))).unwrap();
        assert!(pos("c") < pos("b"));
        assert!(pos("b") < pos("a"));
    }

    #[test]
    fn undirected_component() {
        let g = graph("a(X) :- b(X). c(X) :- d(X).");
        let comp = g.undirected_component(Pred::new("a"));
        assert!(comp.contains(&Pred::new("b")));
        assert!(!comp.contains(&Pred::new("c")));
    }
}
