//! Classification of recursion: linearity, exit vs recursive rules.
//!
//! The paper's framework (§1, assumption 3) applies to *linear recursive
//! programs with no mutual recursion*: every rule body contains at most one
//! occurrence of a predicate from the head's SCC, and each recursive SCC is
//! a single predicate.

use super::deps::DepGraph;
use crate::atom::Pred;
use crate::error::Error;
use crate::program::Program;
use std::collections::BTreeSet;

/// Shape of a recursive predicate's definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecursionInfo {
    /// The recursive predicate.
    pub pred: Pred,
    /// Its arity.
    pub arity: usize,
    /// Indices (into the program) of rules whose body mentions `pred`.
    pub recursive_rules: Vec<usize>,
    /// Indices of rules for `pred` with no recursive subgoal.
    pub exit_rules: Vec<usize>,
}

impl RecursionInfo {
    /// All rules defining the predicate, recursive first then exit, in
    /// program order within each class.
    pub fn all_rules(&self) -> Vec<usize> {
        let mut v = self.recursive_rules.clone();
        v.extend(&self.exit_rules);
        v.sort_unstable();
        v
    }
}

/// Checks that `program` is a linear recursive program without mutual
/// recursion and returns per-predicate recursion info for every recursive
/// predicate (non-recursive IDB predicates are permitted and skipped).
pub fn classify_linear(program: &Program) -> Result<Vec<RecursionInfo>, Error> {
    let arities = program.arities().map_err(Error::analysis)?;
    let graph = DepGraph::new(program);
    for scc in graph.sccs() {
        if scc.len() > 1 {
            let names: Vec<_> = scc.iter().map(|p| p.name()).collect();
            return Err(Error::analysis(format!(
                "mutual recursion between {{{}}} is outside the paper's class",
                names.join(", ")
            )));
        }
    }

    let mut out = Vec::new();
    for &p in &graph.preds {
        if !graph.is_recursive(p) {
            continue;
        }
        let mut info = RecursionInfo {
            pred: p,
            arity: arities[&p],
            recursive_rules: vec![],
            exit_rules: vec![],
        };
        for (i, r) in program.rules.iter().enumerate() {
            if r.head.pred != p {
                continue;
            }
            let occurrences = r.body_atoms().filter(|a| a.pred == p).count();
            match occurrences {
                0 => info.exit_rules.push(i),
                1 => info.recursive_rules.push(i),
                n => {
                    return Err(Error::analysis(format!(
                        "rule {i} for {p} is non-linear ({n} recursive subgoals)"
                    )));
                }
            }
        }
        if info.exit_rules.is_empty() {
            return Err(Error::analysis(format!(
                "recursive predicate {p} has no exit rule"
            )));
        }
        out.push(info);
    }
    Ok(out)
}

/// Recursion info for one specific predicate; errors if `p` is not a
/// recursive predicate of the (linear) program.
pub fn classify_linear_pred(program: &Program, p: Pred) -> Result<RecursionInfo, Error> {
    classify_linear(program)?
        .into_iter()
        .find(|i| i.pred == p)
        .ok_or_else(|| Error::analysis(format!("{p} is not a recursive predicate")))
}

/// Predicates of the program that some rule for `roots` (transitively)
/// depends on, including the roots themselves.
pub fn reachable_preds(program: &Program, roots: &[Pred]) -> BTreeSet<Pred> {
    let graph = DepGraph::new(program);
    let mut seen: BTreeSet<Pred> = BTreeSet::new();
    let mut work: Vec<Pred> = roots.to_vec();
    while let Some(p) = work.pop() {
        if !seen.insert(p) {
            continue;
        }
        work.extend(graph.succ(p));
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unit;

    fn prog(src: &str) -> Program {
        parse_unit(src).unwrap().program()
    }

    #[test]
    fn classify_ancestor() {
        let p = prog("anc(X,Y) :- par(X,Y). anc(X,Y) :- anc(X,Z), par(Z,Y).");
        let infos = classify_linear(&p).unwrap();
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].pred, Pred::new("anc"));
        assert_eq!(infos[0].arity, 2);
        assert_eq!(infos[0].exit_rules, vec![0]);
        assert_eq!(infos[0].recursive_rules, vec![1]);
    }

    #[test]
    fn two_recursive_rules() {
        let p = prog(
            "p(X) :- e(X).
             p(X) :- a(X,Y), p(Y).
             p(X) :- b(X,Y), p(Y).",
        );
        let info = classify_linear_pred(&p, Pred::new("p")).unwrap();
        assert_eq!(info.recursive_rules, vec![1, 2]);
        assert_eq!(info.all_rules(), vec![0, 1, 2]);
    }

    #[test]
    fn rejects_nonlinear() {
        let p = prog("p(X,Y) :- e(X,Y). p(X,Y) :- p(X,Z), p(Z,Y).");
        let err = classify_linear(&p).unwrap_err();
        assert!(err.to_string().contains("non-linear"));
    }

    #[test]
    fn rejects_mutual() {
        let p = prog("a(X) :- e(X). a(X) :- f(X,Y), b(Y). b(X) :- g(X,Y), a(Y).");
        let err = classify_linear(&p).unwrap_err();
        assert!(err.to_string().contains("mutual recursion"));
    }

    #[test]
    fn rejects_missing_exit() {
        let p = prog("p(X) :- e(X,Y), p(Y).");
        assert!(classify_linear(&p).is_err());
    }

    #[test]
    fn reachable() {
        let p = prog("a(X) :- b(X). b(X) :- c(X), d(X). z(X) :- w(X).");
        let r = reachable_preds(&p, &[Pred::new("a")]);
        assert!(r.contains(&Pred::new("c")));
        assert!(!r.contains(&Pred::new("w")));
    }
}
