//! Static analysis: dependency graphs, recursion classification,
//! rectification, safety, connectivity, and the paper's assumption bundle.

pub mod connect;
pub mod deps;
pub mod rectify;
pub mod recursion;
pub mod safety;
pub mod validate;

pub use connect::{constraint_is_connected, rule_is_connected};
pub use deps::DepGraph;
pub use rectify::{rectify, HeadVars};
pub use recursion::{classify_linear, classify_linear_pred, reachable_preds, RecursionInfo};
pub use safety::{bindable_vars, check_program_safety, program_is_safe, unsafe_vars};
pub use validate::validate;
