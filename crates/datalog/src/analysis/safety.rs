//! Safety analysis for bottom-up evaluation.
//!
//! The paper only requires *range restriction* (every head variable occurs
//! in the body). For a finite bottom-up evaluation we need slightly more:
//! every variable of the rule must be *bindable* — it occurs in a positive
//! database/IDB subgoal, or it is connected by a chain of `=` comparisons to
//! a bindable term or a constant. Comparisons other than `=` never bind.

use crate::literal::{CmpOp, Literal};
use crate::program::Program;
use crate::rule::Rule;
use crate::symbol::Symbol;
use crate::term::Term;
use std::collections::BTreeSet;

/// Returns the set of bindable variables of a rule body.
pub fn bindable_vars(rule: &Rule) -> BTreeSet<Symbol> {
    let mut bound: BTreeSet<Symbol> = BTreeSet::new();
    for l in &rule.body {
        if let Literal::Atom(a) = l {
            bound.extend(a.vars());
        }
    }
    // Propagate through equality comparisons to a fixpoint.
    loop {
        let mut changed = false;
        for l in &rule.body {
            if let Literal::Cmp(c) = l {
                if c.op != CmpOp::Eq {
                    continue;
                }
                let lhs_ok = match c.lhs {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(&v),
                };
                let rhs_ok = match c.rhs {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(&v),
                };
                if lhs_ok && !rhs_ok {
                    if let Term::Var(v) = c.rhs {
                        changed |= bound.insert(v);
                    }
                }
                if rhs_ok && !lhs_ok {
                    if let Term::Var(v) = c.lhs {
                        changed |= bound.insert(v);
                    }
                }
            }
        }
        if !changed {
            return bound;
        }
    }
}

/// Checks that every variable of the rule is bindable. Returns the set of
/// unsafe variables (empty = safe).
pub fn unsafe_vars(rule: &Rule) -> BTreeSet<Symbol> {
    let bound = bindable_vars(rule);
    rule.vars().difference(&bound).copied().collect()
}

/// True if every rule of the program is safe.
pub fn program_is_safe(program: &Program) -> bool {
    program.rules.iter().all(|r| unsafe_vars(r).is_empty())
}

/// Returns an error message naming the first unsafe rule, if any.
pub fn check_program_safety(program: &Program) -> Result<(), crate::error::Error> {
    for (i, r) in program.rules.iter().enumerate() {
        let bad = unsafe_vars(r);
        if !bad.is_empty() {
            let names: Vec<_> = bad.iter().map(|s| s.as_str()).collect();
            return Err(crate::error::Error::analysis(format!(
                "rule {i} (`{r}`) is unsafe: variables {{{}}} cannot be bound",
                names.join(", ")
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;

    #[test]
    fn atom_bound_vars_are_safe() {
        let r = parse_rule("p(X,Y) :- e(X,Y), X < Y.").unwrap();
        assert!(unsafe_vars(&r).is_empty());
    }

    #[test]
    fn equality_chain_binds() {
        let r = parse_rule("p(X,Y) :- e(X), Y = X.").unwrap();
        assert!(unsafe_vars(&r).is_empty());
        let r = parse_rule("p(X,Y) :- e(X), Y = 3.").unwrap();
        assert!(unsafe_vars(&r).is_empty());
        let r = parse_rule("p(X,Y) :- e(X), Y = Z, Z = X.").unwrap();
        assert!(unsafe_vars(&r).is_empty());
    }

    #[test]
    fn inequality_does_not_bind() {
        let r = parse_rule("p(X,Y) :- e(X), Y < 3.").unwrap();
        let bad = unsafe_vars(&r);
        assert_eq!(bad.len(), 1);
        assert!(bad.contains(&Symbol::intern("Y")));
    }

    #[test]
    fn head_only_var_is_unsafe() {
        let r = parse_rule("p(X,Y) :- e(X).").unwrap();
        assert!(!unsafe_vars(&r).is_empty());
    }

    #[test]
    fn program_check_message() {
        let p: Program = "p(X) :- e(X). q(Y) :- f(Z), Y > Z.".parse().unwrap();
        let err = check_program_safety(&p).unwrap_err();
        assert!(err.to_string().contains("rule 1"));
        assert!(err.to_string().contains('Y'));
    }
}
