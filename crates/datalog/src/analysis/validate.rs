//! Bundled validation of the paper's assumptions (§1):
//!
//! 1. all rules are range restricted;
//! 2. all rules and ICs are connected;
//! 3. only linear recursive programs, no mutual recursion;
//! 4. ICs involve EDB relations (and evaluable predicates) only — and have
//!    the §3 chain shape.

use super::{connect, recursion, safety};
use crate::constraint::{Constraint, IcHead};
use crate::error::Error;
use crate::program::Program;

/// Validates `program` and `ics` against the paper's assumption bundle.
/// Returns the recursion classification on success.
pub fn validate(
    program: &Program,
    ics: &[Constraint],
) -> Result<Vec<recursion::RecursionInfo>, Error> {
    program.arities().map_err(Error::analysis)?;

    for (i, r) in program.rules.iter().enumerate() {
        if r.body.iter().any(|l| l.as_neg().is_some()) {
            return Err(Error::analysis(format!(
                "rule {i} (`{r}`) uses negation, which is outside the paper's class"
            )));
        }
        if !r.is_range_restricted() {
            return Err(Error::analysis(format!(
                "rule {i} (`{r}`) is not range restricted"
            )));
        }
        if !connect::rule_is_connected(r) {
            return Err(Error::analysis(format!(
                "rule {i} (`{r}`) is not connected"
            )));
        }
    }
    safety::check_program_safety(program)?;

    let infos = recursion::classify_linear(program)?;

    let idb = program.idb_preds();
    for ic in ics {
        let label = ic
            .name
            .map(|n| n.as_str().to_owned())
            .unwrap_or_else(|| ic.to_string());
        if !connect::constraint_is_connected(ic) {
            return Err(Error::analysis(format!(
                "constraint {label} is not connected"
            )));
        }
        for a in &ic.body_atoms {
            if idb.contains(&a.pred) {
                return Err(Error::analysis(format!(
                    "constraint {label} mentions IDB predicate {} in its body",
                    a.pred
                )));
            }
        }
        if let IcHead::Atom(a) = &ic.head {
            if idb.contains(&a.pred) {
                return Err(Error::analysis(format!(
                    "constraint {label} has IDB predicate {} in its head",
                    a.pred
                )));
            }
        }
        if !ic.is_chain() {
            return Err(Error::analysis(format!(
                "constraint {label} does not have the chain-connected shape of §3"
            )));
        }
    }
    Ok(infos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unit;

    #[test]
    fn accepts_paper_example() {
        // Example 3.2 program and IC.
        let unit = parse_unit(
            "eval(P, S, T) :- super(P, S, T).
             eval(P, S, T) :- works_with(P, P1), eval(P1, S, T), expert(P, F), field(T, F).
             ic ic1: works_with(P2, P1), expert(P1, F1) -> expert(P2, F1).",
        )
        .unwrap();
        let infos = validate(&unit.program(), &unit.constraints).unwrap();
        assert_eq!(infos.len(), 1);
    }

    #[test]
    fn rejects_idb_in_constraint() {
        let unit = parse_unit(
            "p(X) :- e(X).
             ic: p(X) -> .",
        )
        .unwrap();
        let err = validate(&unit.program(), &unit.constraints).unwrap_err();
        assert!(err.to_string().contains("IDB"));
    }

    #[test]
    fn rejects_unrestricted_rule() {
        let unit = parse_unit("p(X, Y) :- e(X).").unwrap();
        assert!(validate(&unit.program(), &[]).is_err());
    }

    #[test]
    fn rejects_non_chain_ic() {
        let unit = parse_unit(
            "p(X) :- e(X).
             ic: a(X,Y), b(Y,Z), c(Z,X) -> .",
        )
        .unwrap();
        let err = validate(&unit.program(), &unit.constraints).unwrap_err();
        assert!(err.to_string().contains("chain"));
    }
}

#[cfg(test)]
mod negation_tests {
    use super::*;
    use crate::parser::parse_unit;

    #[test]
    fn rejects_negation() {
        let unit = parse_unit("p(X) :- e(X, Y), !bad(X).").unwrap();
        let err = validate(&unit.program(), &[]).unwrap_err();
        assert!(err.to_string().contains("negation"));
    }
}
