//! Connectivity of rule and constraint bodies.
//!
//! The paper (§1, assumption 2) requires rules and ICs to be *connected*:
//! "for any two subgoals in the body, either they share a variable, or are
//! both connected to a common subgoal".

use crate::constraint::Constraint;
use crate::rule::Rule;
use crate::symbol::Symbol;
use std::collections::BTreeSet;

/// Union-find over literal indices, by shared variables.
fn connected(components: Vec<BTreeSet<Symbol>>) -> bool {
    let n = components.len();
    if n <= 1 {
        return true;
    }
    // Ground literals share no variables with anything; treat them as
    // connected (they constrain nothing, and the paper's examples never
    // contain them).
    let live: Vec<&BTreeSet<Symbol>> = components.iter().filter(|c| !c.is_empty()).collect();
    let m = live.len();
    if m <= 1 {
        return true;
    }
    let mut parent: Vec<usize> = (0..m).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for i in 0..m {
        for j in (i + 1)..m {
            if !live[i].is_disjoint(live[j]) {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                parent[a] = b;
            }
        }
    }
    let root = find(&mut parent, 0);
    (1..m).all(|i| find(&mut parent, i) == root)
}

/// True if the rule body is connected (facts and single-literal bodies are
/// trivially connected).
pub fn rule_is_connected(rule: &Rule) -> bool {
    connected(
        rule.body
            .iter()
            .map(|l| l.vars().into_iter().collect())
            .collect(),
    )
}

/// True if the constraint body (database atoms and comparisons together)
/// is connected.
pub fn constraint_is_connected(ic: &Constraint) -> bool {
    let mut comps: Vec<BTreeSet<Symbol>> =
        ic.body_atoms.iter().map(|a| a.vars().collect()).collect();
    comps.extend(ic.body_cmps.iter().map(|c| c.vars().collect()));
    connected(comps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_constraints, parse_rule};

    #[test]
    fn connected_rule() {
        let r = parse_rule("p(X,Y) :- a(X,Z), b(Z,W), c(W,Y).").unwrap();
        assert!(rule_is_connected(&r));
    }

    #[test]
    fn disconnected_rule() {
        let r = parse_rule("p(X,Y) :- a(X), b(Y).").unwrap();
        assert!(!rule_is_connected(&r));
    }

    #[test]
    fn indirectly_connected_via_cmp() {
        let r = parse_rule("p(X,Y) :- a(X), b(Y), X < Y.").unwrap();
        assert!(rule_is_connected(&r));
    }

    #[test]
    fn connected_constraint() {
        let ics = parse_constraints("ic: a(X,Y), b(Y,Z), Z > 5 -> c(Z).").unwrap();
        assert!(constraint_is_connected(&ics[0]));
        let ics = parse_constraints("ic: a(X), b(Y) -> .").unwrap();
        assert!(!constraint_is_connected(&ics[0]));
    }

    #[test]
    fn trivial_cases() {
        assert!(rule_is_connected(&parse_rule("p(X) :- a(X).").unwrap()));
        assert!(rule_is_connected(&parse_rule("p(1).").unwrap()));
    }
}
