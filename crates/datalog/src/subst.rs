//! Substitutions: finite maps from variables to terms.

use crate::atom::Atom;
use crate::literal::{Cmp, Literal};
use crate::rule::Rule;
use crate::symbol::Symbol;
use crate::term::Term;
use std::collections::BTreeMap;
use std::fmt;

/// A substitution `{X1 ↦ t1, …}`. Application replaces free occurrences of
/// the mapped variables; unmapped variables are left untouched.
///
/// Backed by a `BTreeMap` so iteration order (and `Display`) is
/// deterministic.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Subst {
    map: BTreeMap<Symbol, Term>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Subst {
        Subst::default()
    }

    /// Builds a substitution from pairs. Later pairs overwrite earlier ones.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Symbol, Term)>) -> Subst {
        Subst {
            map: pairs.into_iter().collect(),
        }
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The binding for `v`, if any.
    pub fn get(&self, v: Symbol) -> Option<Term> {
        self.map.get(&v).copied()
    }

    /// Binds `v ↦ t`, returning the previous binding if one existed.
    pub fn insert(&mut self, v: Symbol, t: Term) -> Option<Term> {
        self.map.insert(v, t)
    }

    /// Iterator over bindings in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, Term)> + '_ {
        self.map.iter().map(|(&v, &t)| (v, t))
    }

    /// Applies the substitution to a term.
    pub fn apply_term(&self, t: Term) -> Term {
        match t {
            Term::Var(v) => self.get(v).unwrap_or(t),
            Term::Const(_) => t,
        }
    }

    /// Applies the substitution to every argument of an atom.
    pub fn apply_atom(&self, a: &Atom) -> Atom {
        Atom {
            pred: a.pred,
            args: a.args.iter().map(|&t| self.apply_term(t)).collect(),
        }
    }

    /// Applies the substitution to a comparison.
    pub fn apply_cmp(&self, c: &Cmp) -> Cmp {
        Cmp {
            lhs: self.apply_term(c.lhs),
            op: c.op,
            rhs: self.apply_term(c.rhs),
        }
    }

    /// Applies the substitution to a literal.
    pub fn apply_literal(&self, l: &Literal) -> Literal {
        match l {
            Literal::Atom(a) => Literal::Atom(self.apply_atom(a)),
            Literal::Neg(a) => Literal::Neg(self.apply_atom(a)),
            Literal::Cmp(c) => Literal::Cmp(self.apply_cmp(c)),
        }
    }

    /// Applies the substitution to a whole rule.
    pub fn apply_rule(&self, r: &Rule) -> Rule {
        Rule {
            head: self.apply_atom(&r.head),
            body: r.body.iter().map(|l| self.apply_literal(l)).collect(),
        }
    }

    /// Composition: `(self ∘ other)(t) = other(self(t))` — i.e. first apply
    /// `self`'s bindings, then rewrite the results with `other`; variables
    /// bound only by `other` are also carried over.
    pub fn compose(&self, other: &Subst) -> Subst {
        let mut map: BTreeMap<Symbol, Term> = self
            .map
            .iter()
            .map(|(&v, &t)| (v, other.apply_term(t)))
            .collect();
        for (&v, &t) in &other.map {
            map.entry(v).or_insert(t);
        }
        Subst { map }
    }
}

impl fmt::Display for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, t)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}/{t}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(Symbol, Term)> for Subst {
    fn from_iter<I: IntoIterator<Item = (Symbol, Term)>>(iter: I) -> Self {
        Subst::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::CmpOp;

    fn s(name: &str) -> Symbol {
        Symbol::intern(name)
    }

    #[test]
    fn apply_basics() {
        let sub = Subst::from_pairs([(s("X"), Term::int(1)), (s("Y"), Term::var("Z"))]);
        assert_eq!(sub.apply_term(Term::var("X")), Term::int(1));
        assert_eq!(sub.apply_term(Term::var("Y")), Term::var("Z"));
        assert_eq!(sub.apply_term(Term::var("W")), Term::var("W"));
        let a = Atom::new("p", vec![Term::var("X"), Term::var("W")]);
        assert_eq!(sub.apply_atom(&a).to_string(), "p(1, W)");
    }

    #[test]
    fn compose_order() {
        // self = {X -> Y}, other = {Y -> 3}: compose applies self then other.
        let s1 = Subst::from_pairs([(s("X"), Term::var("Y"))]);
        let s2 = Subst::from_pairs([(s("Y"), Term::int(3))]);
        let c = s1.compose(&s2);
        assert_eq!(c.apply_term(Term::var("X")), Term::int(3));
        assert_eq!(c.apply_term(Term::var("Y")), Term::int(3));
    }

    #[test]
    fn apply_cmp() {
        let sub = Subst::from_pairs([(s("X"), Term::int(9))]);
        let c = Cmp::new(Term::var("X"), CmpOp::Gt, Term::int(3));
        assert_eq!(sub.apply_cmp(&c).eval_ground(), Some(true));
    }

    #[test]
    fn display_is_deterministic() {
        let sub = Subst::from_pairs([(s("B"), Term::int(2)), (s("A"), Term::int(1))]);
        assert_eq!(sub.to_string(), "{A/1, B/2}");
    }
}
