//! Programs: ordered collections of rules, plus derived predicate metadata.

use crate::atom::Pred;
use crate::rule::Rule;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::str::FromStr;

/// A Datalog program: an ordered list of rules. Rule order is preserved
/// because the paper identifies proof trees with *expansion sequences* —
/// sequences of rule indices.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Builds a program from rules.
    pub fn new(rules: Vec<Rule>) -> Program {
        Program { rules }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the program has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The IDB predicates: those defined by some rule head.
    pub fn idb_preds(&self) -> BTreeSet<Pred> {
        self.rules.iter().map(|r| r.head.pred).collect()
    }

    /// The EDB predicates: those occurring only in rule bodies.
    pub fn edb_preds(&self) -> BTreeSet<Pred> {
        let idb = self.idb_preds();
        let mut out = BTreeSet::new();
        for r in &self.rules {
            for a in r.body_atoms() {
                if !idb.contains(&a.pred) {
                    out.insert(a.pred);
                }
            }
        }
        out
    }

    /// Indices of the rules whose head predicate is `p`.
    pub fn rules_for(&self, p: Pred) -> Vec<usize> {
        self.rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.head.pred == p)
            .map(|(i, _)| i)
            .collect()
    }

    /// Arity of each predicate as used in the program, or an error message
    /// naming the first predicate used with two different arities.
    pub fn arities(&self) -> Result<BTreeMap<Pred, usize>, String> {
        let mut out: BTreeMap<Pred, usize> = BTreeMap::new();
        let mut check = |p: Pred, n: usize| -> Result<(), String> {
            match out.get(&p) {
                Some(&m) if m != n => Err(format!("predicate {p} used with arities {m} and {n}")),
                _ => {
                    out.insert(p, n);
                    Ok(())
                }
            }
        };
        for r in &self.rules {
            check(r.head.pred, r.head.arity())?;
            for a in r.body_atoms() {
                check(a.pred, a.arity())?;
            }
        }
        Ok(out)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

impl FromStr for Program {
    type Err = crate::error::Error;

    /// Parses a program (rules only; facts and constraints in the source are
    /// rejected — use [`crate::parser::parse_unit`] for mixed input).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let unit = crate::parser::parse_unit(s)?;
        if !unit.constraints.is_empty() {
            return Err(crate::error::Error::parse(
                0,
                0,
                "constraints not allowed when parsing a bare Program",
            ));
        }
        let mut rules = unit.rules;
        rules.extend(unit.facts.into_iter().map(Rule::fact));
        Ok(Program::new(rules))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::term::Term;

    fn prog() -> Program {
        // p(X,Y) :- e(X,Y).  p(X,Y) :- e(X,Z), p(Z,Y).
        let v = Term::var;
        Program::new(vec![
            Rule::new(
                Atom::new("p", vec![v("X"), v("Y")]),
                vec![Atom::new("e", vec![v("X"), v("Y")]).into()],
            ),
            Rule::new(
                Atom::new("p", vec![v("X"), v("Y")]),
                vec![
                    Atom::new("e", vec![v("X"), v("Z")]).into(),
                    Atom::new("p", vec![v("Z"), v("Y")]).into(),
                ],
            ),
        ])
    }

    #[test]
    fn idb_edb_split() {
        let p = prog();
        assert_eq!(p.idb_preds().len(), 1);
        assert!(p.idb_preds().contains(&Pred::new("p")));
        assert!(p.edb_preds().contains(&Pred::new("e")));
        assert_eq!(p.rules_for(Pred::new("p")), vec![0, 1]);
    }

    #[test]
    fn arity_check() {
        let p = prog();
        let ar = p.arities().unwrap();
        assert_eq!(ar[&Pred::new("p")], 2);
        assert_eq!(ar[&Pred::new("e")], 2);

        let bad = Program::new(vec![
            Rule::fact(Atom::new("e", vec![Term::int(1)])),
            Rule::fact(Atom::new("e", vec![Term::int(1), Term::int(2)])),
        ]);
        assert!(bad.arities().is_err());
    }
}
