//! Predicate symbols and atoms.

use crate::symbol::Symbol;
use crate::term::Term;
use std::fmt;

/// A predicate symbol. Arity is not part of the symbol; programs are checked
/// for consistent arity by [`crate::analysis`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Pred(pub Symbol);

impl Pred {
    /// Predicate symbol from a name.
    pub fn new(name: &str) -> Pred {
        Pred(Symbol::intern(name))
    }

    /// The predicate's name.
    pub fn name(self) -> &'static str {
        self.0.as_str()
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Pred {
    fn from(s: &str) -> Self {
        Pred::new(s)
    }
}

/// An atom `p(t1, …, tn)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// The predicate symbol.
    pub pred: Pred,
    /// The argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Builds an atom.
    pub fn new(pred: impl Into<Pred>, args: Vec<Term>) -> Atom {
        Atom {
            pred: pred.into(),
            args,
        }
    }

    /// Number of arguments.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Iterator over the variables occurring in the atom (with repeats).
    pub fn vars(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.args.iter().filter_map(|t| t.as_var())
    }

    /// True if the atom contains no variables.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| !t.is_var())
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_display_and_vars() {
        let a = Atom::new("edge", vec![Term::var("X"), Term::int(3)]);
        assert_eq!(a.to_string(), "edge(X, 3)");
        assert_eq!(a.vars().count(), 1);
        assert!(!a.is_ground());
        let g = Atom::new("edge", vec![Term::int(1), Term::int(2)]);
        assert!(g.is_ground());
    }
}
