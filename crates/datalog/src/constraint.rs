//! Integrity constraints.
//!
//! ICs are implication statements `D1, …, Dk, E1, …, Em -> A` where the
//! `Di` are database atoms, the `Ej` are evaluable comparisons and `A`
//! (possibly absent) is a database atom or a comparison (§3 of the paper;
//! note the paper's reversal of head and body relative to clause notation).
//! An IC with an absent head is a denial: its body must never be satisfied.

use crate::atom::{Atom, Pred};
use crate::literal::Cmp;
use crate::subst::Subst;
use crate::symbol::Symbol;
use std::collections::BTreeSet;
use std::fmt;

/// The consequent of an integrity constraint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IcHead {
    /// Absent head: the constraint is a denial (`body -> ⊥`).
    None,
    /// A database atom.
    Atom(Atom),
    /// An evaluable comparison.
    Cmp(Cmp),
}

impl IcHead {
    /// Variables of the head.
    pub fn vars(&self) -> Vec<Symbol> {
        match self {
            IcHead::None => vec![],
            IcHead::Atom(a) => a.vars().collect(),
            IcHead::Cmp(c) => c.vars().collect(),
        }
    }

    /// Applies a substitution.
    pub fn apply(&self, s: &Subst) -> IcHead {
        match self {
            IcHead::None => IcHead::None,
            IcHead::Atom(a) => IcHead::Atom(s.apply_atom(a)),
            IcHead::Cmp(c) => IcHead::Cmp(s.apply_cmp(c)),
        }
    }
}

impl fmt::Display for IcHead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IcHead::None => Ok(()),
            IcHead::Atom(a) => write!(f, "{a}"),
            IcHead::Cmp(c) => write!(f, "{c}"),
        }
    }
}

/// An integrity constraint `D1, …, Dk, E1, …, Em -> head`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Constraint {
    /// Optional name (for diagnostics), e.g. `ic1`.
    pub name: Option<Symbol>,
    /// The database atoms of the antecedent (`k ≥ 1`).
    pub body_atoms: Vec<Atom>,
    /// The evaluable comparisons of the antecedent (`m ≥ 0`).
    pub body_cmps: Vec<Cmp>,
    /// The consequent.
    pub head: IcHead,
}

impl Constraint {
    /// Builds a constraint.
    pub fn new(body_atoms: Vec<Atom>, body_cmps: Vec<Cmp>, head: IcHead) -> Constraint {
        Constraint {
            name: None,
            body_atoms,
            body_cmps,
            head,
        }
    }

    /// Sets the diagnostic name.
    pub fn named(mut self, name: &str) -> Constraint {
        self.name = Some(Symbol::intern(name));
        self
    }

    /// True if the constraint is a denial (absent head).
    pub fn is_denial(&self) -> bool {
        matches!(self.head, IcHead::None)
    }

    /// All variables of the constraint.
    pub fn vars(&self) -> BTreeSet<Symbol> {
        let mut out: BTreeSet<Symbol> = BTreeSet::new();
        for a in &self.body_atoms {
            out.extend(a.vars());
        }
        for c in &self.body_cmps {
            out.extend(c.vars());
        }
        out.extend(self.head.vars());
        out
    }

    /// The set of database predicates mentioned in the body.
    pub fn body_preds(&self) -> BTreeSet<Pred> {
        self.body_atoms.iter().map(|a| a.pred).collect()
    }

    /// Applies a substitution to the whole constraint.
    pub fn apply(&self, s: &Subst) -> Constraint {
        Constraint {
            name: self.name,
            body_atoms: self.body_atoms.iter().map(|a| s.apply_atom(a)).collect(),
            body_cmps: self.body_cmps.iter().map(|c| s.apply_cmp(c)).collect(),
            head: self.head.apply(s),
        }
    }

    /// Checks the paper's §3 *chain-connectivity* shape: each `D_i` shares
    /// one or more variables with `D_{i-1}` and `D_{i+1}` and with no other
    /// database atom, `1 < i < k`. Single-atom bodies trivially qualify.
    pub fn is_chain(&self) -> bool {
        let k = self.body_atoms.len();
        let vars: Vec<BTreeSet<Symbol>> =
            self.body_atoms.iter().map(|a| a.vars().collect()).collect();
        for i in 0..k {
            for j in (i + 1)..k {
                let shares = !vars[i].is_disjoint(&vars[j]);
                let adjacent = j == i + 1;
                if adjacent && !shares {
                    return false;
                }
                if !adjacent && shares {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ic")?;
        if let Some(n) = self.name {
            write!(f, " {n}")?;
        }
        write!(f, ": ")?;
        let mut first = true;
        for a in &self.body_atoms {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{a}")?;
        }
        for c in &self.body_cmps {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{c}")?;
        }
        write!(f, " -> {}.", self.head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::CmpOp;
    use crate::term::Term;

    fn v(n: &str) -> Term {
        Term::var(n)
    }

    #[test]
    fn chain_shape() {
        // a(X,Y), b(Y,Z), c(Z,W) -> d(W). Proper chain.
        let ic = Constraint::new(
            vec![
                Atom::new("a", vec![v("X"), v("Y")]),
                Atom::new("b", vec![v("Y"), v("Z")]),
                Atom::new("c", vec![v("Z"), v("W")]),
            ],
            vec![],
            IcHead::Atom(Atom::new("d", vec![v("W")])),
        );
        assert!(ic.is_chain());

        // a and c also share X: not a chain.
        let bad = Constraint::new(
            vec![
                Atom::new("a", vec![v("X"), v("Y")]),
                Atom::new("b", vec![v("Y"), v("Z")]),
                Atom::new("c", vec![v("Z"), v("X")]),
            ],
            vec![],
            IcHead::None,
        );
        assert!(!bad.is_chain());

        // disconnected adjacent atoms: not a chain.
        let disc = Constraint::new(
            vec![Atom::new("a", vec![v("X")]), Atom::new("b", vec![v("Y")])],
            vec![],
            IcHead::None,
        );
        assert!(!disc.is_chain());
    }

    #[test]
    fn denial_and_display() {
        let ic = Constraint::new(
            vec![Atom::new("p", vec![v("X")])],
            vec![Cmp::new(v("X"), CmpOp::Gt, Term::int(10))],
            IcHead::None,
        )
        .named("ic1");
        assert!(ic.is_denial());
        assert_eq!(ic.to_string(), "ic ic1: p(X), X > 10 -> .");
    }

    #[test]
    fn apply_substitution() {
        let ic = Constraint::new(
            vec![Atom::new("p", vec![v("X")])],
            vec![],
            IcHead::Atom(Atom::new("q", vec![v("X")])),
        );
        let s = Subst::from_pairs([(Symbol::intern("X"), Term::int(1))]);
        let out = ic.apply(&s);
        assert_eq!(out.body_atoms[0].to_string(), "p(1)");
        assert_eq!(out.head.to_string(), "q(1)");
    }
}
