//! Terms and constant values.
//!
//! The language is function-free (Datalog), so a term is either a variable
//! or a constant. Constants are either 64-bit integers or interned strings;
//! both kinds are totally ordered so that the evaluable comparison
//! predicates (`<`, `<=`, …) are defined on every pair of values (integers
//! sort before strings, strings compare lexicographically).

use crate::symbol::Symbol;
use std::cmp::Ordering;
use std::fmt;

/// A constant value of the domain.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// A 64-bit signed integer.
    Int(i64),
    /// An interned string constant.
    Str(Symbol),
}

impl Value {
    /// String constant from a `&str`.
    pub fn str(s: &str) -> Value {
        Value::Str(Symbol::intern(s))
    }

    /// Integer constant.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }

    /// True if this is an integer value.
    pub fn is_int(self) -> bool {
        matches!(self, Value::Int(_))
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.as_str().cmp(b.as_str()),
            // Total order across kinds: all integers sort before all strings.
            (Value::Int(_), Value::Str(_)) => Ordering::Less,
            (Value::Str(_), Value::Int(_)) => Ordering::Greater,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => {
                let t = s.as_str();
                // Quote anything that would not re-lex as a constant ident.
                let plain = !t.is_empty()
                    && t.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                    && t.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
                if plain {
                    write!(f, "{t}")
                } else {
                    write!(f, "{t:?}")
                }
            }
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

/// A term: a variable or a constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A named logical variable.
    Var(Symbol),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Variable term from a name.
    pub fn var(name: &str) -> Term {
        Term::Var(Symbol::intern(name))
    }

    /// Integer constant term.
    pub fn int(i: i64) -> Term {
        Term::Const(Value::Int(i))
    }

    /// String constant term.
    pub fn str(s: &str) -> Term {
        Term::Const(Value::str(s))
    }

    /// The variable name, if this is a variable.
    pub fn as_var(self) -> Option<Symbol> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant value, if this is a constant.
    pub fn as_const(self) -> Option<Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }

    /// True if this term is a variable.
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_total_order() {
        assert!(Value::int(1) < Value::int(2));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::int(i64::MAX) < Value::str(""));
    }

    #[test]
    fn display_quotes_non_ident_strings() {
        assert_eq!(Value::str("executive").to_string(), "executive");
        assert_eq!(Value::str("Hello world").to_string(), "\"Hello world\"");
        assert_eq!(Value::str("CS").to_string(), "\"CS\"");
    }

    #[test]
    fn term_accessors() {
        let v = Term::var("X");
        assert!(v.is_var());
        assert_eq!(v.as_var(), Some(Symbol::intern("X")));
        assert_eq!(v.as_const(), None);
        let c = Term::int(7);
        assert_eq!(c.as_const(), Some(Value::Int(7)));
        assert_eq!(c.as_var(), None);
    }
}
