//! Error type shared by the language substrate.

use std::fmt;

/// Errors raised by parsing and static analysis.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Error {
    /// A syntax error at `line:col`.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// What went wrong.
        msg: String,
    },
    /// A semantic/static-analysis error (arity clash, unsafe rule, …).
    Analysis(String),
}

impl Error {
    /// Builds a parse error.
    pub fn parse(line: usize, col: usize, msg: impl Into<String>) -> Error {
        Error::Parse {
            line,
            col,
            msg: msg.into(),
        }
    }

    /// Builds an analysis error.
    pub fn analysis(msg: impl Into<String>) -> Error {
        Error::Analysis(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { line, col, msg } => write!(f, "parse error at {line}:{col}: {msg}"),
            Error::Analysis(msg) => write!(f, "analysis error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            Error::parse(3, 7, "expected ')'").to_string(),
            "parse error at 3:7: expected ')'"
        );
        assert_eq!(Error::analysis("boom").to_string(), "analysis error: boom");
    }
}
