//! # semrec-datalog
//!
//! The language substrate for the `semrec` workspace: a function-free
//! Datalog dialect with evaluable comparison predicates, integrity
//! constraints expressed as implications, a parser for the Prolog-like
//! surface syntax used by the paper, and the static analyses the paper's
//! framework assumes (rectification, range restriction, connectivity,
//! linear-recursion classification, safety).
//!
//! This crate has no evaluation machinery — see `semrec-engine` — and no
//! optimization machinery — see `semrec-core`.

#![warn(missing_docs)]

pub mod analysis;
pub mod atom;
pub mod constraint;
pub mod error;
pub mod literal;
pub mod parser;
pub mod program;
pub mod rule;
pub mod subst;
pub mod symbol;
pub mod term;
pub mod unify;

pub use atom::{Atom, Pred};
pub use constraint::{Constraint, IcHead};
pub use error::Error;
pub use literal::{Cmp, CmpOp, Literal};
pub use parser::{parse_atom, parse_constraints, parse_rule, parse_unit, Unit};
pub use program::Program;
pub use rule::Rule;
pub use subst::Subst;
pub use symbol::Symbol;
pub use term::{Term, Value};
