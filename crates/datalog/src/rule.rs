//! Rules (Horn clauses with evaluable body atoms).

use crate::atom::{Atom, Pred};
use crate::literal::{Cmp, Literal};
use crate::symbol::Symbol;
use std::collections::BTreeSet;
use std::fmt;

/// A rule `head :- l1, …, lm.` A rule with an empty body is a fact.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// The body literals, in source order.
    pub body: Vec<Literal>,
}

impl Rule {
    /// Builds a rule.
    pub fn new(head: Atom, body: Vec<Literal>) -> Rule {
        Rule { head, body }
    }

    /// A fact (rule with empty body).
    pub fn fact(head: Atom) -> Rule {
        Rule { head, body: vec![] }
    }

    /// True if this rule has an empty body.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// The database/IDB atoms of the body, in order.
    pub fn body_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(Literal::as_atom)
    }

    /// The evaluable comparisons of the body, in order.
    pub fn body_cmps(&self) -> impl Iterator<Item = &Cmp> {
        self.body.iter().filter_map(Literal::as_cmp)
    }

    /// Positions (indices into `body`) of atoms with predicate `p`.
    pub fn positions_of(&self, p: Pred) -> Vec<usize> {
        self.body
            .iter()
            .enumerate()
            .filter(|(_, l)| l.as_atom().is_some_and(|a| a.pred == p))
            .map(|(i, _)| i)
            .collect()
    }

    /// All variables of the rule (head and body), deduplicated, in
    /// first-occurrence-agnostic (sorted) order.
    pub fn vars(&self) -> BTreeSet<Symbol> {
        let mut out: BTreeSet<Symbol> = self.head.vars().collect();
        for l in &self.body {
            out.extend(l.vars());
        }
        out
    }

    /// Variables occurring in the body only.
    pub fn body_vars(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        for l in &self.body {
            out.extend(l.vars());
        }
        out
    }

    /// *Local* variables: occur in the body but not in the head.
    pub fn local_vars(&self) -> BTreeSet<Symbol> {
        let head: BTreeSet<Symbol> = self.head.vars().collect();
        self.body_vars().difference(&head).copied().collect()
    }

    /// True if every head variable occurs in the body (the paper's *range
    /// restricted* condition; facts with ground heads are range restricted).
    pub fn is_range_restricted(&self) -> bool {
        let body = self.body_vars();
        self.head.vars().all(|v| body.contains(&v))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        write!(f, ".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::CmpOp;
    use crate::term::Term;

    fn rule() -> Rule {
        // p(X, Y) :- e(X, Z), Z > 3, q(Z, Y).
        Rule::new(
            Atom::new("p", vec![Term::var("X"), Term::var("Y")]),
            vec![
                Atom::new("e", vec![Term::var("X"), Term::var("Z")]).into(),
                Cmp::new(Term::var("Z"), CmpOp::Gt, Term::int(3)).into(),
                Atom::new("q", vec![Term::var("Z"), Term::var("Y")]).into(),
            ],
        )
    }

    #[test]
    fn accessors() {
        let r = rule();
        assert_eq!(r.body_atoms().count(), 2);
        assert_eq!(r.body_cmps().count(), 1);
        assert_eq!(r.positions_of(Pred::new("q")), vec![2]);
        assert_eq!(r.vars().len(), 3);
        assert_eq!(r.local_vars().len(), 1);
        assert!(r.is_range_restricted());
        assert!(!r.is_fact());
    }

    #[test]
    fn range_restriction_violation() {
        let r = Rule::new(
            Atom::new("p", vec![Term::var("X"), Term::var("Y")]),
            vec![Atom::new("e", vec![Term::var("X")]).into()],
        );
        assert!(!r.is_range_restricted());
    }

    #[test]
    fn display() {
        assert_eq!(rule().to_string(), "p(X, Y) :- e(X, Z), Z > 3, q(Z, Y).");
        let f = Rule::fact(Atom::new("e", vec![Term::int(1), Term::int(2)]));
        assert_eq!(f.to_string(), "e(1, 2).");
    }
}
