//! Global string interner and the [`Symbol`] handle type.
//!
//! Predicate names, variable names and string constants all go through one
//! process-wide interner so that equality checks and hashing on names are
//! `u32` comparisons. Interned strings are leaked (the set of distinct
//! identifiers in a Datalog workload is small and bounded), which lets
//! [`Symbol::as_str`] hand out `&'static str` without lifetime plumbing.
//!
//! Writes (`intern`) serialize on a `Mutex`, but reads (`as_str`) are
//! lock-free: resolved strings live in an append-only chunked slab whose
//! visible length is published with a release store after the slot is
//! written. A `Symbol` only exists once its slot has been published, so an
//! acquire load of the length is enough to make the slot contents visible —
//! `Value::Ord` on string constants (two resolutions per comparison) never
//! touches a lock.

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// An interned string. Cheap to copy, compare and hash.
///
/// Two `Symbol`s are equal iff the strings they were interned from are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

const CHUNK_BITS: u32 = 12;
const CHUNK: usize = 1 << CHUNK_BITS; // 4096 symbols per chunk
const MAX_CHUNKS: usize = 1 << 12; // up to ~16.7M symbols

/// One fixed-size block of resolved strings. Slots are written exactly once
/// (under the intern mutex) before being published; readers never see an
/// unpublished slot, so the plain (non-atomic) array is race-free.
struct Chunk {
    slots: UnsafeCell<[&'static str; CHUNK]>,
}

// SAFETY: slots are written only by the single writer holding the intern
// mutex, and only at indexes >= the published length; readers only touch
// indexes < the published length (acquire-ordered against the writer's
// release store), so no two threads ever access the same slot concurrently
// with a write.
unsafe impl Sync for Chunk {}

/// Append-only slab: chunk pointers are installed once (release) and the
/// total number of readable slots is published via `len` (release) after
/// each slot write.
struct Slab {
    chunks: Vec<AtomicPtr<Chunk>>,
    len: AtomicU32,
}

struct Interner {
    map: HashMap<&'static str, u32>,
}

fn slab() -> &'static Slab {
    static SLAB: OnceLock<Slab> = OnceLock::new();
    SLAB.get_or_init(|| {
        let mut chunks = Vec::with_capacity(MAX_CHUNKS);
        chunks.resize_with(MAX_CHUNKS, || AtomicPtr::new(std::ptr::null_mut()));
        Slab {
            chunks,
            len: AtomicU32::new(0),
        }
    })
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
        })
    })
}

impl Symbol {
    /// Interns `s`, returning its canonical handle.
    pub fn intern(s: &str) -> Symbol {
        let mut g = interner().lock().expect("interner poisoned");
        if let Some(&id) = g.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let slab = slab();
        let id = slab.len.load(Ordering::Relaxed);
        let (ci, si) = ((id >> CHUNK_BITS) as usize, (id as usize) & (CHUNK - 1));
        assert!(
            ci < MAX_CHUNKS,
            "interner full ({MAX_CHUNKS}x{CHUNK} symbols)"
        );
        let mut chunk = slab.chunks[ci].load(Ordering::Acquire);
        if chunk.is_null() {
            chunk = Box::into_raw(Box::new(Chunk {
                slots: UnsafeCell::new([""; CHUNK]),
            }));
            slab.chunks[ci].store(chunk, Ordering::Release);
        }
        // SAFETY: we hold the intern mutex (single writer) and `id` is not
        // yet published, so no reader can be looking at this slot.
        unsafe {
            (*(*chunk).slots.get())[si] = leaked;
        }
        // Publish: release-store makes the slot write (and the chunk
        // pointer store above) visible to any reader that acquires a
        // length covering `id`.
        slab.len.store(id + 1, Ordering::Release);
        g.map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string. Lock-free: one acquire load of the published
    /// length plus an acquire load of the chunk pointer.
    pub fn as_str(self) -> &'static str {
        let slab = slab();
        let n = slab.len.load(Ordering::Acquire);
        assert!(self.0 < n, "symbol {} not interned", self.0);
        let (ci, si) = (
            (self.0 >> CHUNK_BITS) as usize,
            (self.0 as usize) & (CHUNK - 1),
        );
        let chunk = slab.chunks[ci].load(Ordering::Acquire);
        debug_assert!(!chunk.is_null());
        // SAFETY: self.0 < published len, so the slot was fully written
        // before the release store we just acquired; published slots are
        // never written again.
        unsafe { (*(*chunk).slots.get())[si] }
    }

    /// A process-unique fresh symbol with the given prefix, guaranteed not to
    /// collide with any symbol interned from source text (the generated name
    /// contains `#`, which the lexer rejects in identifiers).
    pub fn fresh(prefix: &str) -> Symbol {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        Symbol::intern(&format!("{prefix}#{n}"))
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Symbol::intern("foo");
        let b = Symbol::intern("foo");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "foo");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(Symbol::intern("bar"), Symbol::intern("baz"));
    }

    #[test]
    fn fresh_symbols_are_unique() {
        let a = Symbol::fresh("v");
        let b = Symbol::fresh("v");
        assert_ne!(a, b);
        assert!(a.as_str().starts_with("v#"));
    }

    #[test]
    fn fresh_does_not_collide_with_source_names() {
        // `#` cannot appear in a lexed identifier, so source programs can
        // never mention a fresh symbol by accident.
        let f = Symbol::fresh("X");
        assert!(f.as_str().contains('#'));
    }

    #[test]
    fn concurrent_intern_and_resolve() {
        // Hammer intern (writer lock) and as_str (lock-free read) from
        // several threads; every handed-out symbol must resolve to the
        // string it was interned from.
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..2_000 {
                        let s = format!("cc-{t}-{i}");
                        let sym = Symbol::intern(&s);
                        assert_eq!(sym.as_str(), s);
                        // Re-resolve an older symbol from this thread too.
                        if i > 0 {
                            let prev = Symbol::intern(&format!("cc-{t}-{}", i - 1));
                            assert_eq!(prev.as_str(), format!("cc-{t}-{}", i - 1));
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn crosses_chunk_boundary() {
        // Intern enough distinct strings to spill into a second chunk and
        // make sure resolution still round-trips.
        let syms: Vec<(Symbol, String)> = (0..CHUNK + 16)
            .map(|i| {
                let s = format!("chunk-spill-{i}");
                (Symbol::intern(&s), s)
            })
            .collect();
        for (sym, s) in &syms {
            assert_eq!(sym.as_str(), s.as_str());
        }
    }
}
