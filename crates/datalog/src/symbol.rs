//! Global string interner and the [`Symbol`] handle type.
//!
//! Predicate names, variable names and string constants all go through one
//! process-wide interner so that equality checks and hashing on names are
//! `u32` comparisons. Interned strings are leaked (the set of distinct
//! identifiers in a Datalog workload is small and bounded), which lets
//! [`Symbol::as_str`] hand out `&'static str` without lifetime plumbing.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// An interned string. Cheap to copy, compare and hash.
///
/// Two `Symbol`s are equal iff the strings they were interned from are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s`, returning its canonical handle.
    pub fn intern(s: &str) -> Symbol {
        let mut g = interner().lock().expect("interner poisoned");
        if let Some(&id) = g.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = g.strings.len() as u32;
        g.strings.push(leaked);
        g.map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        let g = interner().lock().expect("interner poisoned");
        g.strings[self.0 as usize]
    }

    /// A process-unique fresh symbol with the given prefix, guaranteed not to
    /// collide with any symbol interned from source text (the generated name
    /// contains `#`, which the lexer rejects in identifiers).
    pub fn fresh(prefix: &str) -> Symbol {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        Symbol::intern(&format!("{prefix}#{n}"))
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Symbol::intern("foo");
        let b = Symbol::intern("foo");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "foo");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(Symbol::intern("bar"), Symbol::intern("baz"));
    }

    #[test]
    fn fresh_symbols_are_unique() {
        let a = Symbol::fresh("v");
        let b = Symbol::fresh("v");
        assert_ne!(a, b);
        assert!(a.as_str().starts_with("v#"));
    }

    #[test]
    fn fresh_does_not_collide_with_source_names() {
        // `#` cannot appear in a lexed identifier, so source programs can
        // never mention a fresh symbol by accident.
        let f = Symbol::fresh("X");
        assert!(f.as_str().contains('#'));
    }
}
