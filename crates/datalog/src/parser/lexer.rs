//! Tokenizer for the Prolog-like surface syntax.

use crate::error::Error;

/// A lexical token with its source position.
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// The token kind/payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Token kinds.
#[derive(Clone, PartialEq, Debug)]
pub enum TokenKind {
    /// Lowercase-initial identifier (predicate or symbolic constant).
    Ident(String),
    /// Uppercase/underscore-initial identifier (variable).
    Var(String),
    /// Integer literal (possibly negative).
    Int(i64),
    /// Quoted string literal (single or double quotes).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:-`
    ColonDash,
    /// `:`
    Colon,
    /// `->`
    Arrow,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `!` (negation)
    Bang,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Var(s) => format!("variable `{s}`"),
            TokenKind::Int(i) => format!("integer `{i}`"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::ColonDash => "`:-`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::Arrow => "`->`".into(),
            TokenKind::Eq => "`=`".into(),
            TokenKind::Ne => "`!=`".into(),
            TokenKind::Bang => "`!`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// Tokenizes `src`. Comments run from `%` or `//` to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>, Error> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;

    macro_rules! push {
        ($kind:expr, $len:expr) => {{
            out.push(Token {
                kind: $kind,
                line,
                col,
            });
            i += $len;
            col += $len;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '%' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push!(TokenKind::LParen, 1),
            ')' => push!(TokenKind::RParen, 1),
            ',' => push!(TokenKind::Comma, 1),
            '.' => push!(TokenKind::Dot, 1),
            ':' if bytes.get(i + 1) == Some(&b'-') => push!(TokenKind::ColonDash, 2),
            ':' => push!(TokenKind::Colon, 1),
            '-' if bytes.get(i + 1) == Some(&b'>') => push!(TokenKind::Arrow, 2),
            '=' => push!(TokenKind::Eq, 1),
            '!' if bytes.get(i + 1) == Some(&b'=') => push!(TokenKind::Ne, 2),
            '!' => push!(TokenKind::Bang, 1),
            '<' if bytes.get(i + 1) == Some(&b'=') => push!(TokenKind::Le, 2),
            '<' => push!(TokenKind::Lt, 1),
            '>' if bytes.get(i + 1) == Some(&b'=') => push!(TokenKind::Ge, 2),
            '>' => push!(TokenKind::Gt, 1),
            '\'' | '"' => {
                let quote = c;
                let start_line = line;
                let start_col = col;
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    match bytes.get(j) {
                        None | Some(b'\n') => {
                            return Err(Error::parse(
                                start_line,
                                start_col,
                                "unterminated string literal",
                            ));
                        }
                        Some(&b) if b as char == quote => break,
                        Some(b'\\') => {
                            match bytes.get(j + 1) {
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                Some(&e) => s.push(e as char),
                                None => {
                                    return Err(Error::parse(
                                        start_line,
                                        start_col,
                                        "unterminated escape",
                                    ));
                                }
                            }
                            j += 2;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            j += 1;
                        }
                    }
                }
                let len = j + 1 - i;
                push!(TokenKind::Str(s), len);
            }
            '-' | '0'..='9' => {
                let neg = c == '-';
                let mut j = i + usize::from(neg);
                if neg && !bytes.get(j).is_some_and(u8::is_ascii_digit) {
                    return Err(Error::parse(line, col, "expected digits after `-`"));
                }
                while bytes.get(j).is_some_and(u8::is_ascii_digit) {
                    j += 1;
                }
                let text = &src[i..j];
                let n: i64 = text.parse().map_err(|_| {
                    Error::parse(line, col, format!("integer out of range: {text}"))
                })?;
                let len = j - i;
                push!(TokenKind::Int(n), len);
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while bytes
                    .get(j)
                    .is_some_and(|&b| (b as char).is_ascii_alphanumeric() || b == b'_')
                {
                    j += 1;
                }
                let text = &src[i..j];
                let kind = if c.is_ascii_uppercase() || c == '_' {
                    TokenKind::Var(text.to_owned())
                } else {
                    TokenKind::Ident(text.to_owned())
                };
                let len = j - i;
                push!(kind, len);
            }
            _ => {
                return Err(Error::parse(
                    line,
                    col,
                    format!("unexpected character `{c}`"),
                ));
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let ks = kinds("p(X, 3) :- q(X), X >= -2.");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("p".into()),
                TokenKind::LParen,
                TokenKind::Var("X".into()),
                TokenKind::Comma,
                TokenKind::Int(3),
                TokenKind::RParen,
                TokenKind::ColonDash,
                TokenKind::Ident("q".into()),
                TokenKind::LParen,
                TokenKind::Var("X".into()),
                TokenKind::RParen,
                TokenKind::Comma,
                TokenKind::Var("X".into()),
                TokenKind::Ge,
                TokenKind::Int(-2),
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_and_comments() {
        let ks = kinds("r(\"hello world\", 'exec') . % comment\n// another\n");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("r".into()),
                TokenKind::LParen,
                TokenKind::Str("hello world".into()),
                TokenKind::Comma,
                TokenKind::Str("exec".into()),
                TokenKind::RParen,
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn arrow_and_colon() {
        assert_eq!(
            kinds("ic: a -> b")[..],
            [
                TokenKind::Ident("ic".into()),
                TokenKind::Colon,
                TokenKind::Ident("a".into()),
                TokenKind::Arrow,
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn positions_and_errors() {
        let err = lex("p(X\n  @)").unwrap_err();
        assert_eq!(err, Error::parse(2, 3, "unexpected character `@`"));
        assert!(lex("'open").is_err());
        assert!(lex("- x").is_err());
    }

    #[test]
    fn underscore_is_variable() {
        assert!(matches!(kinds("_foo")[0], TokenKind::Var(_)));
    }
}
