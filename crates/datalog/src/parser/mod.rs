//! Parser for programs, facts and integrity constraints.
//!
//! Surface syntax (Prolog-like, as in the paper):
//!
//! ```text
//! % rules
//! anc(X, Xa, Y, Ya) :- par(X, Xa, Y, Ya).
//! anc(X, Xa, Y, Ya) :- anc(X, Xa, Z, Za), par(Z, Za, Y, Ya).
//!
//! % ground facts
//! par(ann, 70, bea, 40).
//!
//! % integrity constraints ("ic [name]: body -> head ."; empty head = denial)
//! ic ic1: Ya <= 50, par(Z, Za, Y, Ya), par(Z1, Z1a, Z, Za),
//!         par(Z2, Z2a, Z1, Z1a) -> .
//! ```
//!
//! Variables start with an uppercase letter or `_`; symbolic constants are
//! lowercase identifiers or quoted strings; comparisons use
//! `=, !=, <, <=, >, >=`.

mod lexer;

pub use lexer::{lex, Token, TokenKind};

use crate::atom::Atom;
use crate::constraint::{Constraint, IcHead};
use crate::error::Error;
use crate::literal::{Cmp, CmpOp, Literal};
use crate::program::Program;
use crate::rule::Rule;
use crate::symbol::Symbol;
use crate::term::{Term, Value};

/// The result of parsing a source unit: rules, ground facts and constraints.
#[derive(Clone, Debug, Default)]
pub struct Unit {
    /// Rules with non-empty bodies.
    pub rules: Vec<Rule>,
    /// Ground facts (`p(c1, …, cn).`).
    pub facts: Vec<Atom>,
    /// Integrity constraints.
    pub constraints: Vec<Constraint>,
}

impl Unit {
    /// The rules as a [`Program`] (facts are not included).
    pub fn program(&self) -> Program {
        Program::new(self.rules.clone())
    }
}

/// Parses a mixed source unit (rules, facts, constraints).
pub fn parse_unit(src: &str) -> Result<Unit, Error> {
    Parser::new(src)?.unit()
}

/// Parses a source containing only constraints (plus comments).
pub fn parse_constraints(src: &str) -> Result<Vec<Constraint>, Error> {
    let unit = parse_unit(src)?;
    if !unit.rules.is_empty() || !unit.facts.is_empty() {
        return Err(Error::analysis(
            "expected only constraints in this source".to_owned(),
        ));
    }
    Ok(unit.constraints)
}

/// Parses a single rule.
pub fn parse_rule(src: &str) -> Result<Rule, Error> {
    let unit = parse_unit(src)?;
    match (&unit.rules[..], &unit.facts[..]) {
        ([r], []) => Ok(r.clone()),
        ([], [f]) => Ok(Rule::fact(f.clone())),
        _ => Err(Error::analysis("expected exactly one rule")),
    }
}

/// Parses a single atom (no trailing dot required).
pub fn parse_atom(src: &str) -> Result<Atom, Error> {
    let mut p = Parser::new(src)?;
    let a = p.atom()?;
    p.expect_eof()?;
    Ok(a)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser, Error> {
        Ok(Parser {
            tokens: lex(src)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> Error {
        let t = self.peek();
        Error::parse(t.line, t.col, msg.into())
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), Error> {
        if &self.peek().kind == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err_here(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().kind.describe()
            )))
        }
    }

    fn expect_eof(&mut self) -> Result<(), Error> {
        if self.peek().kind == TokenKind::Eof {
            Ok(())
        } else {
            Err(self.err_here(format!(
                "expected end of input, found {}",
                self.peek().kind.describe()
            )))
        }
    }

    fn unit(&mut self) -> Result<Unit, Error> {
        let mut out = Unit::default();
        while self.peek().kind != TokenKind::Eof {
            if self.at_constraint_start() {
                out.constraints.push(self.constraint()?);
            } else {
                let head = self.atom()?;
                match self.peek().kind {
                    TokenKind::Dot => {
                        self.bump();
                        if head.is_ground() {
                            out.facts.push(head);
                        } else {
                            // Non-ground bodyless clause: keep as a rule so
                            // range-restriction analysis reports it.
                            out.rules.push(Rule::fact(head));
                        }
                    }
                    TokenKind::ColonDash => {
                        self.bump();
                        let body = self.literals()?;
                        self.expect(&TokenKind::Dot)?;
                        out.rules.push(Rule::new(head, body));
                    }
                    _ => {
                        return Err(self.err_here(format!(
                            "expected `.` or `:-`, found {}",
                            self.peek().kind.describe()
                        )));
                    }
                }
            }
        }
        Ok(out)
    }

    fn at_constraint_start(&self) -> bool {
        // `ic` then either `:` or `name :` begins a constraint; `ic(` is an
        // ordinary atom.
        if let TokenKind::Ident(id) = &self.peek().kind {
            if id == "ic" {
                return matches!(self.peek2().kind, TokenKind::Colon | TokenKind::Ident(_));
            }
        }
        false
    }

    fn constraint(&mut self) -> Result<Constraint, Error> {
        self.bump(); // `ic`
        let name = if let TokenKind::Ident(n) = &self.peek().kind {
            let n = n.clone();
            self.bump();
            Some(Symbol::intern(&n))
        } else {
            None
        };
        self.expect(&TokenKind::Colon)?;
        let body = self.literals()?;
        self.expect(&TokenKind::Arrow)?;
        let head = if self.peek().kind == TokenKind::Dot {
            IcHead::None
        } else {
            match self.literal()? {
                Literal::Atom(a) => IcHead::Atom(a),
                Literal::Neg(_) => {
                    return Err(self.err_here("negated subgoals are not allowed in constraints"));
                }
                Literal::Cmp(c) => IcHead::Cmp(c),
            }
        };
        self.expect(&TokenKind::Dot)?;
        let mut atoms = Vec::new();
        let mut cmps = Vec::new();
        for l in body {
            match l {
                Literal::Atom(a) => atoms.push(a),
                Literal::Neg(_) => {
                    return Err(self.err_here("negated subgoals are not allowed in constraints"));
                }
                Literal::Cmp(c) => cmps.push(c),
            }
        }
        if atoms.is_empty() {
            return Err(self.err_here("constraint body needs at least one database atom"));
        }
        let mut ic = Constraint::new(atoms, cmps, head);
        ic.name = name;
        Ok(ic)
    }

    fn literals(&mut self) -> Result<Vec<Literal>, Error> {
        let mut out = vec![self.literal()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            out.push(self.literal()?);
        }
        Ok(out)
    }

    fn literal(&mut self) -> Result<Literal, Error> {
        // `!atom` is a (stratified) negated subgoal.
        if self.peek().kind == TokenKind::Bang {
            self.bump();
            return Ok(Literal::Neg(self.atom()?));
        }
        // An atom begins with `ident (`; anything else that parses as a term
        // must continue as a comparison.
        if matches!(self.peek().kind, TokenKind::Ident(_)) && self.peek2().kind == TokenKind::LParen
        {
            return Ok(Literal::Atom(self.atom()?));
        }
        let lhs = self.term()?;
        let op = self.cmp_op()?;
        let rhs = self.term()?;
        Ok(Literal::Cmp(Cmp::new(lhs, op, rhs)))
    }

    fn cmp_op(&mut self) -> Result<CmpOp, Error> {
        let op = match self.peek().kind {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            _ => {
                return Err(self.err_here(format!(
                    "expected comparison operator, found {}",
                    self.peek().kind.describe()
                )));
            }
        };
        self.bump();
        Ok(op)
    }

    fn atom(&mut self) -> Result<Atom, Error> {
        let name = match &self.peek().kind {
            TokenKind::Ident(n) => n.clone(),
            other => {
                return Err(self.err_here(format!(
                    "expected predicate name, found {}",
                    other.describe()
                )));
            }
        };
        self.bump();
        self.expect(&TokenKind::LParen)?;
        let mut args = vec![self.term()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            args.push(self.term()?);
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Atom::new(name.as_str(), args))
    }

    fn term(&mut self) -> Result<Term, Error> {
        let t = match &self.peek().kind {
            TokenKind::Var(v) => Term::Var(Symbol::intern(v)),
            TokenKind::Ident(c) => Term::Const(Value::str(c)),
            TokenKind::Int(i) => Term::Const(Value::Int(*i)),
            TokenKind::Str(s) => Term::Const(Value::str(s)),
            other => {
                return Err(self.err_here(format!("expected term, found {}", other.describe())));
            }
        };
        self.bump();
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rules_and_facts() {
        let unit = parse_unit(
            "anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- anc(X, Z), par(Z, Y).\n\
             par(ann, bea). % a fact\n",
        )
        .unwrap();
        assert_eq!(unit.rules.len(), 2);
        assert_eq!(unit.facts.len(), 1);
        assert_eq!(
            unit.rules[1].to_string(),
            "anc(X, Y) :- anc(X, Z), par(Z, Y)."
        );
        assert_eq!(unit.facts[0].to_string(), "par(ann, bea)");
    }

    #[test]
    fn parse_constraint_with_head() {
        let ics =
            parse_constraints("ic ic1: works_with(P2, P1), expert(P1, F1) -> expert(P2, F1).")
                .unwrap();
        assert_eq!(ics.len(), 1);
        assert_eq!(ics[0].body_atoms.len(), 2);
        assert!(!ics[0].is_denial());
        assert_eq!(ics[0].name.unwrap().as_str(), "ic1");
    }

    #[test]
    fn parse_denial_with_cmp() {
        let ics = parse_constraints(
            "ic: Ya <= 50, par(Z, Za, Y, Ya), par(Z1, Z1a, Z, Za), par(Z2, Z2a, Z1, Z1a) -> .",
        )
        .unwrap();
        assert!(ics[0].is_denial());
        assert_eq!(ics[0].body_atoms.len(), 3);
        assert_eq!(ics[0].body_cmps.len(), 1);
    }

    #[test]
    fn parse_cmp_head() {
        let ics = parse_constraints("ic: pays(M, G, S, T), M > 10000 -> M < 50000.").unwrap();
        assert!(matches!(ics[0].head, IcHead::Cmp(_)));
    }

    #[test]
    fn parse_string_constants() {
        let r = parse_rule("q(X) :- boss(E, X, R), R = \"executive\".").unwrap();
        assert_eq!(r.body_cmps().count(), 1);
        let r2 = parse_rule("q(X) :- boss(E, X, R), R = executive.").unwrap();
        assert_eq!(
            r.body_cmps().next().unwrap(),
            r2.body_cmps().next().unwrap()
        );
    }

    #[test]
    fn ic_as_predicate_name_still_parses() {
        let unit = parse_unit("ic(X) :- p(X).").unwrap();
        assert_eq!(unit.rules.len(), 1);
        assert!(unit.constraints.is_empty());
    }

    #[test]
    fn roundtrip_through_display() {
        let src = "p(X, Y) :- e(X, Z), Z > 3, p(Z, Y).";
        let r = parse_rule(src).unwrap();
        let r2 = parse_rule(&r.to_string()).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn error_positions() {
        let err = parse_unit("p(X) :- q(X)").unwrap_err();
        assert!(matches!(err, Error::Parse { .. }));
        let err = parse_unit("p(X) q(X).").unwrap_err();
        assert!(err.to_string().contains("expected `.` or `:-`"));
    }

    #[test]
    fn program_fromstr() {
        let p: Program = "t(X) :- e(X). t(X) :- e0(X), t(X).".parse().unwrap();
        assert_eq!(p.len(), 2);
        assert!("ic: a(X) -> .".parse::<Program>().is_err());
    }
}

#[cfg(test)]
mod negation_tests {
    use super::*;

    #[test]
    fn parses_negated_subgoals() {
        let r = parse_rule("open(X, Y) :- e(X, Y), !blocked(X).").unwrap();
        assert_eq!(r.body.len(), 2);
        let neg = r.body[1].as_neg().unwrap();
        assert_eq!(neg.pred.name(), "blocked");
        // Round-trips through Display.
        assert_eq!(r.to_string(), "open(X, Y) :- e(X, Y), !blocked(X).");
        assert_eq!(parse_rule(&r.to_string()).unwrap(), r);
    }

    #[test]
    fn bang_vs_not_equals() {
        let r = parse_rule("p(X, Y) :- e(X, Y), X != Y, !f(X).").unwrap();
        assert_eq!(r.body_cmps().count(), 1);
        assert_eq!(r.body.iter().filter(|l| l.as_neg().is_some()).count(), 1);
    }

    #[test]
    fn negation_rejected_in_constraints() {
        assert!(parse_unit("ic: a(X), !b(X) -> .").is_err());
        assert!(parse_unit("ic: a(X) -> !b(X).").is_err());
    }
}
