//! Unification and one-way matching for the function-free language.
//!
//! With no function symbols, unification needs no occurs check and a most
//! general unifier is a variable-to-term map closed under itself.

use crate::atom::Atom;
use crate::subst::Subst;
use crate::term::Term;

/// Resolves `t` through `s` repeatedly until it is a constant or an unbound
/// variable. Terminates because each step strictly follows a binding and
/// bindings form a forest (we never insert cycles in [`unify_terms`]).
fn walk(s: &Subst, mut t: Term) -> Term {
    while let Term::Var(v) = t {
        match s.get(v) {
            Some(next) if next != t => t = next,
            _ => break,
        }
    }
    t
}

/// Extends `s` to a unifier of `a` and `b`. Returns `false` (leaving `s` in
/// an unspecified but safe state) if they don't unify.
pub fn unify_terms(s: &mut Subst, a: Term, b: Term) -> bool {
    let a = walk(s, a);
    let b = walk(s, b);
    match (a, b) {
        (Term::Const(x), Term::Const(y)) => x == y,
        (Term::Var(v), t) | (t, Term::Var(v)) => {
            if Term::Var(v) == t {
                true
            } else {
                s.insert(v, t);
                true
            }
        }
    }
}

/// Most general unifier of two atoms, if any.
pub fn unify_atoms(a: &Atom, b: &Atom) -> Option<Subst> {
    if a.pred != b.pred || a.arity() != b.arity() {
        return None;
    }
    let mut s = Subst::new();
    for (&x, &y) in a.args.iter().zip(&b.args) {
        if !unify_terms(&mut s, x, y) {
            return None;
        }
    }
    // Close the substitution under itself so `apply` needs no chasing.
    Some(resolve(&s))
}

/// Fully resolves every binding in `s` (paths like `X ↦ Y, Y ↦ 3` become
/// `X ↦ 3, Y ↦ 3`).
pub fn resolve(s: &Subst) -> Subst {
    s.iter().map(|(v, _)| (v, walk(s, Term::Var(v)))).collect()
}

/// One-way matching: extends `s` so that `pattern·s = target`, binding only
/// variables of `pattern`. The target is treated as fixed (its variables are
/// constants for the purpose of the match). Returns `false` on mismatch;
/// `s` may then hold partial bindings.
pub fn match_term(s: &mut Subst, pattern: Term, target: Term) -> bool {
    match pattern {
        Term::Const(c) => target == Term::Const(c),
        Term::Var(v) => match s.get(v) {
            Some(bound) => bound == target,
            None => {
                s.insert(v, target);
                true
            }
        },
    }
}

/// One-way matching of atoms: extends `s` with bindings for `pattern`'s
/// variables so that `pattern·s = target`.
pub fn match_atom(s: &mut Subst, pattern: &Atom, target: &Atom) -> bool {
    if pattern.pred != target.pred || pattern.arity() != target.arity() {
        return false;
    }
    pattern
        .args
        .iter()
        .zip(&target.args)
        .all(|(&p, &t)| match_term(s, p, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(p: &str, args: &[Term]) -> Atom {
        Atom::new(p, args.to_vec())
    }

    #[test]
    fn unify_simple() {
        let s = unify_atoms(
            &a("p", &[Term::var("X"), Term::int(3)]),
            &a("p", &[Term::int(1), Term::var("Y")]),
        )
        .unwrap();
        assert_eq!(s.apply_term(Term::var("X")), Term::int(1));
        assert_eq!(s.apply_term(Term::var("Y")), Term::int(3));
    }

    #[test]
    fn unify_chained_vars_resolve() {
        // p(X, X) with p(Y, 3) must give X=3, Y=3.
        let s = unify_atoms(
            &a("p", &[Term::var("X"), Term::var("X")]),
            &a("p", &[Term::var("Y"), Term::int(3)]),
        )
        .unwrap();
        assert_eq!(s.apply_term(Term::var("X")), Term::int(3));
        assert_eq!(s.apply_term(Term::var("Y")), Term::int(3));
    }

    #[test]
    fn unify_failures() {
        assert!(unify_atoms(&a("p", &[Term::int(1)]), &a("p", &[Term::int(2)])).is_none());
        assert!(unify_atoms(&a("p", &[Term::int(1)]), &a("q", &[Term::int(1)])).is_none());
        // p(X, X) with p(1, 2) must fail.
        assert!(unify_atoms(
            &a("p", &[Term::var("X"), Term::var("X")]),
            &a("p", &[Term::int(1), Term::int(2)])
        )
        .is_none());
    }

    #[test]
    fn matching_is_one_way() {
        let mut s = Subst::new();
        // pattern p(X, X) matches target p(Y, Y) with X ↦ Y …
        assert!(match_atom(
            &mut s,
            &a("p", &[Term::var("X"), Term::var("X")]),
            &a("p", &[Term::var("Y"), Term::var("Y")]),
        ));
        assert_eq!(
            s.get(crate::symbol::Symbol::intern("X")),
            Some(Term::var("Y"))
        );

        // … but target variables are never bound: p(Z) does not match p(1)
        // in the reverse direction.
        let mut s = Subst::new();
        assert!(match_atom(
            &mut s,
            &a("p", &[Term::var("Z")]),
            &a("p", &[Term::int(1)])
        ));
        let mut s2 = Subst::new();
        assert!(!match_atom(
            &mut s2,
            &a("p", &[Term::int(1)]),
            &a("p", &[Term::var("Z")])
        ));
    }

    #[test]
    fn matching_consistency() {
        let mut s = Subst::new();
        // p(X, X) cannot match p(1, 2).
        assert!(!match_atom(
            &mut s,
            &a("p", &[Term::var("X"), Term::var("X")]),
            &a("p", &[Term::int(1), Term::int(2)]),
        ));
    }
}
