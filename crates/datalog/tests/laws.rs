//! Algebraic laws of substitutions and unification, tested over randomized
//! inputs.
//!
//! Seeded-loop rewrite of a former `proptest` suite (offline-build policy:
//! no registry deps for `cargo test -q`). `semrec-datalog` sits below
//! `semrec-gen` in the crate graph, so this file carries its own tiny
//! SplitMix64 instead of using `semrec_gen::rng`.

use semrec_datalog::atom::Atom;
use semrec_datalog::subst::Subst;
use semrec_datalog::symbol::Symbol;
use semrec_datalog::term::{Term, Value};
use semrec_datalog::unify::{match_atom, unify_atoms};

/// Minimal SplitMix64 — same algorithm as `semrec_gen::rng::Rng`.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
    }
}

fn random_term(rng: &mut Rng) -> Term {
    if rng.below(2) == 0 {
        Term::var(&format!("V{}", rng.below(6)))
    } else {
        Term::int(rng.below(5) as i64)
    }
}

fn random_atom(rng: &mut Rng, pred: &str) -> Atom {
    let arity = 1 + rng.below(3) as usize;
    Atom::new(pred, (0..arity).map(|_| random_term(rng)).collect())
}

fn random_subst(rng: &mut Rng) -> Subst {
    let n = rng.below(5) as usize;
    Subst::from_pairs((0..n).map(|_| {
        let v = Symbol::intern(&format!("V{}", rng.below(6)));
        (v, random_term(rng))
    }))
}

/// compose agrees with sequential application pointwise.
#[test]
fn compose_is_sequential_application() {
    for case in 0u64..128 {
        let rng = &mut Rng(0x10 + case);
        let s1 = random_subst(rng);
        let s2 = random_subst(rng);
        let t = random_term(rng);
        let c = s1.compose(&s2);
        assert_eq!(
            c.apply_term(t),
            s2.apply_term(s1.apply_term(t)),
            "case {case}"
        );
    }
}

/// The empty substitution is a left and right identity of compose.
#[test]
fn identity_laws() {
    for case in 0u64..128 {
        let rng = &mut Rng(0x20 + case);
        let s = random_subst(rng);
        let t = random_term(rng);
        let id = Subst::new();
        assert_eq!(id.compose(&s).apply_term(t), s.apply_term(t), "case {case}");
        assert_eq!(s.compose(&id).apply_term(t), s.apply_term(t), "case {case}");
    }
}

/// A successful unifier really unifies (mgu soundness).
#[test]
fn unifier_unifies() {
    for case in 0u64..128 {
        let rng = &mut Rng(0x30 + case);
        let a = random_atom(rng, "p");
        let b = random_atom(rng, "p");
        if a.arity() == b.arity() {
            if let Some(mgu) = unify_atoms(&a, &b) {
                assert_eq!(mgu.apply_atom(&a), mgu.apply_atom(&b), "case {case}");
            }
        }
    }
}

/// Unification is symmetric in success.
#[test]
fn unification_symmetry() {
    for case in 0u64..128 {
        let rng = &mut Rng(0x40 + case);
        let a = random_atom(rng, "p");
        let b = random_atom(rng, "p");
        assert_eq!(
            unify_atoms(&a, &b).is_some(),
            unify_atoms(&b, &a).is_some(),
            "case {case}"
        );
    }
}

/// Matching is sound: pattern·θ = target.
#[test]
fn matching_soundness() {
    for case in 0u64..128 {
        let rng = &mut Rng(0x50 + case);
        let pattern = random_atom(rng, "p");
        let target = random_atom(rng, "p");
        let mut theta = Subst::new();
        if match_atom(&mut theta, &pattern, &target) {
            assert_eq!(theta.apply_atom(&pattern), target, "case {case}");
        }
    }
}

/// Matching implies unifiability (one-way is stricter than two-way)
/// when pattern and target share no variables.
#[test]
fn matching_implies_unification_on_disjoint_vars() {
    for case in 0u64..128 {
        let rng = &mut Rng(0x60 + case);
        let pattern = random_atom(rng, "p");
        let arity = 1 + rng.below(3) as usize;
        let target = Atom::new(
            "p",
            (0..arity).map(|_| Term::int(rng.below(5) as i64)).collect(),
        );
        if pattern.arity() == target.arity() {
            let mut theta = Subst::new();
            if match_atom(&mut theta, &pattern, &target) {
                assert!(unify_atoms(&pattern, &target).is_some(), "case {case}");
            }
        }
    }
}

/// Value ordering is total and antisymmetric; ints sort before strings.
#[test]
fn value_order_total() {
    for case in 0u64..128 {
        let rng = &mut Rng(0x70 + case);
        let x = Value::Int(rng.below(100) as i64);
        let y = Value::Int(rng.below(100) as i64);
        let s: String = (0..1 + rng.below(4))
            .map(|_| (b'a' + rng.below(26) as u8) as char)
            .collect();
        let z = Value::str(&s);
        assert_eq!(x.cmp(&y).reverse(), y.cmp(&x), "case {case}");
        assert!(x < z, "ints sort before strings (case {case})");
    }
}
