//! Algebraic laws of substitutions and unification, property-tested.

use proptest::prelude::*;
use semrec_datalog::atom::Atom;
use semrec_datalog::subst::Subst;
use semrec_datalog::symbol::Symbol;
use semrec_datalog::term::{Term, Value};
use semrec_datalog::unify::{match_atom, unify_atoms};

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0u8..6).prop_map(|i| Term::var(&format!("V{i}"))),
        (0i64..5).prop_map(Term::int),
    ]
}

fn atom_strategy(pred: &'static str) -> impl Strategy<Value = Atom> {
    proptest::collection::vec(term_strategy(), 1..4)
        .prop_map(move |args| Atom::new(pred, args))
}

fn subst_strategy() -> impl Strategy<Value = Subst> {
    proptest::collection::btree_map(0u8..6, term_strategy(), 0..5).prop_map(|m| {
        Subst::from_pairs(
            m.into_iter()
                .map(|(i, t)| (Symbol::intern(&format!("V{i}")), t)),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// compose agrees with sequential application pointwise.
    #[test]
    fn compose_is_sequential_application(
        s1 in subst_strategy(),
        s2 in subst_strategy(),
        t in term_strategy(),
    ) {
        let c = s1.compose(&s2);
        prop_assert_eq!(c.apply_term(t), s2.apply_term(s1.apply_term(t)));
    }

    /// The empty substitution is a left and right identity of compose.
    #[test]
    fn identity_laws(s in subst_strategy(), t in term_strategy()) {
        let id = Subst::new();
        prop_assert_eq!(id.compose(&s).apply_term(t), s.apply_term(t));
        prop_assert_eq!(s.compose(&id).apply_term(t), s.apply_term(t));
    }

    /// A successful unifier really unifies (mgu soundness).
    #[test]
    fn unifier_unifies(a in atom_strategy("p"), b in atom_strategy("p")) {
        if a.arity() == b.arity() {
            if let Some(mgu) = unify_atoms(&a, &b) {
                prop_assert_eq!(mgu.apply_atom(&a), mgu.apply_atom(&b));
            }
        }
    }

    /// Unification is symmetric in success.
    #[test]
    fn unification_symmetry(a in atom_strategy("p"), b in atom_strategy("p")) {
        prop_assert_eq!(unify_atoms(&a, &b).is_some(), unify_atoms(&b, &a).is_some());
    }

    /// Matching is sound: pattern·θ = target.
    #[test]
    fn matching_soundness(pattern in atom_strategy("p"), target in atom_strategy("p")) {
        let mut theta = Subst::new();
        if match_atom(&mut theta, &pattern, &target) {
            prop_assert_eq!(theta.apply_atom(&pattern), target);
        }
    }

    /// Matching implies unifiability (one-way is stricter than two-way)
    /// when pattern and target share no variables.
    #[test]
    fn matching_implies_unification_on_disjoint_vars(
        pattern in atom_strategy("p"),
        target_consts in proptest::collection::vec(0i64..5, 1..4),
    ) {
        let target = Atom::new("p", target_consts.into_iter().map(Term::int).collect());
        if pattern.arity() == target.arity() {
            let mut theta = Subst::new();
            if match_atom(&mut theta, &pattern, &target) {
                prop_assert!(unify_atoms(&pattern, &target).is_some());
            }
        }
    }

    /// Value ordering is total and antisymmetric.
    #[test]
    fn value_order_total(a in 0i64..100, b in 0i64..100, s in "[a-z]{1,4}") {
        let x = Value::Int(a);
        let y = Value::Int(b);
        let z = Value::str(&s);
        prop_assert_eq!(x.cmp(&y).reverse(), y.cmp(&x));
        prop_assert!(x < z, "ints sort before strings");
    }
}
