//! # semrec-bench
//!
//! The experiment suite (E1–E9) and table rendering for reproducing the
//! paper's claims. Run the printable harness with:
//!
//! ```sh
//! cargo run -p semrec-bench --release --bin harness -- all
//! ```
//!
//! Criterion micro-benchmarks live in `benches/` and time the same
//! closures.

#![warn(missing_docs)]

pub mod experiments;
pub mod table;
