//! # semrec-bench
//!
//! The experiment suite (E1–E9) and table rendering for reproducing the
//! paper's claims. Run the printable harness with:
//!
//! ```sh
//! cargo run -p semrec-bench --release --bin harness -- all
//! ```
//!
//! The fixpoint throughput benchmark (serial vs parallel engine timings,
//! `BENCH_fixpoint.json`) runs via `harness bench`; std-only
//! micro-benchmarks live in `benches/` behind the off-by-default
//! `criterion` feature.

#![warn(missing_docs)]

pub mod baseline;
pub mod experiments;
pub mod fixpoint;
pub mod serve;
pub mod table;
