//! Baseline diffing for `harness bench --baseline <file>`: parses a prior
//! `BENCH_fixpoint.json` and prints per-workload speedup ratios against a
//! fresh run, starting the bench trajectory across PRs.
//!
//! The JSON reader is hand-rolled (offline-build policy: no serde). It is
//! a small recursive-descent parser over the generic JSON grammar, so it
//! tolerates schema growth — unknown keys are carried in the tree and
//! ignored by the extractor.

use crate::fixpoint::WorkloadResult;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64, which covers every value we emit).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.src.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, val: Json) -> Result<Json, String> {
        if self.src[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(val)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_obj(),
            Some(b'[') => self.parse_arr(),
            Some(b'"') => self.parse_string().map(Json::Str),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_num(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn parse_obj(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_arr(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .src
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u"))?;
                            self.pos += 4;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences pass through).
                    let rest = std::str::from_utf8(&self.src[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_num(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

/// Parses a JSON document.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

/// Checks a prior `BENCH_fixpoint.json` against the harness's current
/// [`crate::fixpoint::SCHEMA_VERSION`]. A missing or older
/// `schema_version` means the checked-in artifact predates a schema
/// change the CI gates read — the fix is regenerating it with
/// `harness bench --json`, not loosening the gate.
pub fn check_schema_version(src: &str) -> Result<String, String> {
    let current = crate::fixpoint::SCHEMA_VERSION;
    let doc = parse_json(src)?;
    match doc.get("schema_version").and_then(Json::as_num) {
        Some(v) if v == current as f64 => Ok(format!("baseline schema v{current} is current")),
        Some(v) => Err(format!(
            "baseline schema v{v} is stale (harness emits v{current}); regenerate with \
             `harness bench --json`"
        )),
        None => Err(format!(
            "baseline has no `schema_version` (harness emits v{current}); regenerate with \
             `harness bench --json`"
        )),
    }
}

/// One workload row recovered from a prior `BENCH_fixpoint.json`.
#[derive(Clone, Debug)]
pub struct BaselineWorkload {
    /// Workload name.
    pub name: String,
    /// Generator parameter label (joins with `name` to key the diff).
    pub params: String,
    /// `(threads, millis)` pairs.
    pub timings: Vec<(usize, f64)>,
    /// `(threads, rows_per_sec)` pairs (NaN when the baseline predates
    /// the field — the throughput gate skips those).
    pub rows_per_sec: Vec<(usize, f64)>,
}

/// Extracts the workload timings from a parsed `BENCH_fixpoint.json`.
pub fn parse_baseline(src: &str) -> Result<Vec<BaselineWorkload>, String> {
    let doc = parse_json(src)?;
    let workloads = doc
        .get("workloads")
        .and_then(Json::as_arr)
        .ok_or("baseline has no `workloads` array")?;
    let mut out = Vec::new();
    for w in workloads {
        let name = w
            .get("name")
            .and_then(Json::as_str)
            .ok_or("workload missing `name`")?
            .to_owned();
        let params = w
            .get("params")
            .and_then(Json::as_str)
            .ok_or("workload missing `params`")?
            .to_owned();
        let mut timings = Vec::new();
        let mut rows_per_sec = Vec::new();
        for t in w.get("timings").and_then(Json::as_arr).unwrap_or(&[]) {
            let threads = t.get("threads").and_then(Json::as_num).unwrap_or(0.0) as usize;
            let millis = t.get("millis").and_then(Json::as_num).unwrap_or(f64::NAN);
            timings.push((threads, millis));
            let rps = t
                .get("rows_per_sec")
                .and_then(Json::as_num)
                .unwrap_or(f64::NAN);
            rows_per_sec.push((threads, rps));
        }
        out.push(BaselineWorkload {
            name,
            params,
            timings,
            rows_per_sec,
        });
    }
    Ok(out)
}

/// Renders a per-workload speedup table: `baseline millis / fresh millis`
/// at each thread count (> 1.00x means the fresh run is faster).
pub fn diff_table(fresh: &[WorkloadResult], baseline: &[BaselineWorkload]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:<42} {:>3} {:>10} {:>10} {:>8}",
        "workload", "params", "t", "base ms", "fresh ms", "speedup"
    );
    for w in fresh {
        let base = baseline
            .iter()
            .find(|b| b.name == w.name && b.params == w.params);
        let Some(base) = base else {
            let _ = writeln!(s, "{:<12} {:<42}   (not in baseline)", w.name, w.params);
            continue;
        };
        for t in &w.timings {
            let Some(&(_, base_ms)) = base.timings.iter().find(|(n, _)| *n == t.threads) else {
                continue;
            };
            let _ = writeln!(
                s,
                "{:<12} {:<42} {:>3} {:>10.2} {:>10.2} {:>7.2}x",
                w.name,
                w.params,
                t.threads,
                base_ms,
                t.millis,
                base_ms / t.millis.max(1e-9),
            );
        }
    }
    for b in baseline {
        if !fresh
            .iter()
            .any(|w| w.name == b.name && w.params == b.params)
        {
            let _ = writeln!(
                s,
                "{:<12} {:<42}   (baseline only; not re-run)",
                b.name, b.params
            );
        }
    }
    s
}

/// The `--assert-throughput <pct>` gate: on every fresh workload whose
/// baseline records a finite single-thread `rows_per_sec`, the fresh
/// single-thread throughput must not fall more than `tolerance_pct`
/// percent below the baseline's. Returns a summary of the checked
/// workloads, or a report of the violations. Checking zero workloads is
/// itself an error — a baseline without throughput fields would
/// otherwise silently disarm the gate.
///
/// Workloads below [`crate::fixpoint::SCALING_MIN_IDB_ROWS`] IDB rows
/// are skipped, mirroring the scaling gate: their sub-millisecond runs
/// are scheduling-noise-dominated and swing 2x between passes, so a
/// percentage floor on them measures the machine, not the engine.
pub fn check_throughput(
    fresh: &[WorkloadResult],
    baseline: &[BaselineWorkload],
    tolerance_pct: f64,
) -> Result<String, String> {
    let mut checked = 0usize;
    let mut violations = String::new();
    for w in fresh {
        if w.rows_idb < crate::fixpoint::SCALING_MIN_IDB_ROWS {
            continue;
        }
        let Some(base) = baseline
            .iter()
            .find(|b| b.name == w.name && b.params == w.params)
        else {
            continue;
        };
        let Some(&(_, base_rps)) = base.rows_per_sec.iter().find(|(n, _)| *n == 1) else {
            continue;
        };
        if !base_rps.is_finite() || base_rps <= 0.0 {
            continue;
        }
        let Some(fresh_rps) = w
            .timings
            .iter()
            .find(|t| t.threads == 1)
            .map(|t| t.rows_per_sec)
        else {
            continue;
        };
        checked += 1;
        let floor = base_rps * (1.0 - tolerance_pct / 100.0);
        if fresh_rps < floor {
            let _ = writeln!(
                violations,
                "  {} {}: t1 {:.0} rows/s < floor {:.0} (baseline {:.0} - {tolerance_pct}%)",
                w.name, w.params, fresh_rps, floor, base_rps,
            );
        }
    }
    if checked == 0 {
        return Err(
            "throughput gate FAILED: no workload overlapped the baseline with a finite \
             single-thread rows_per_sec"
                .to_owned(),
        );
    }
    if violations.is_empty() {
        Ok(format!(
            "throughput gate: {checked} workload(s) within {tolerance_pct}% of baseline \
             single-thread rows/sec"
        ))
    } else {
        Err(format!(
            "throughput gate FAILED (t1 rows/sec more than {tolerance_pct}% below baseline):\n\
             {violations}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixpoint::Timing;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc =
            parse_json(r#"{"a": [1, -2.5, 3e2], "b": "x\ny A", "c": null, "d": true}"#).unwrap();
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(300.0)
        );
        assert_eq!(doc.get("b").unwrap().as_str(), Some("x\ny A"));
        assert_eq!(doc.get("c"), Some(&Json::Null));
        assert_eq!(doc.get("d"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json(r#"{"unterminated": "yes"#).is_err());
    }

    #[test]
    fn extracts_workload_timings_from_bench_schema() {
        let src = r#"{
          "benchmark": "fixpoint",
          "future_key": {"ignored": [1, 2]},
          "workloads": [
            {"name": "fanout", "params": "nodes=10", "rows_idb": 5,
             "timings": [{"threads": 1, "millis": 2.5, "busy_fraction": 0.9},
                         {"threads": 4, "millis": 1.0}]}
          ]
        }"#;
        let ws = parse_baseline(src).unwrap();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].name, "fanout");
        assert_eq!(ws[0].timings, vec![(1, 2.5), (4, 1.0)]);
        // Pre-throughput baselines parse with NaN rows/sec markers.
        assert!(ws[0].rows_per_sec.iter().all(|(_, r)| r.is_nan()));
    }

    #[test]
    fn extracts_rows_per_sec_when_present() {
        let src = r#"{"workloads": [
            {"name": "fanout", "params": "p",
             "timings": [{"threads": 1, "millis": 2.0, "rows_per_sec": 5000.0}]}
        ]}"#;
        let ws = parse_baseline(src).unwrap();
        assert_eq!(ws[0].rows_per_sec, vec![(1, 5000.0)]);
    }

    #[test]
    fn throughput_gate_flags_regressions_and_passes_parity() {
        let mk_fresh = |rps: f64| WorkloadResult {
            name: "w".into(),
            params: "p".into(),
            rows_edb: 0,
            rows_idb: crate::fixpoint::SCALING_MIN_IDB_ROWS,
            rounds: 1,
            timings: vec![Timing {
                threads: 1,
                millis: 1.0,
                busy_fraction: 1.0,
                rows_per_sec: rps,
            }],
        };
        let base = BaselineWorkload {
            name: "w".into(),
            params: "p".into(),
            timings: vec![(1, 1.0)],
            rows_per_sec: vec![(1, 100_000.0)],
        };
        // Within tolerance and genuinely faster both pass.
        assert!(check_throughput(&[mk_fresh(95_000.0)], std::slice::from_ref(&base), 10.0).is_ok());
        assert!(
            check_throughput(&[mk_fresh(250_000.0)], std::slice::from_ref(&base), 10.0).is_ok()
        );
        // A regression beyond the tolerance fails with a report.
        let err =
            check_throughput(&[mk_fresh(80_000.0)], std::slice::from_ref(&base), 10.0).unwrap_err();
        assert!(err.contains("FAILED"), "{err}");
        assert!(err.contains("80000"), "{err}");
        // Sub-floor micro workloads are exempt (noise-dominated, same
        // filter as the scaling gate) while gated ones still check.
        let micro = WorkloadResult {
            rows_idb: crate::fixpoint::SCALING_MIN_IDB_ROWS - 1,
            ..mk_fresh(10_000.0)
        };
        assert!(check_throughput(
            &[micro, mk_fresh(95_000.0)],
            std::slice::from_ref(&base),
            10.0
        )
        .is_ok());
        // A baseline without throughput fields cannot silently disarm
        // the gate: checking zero workloads is an error.
        let old = BaselineWorkload {
            rows_per_sec: vec![(1, f64::NAN)],
            ..base
        };
        assert!(check_throughput(&[mk_fresh(80_000.0)], &[old], 10.0).is_err());
    }

    #[test]
    fn parses_the_repo_checked_in_baseline() {
        // The real artifact must stay parseable by this reader.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fixpoint.json");
        let src = std::fs::read_to_string(path).expect("BENCH_fixpoint.json exists");
        let ws = parse_baseline(&src).expect("checked-in baseline parses");
        assert!(ws.iter().any(|w| w.name == "fanout"));
        assert!(ws.iter().all(|w| !w.timings.is_empty()));
    }
}
