//! Minimal aligned-table rendering for the experiment harness.

use std::fmt;

/// A titled table of string cells.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (experiment id + description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Appends a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders as a GitHub-flavoured markdown table (used to fill
    /// EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        for n in &self.notes {
            out.push_str(&format!("\n> {n}\n"));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "\n=== {} ===", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {c:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        writeln!(
            f,
            " {}",
            "-".repeat(widths.iter().sum::<usize>() + widths.len() - 1)
        )?;
        for r in &self.rows {
            line(f, r)?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// Formats a `Duration` compactly.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}ms", d.as_secs_f64() * 1e3)
}

/// Formats a ratio.
pub fn ratio(a: u64, b: u64) -> String {
    if b == 0 {
        "∞".into()
    } else {
        format!("{:.2}x", a as f64 / b as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_text_and_markdown() {
        let mut t = Table::new("E0 — demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("a note");
        let s = t.to_string();
        assert!(s.contains("E0 — demo"));
        assert!(s.contains("note: a note"));
        let md = t.to_markdown();
        assert!(md.contains("| a | bbbb |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ratio(4, 2), "2.00x");
        assert_eq!(ratio(1, 0), "∞");
    }
}
