//! Experiment harness: prints the E1–E9 tables (text or markdown) and
//! runs the engine fixpoint benchmark.
//!
//! ```sh
//! cargo run -p semrec-bench --release --bin harness -- all
//! cargo run -p semrec-bench --release --bin harness -- e1 e4 --quick
//! cargo run -p semrec-bench --release --bin harness -- all --markdown
//! cargo run -p semrec-bench --release --bin harness -- bench --json
//! ```
//!
//! `bench` times the semi-naive fixpoint on the gen workloads at 1/2/4
//! worker threads; with `--json` it also writes `BENCH_fixpoint.json` at
//! the repo root (`--quick` shrinks sizes for the CI gate).

use semrec_bench::experiments::{run, Scale, ALL};
use semrec_bench::fixpoint::{run_fixpoint_bench, to_json, to_table};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let markdown = args.iter().any(|a| a == "--markdown");
    let json = args.iter().any(|a| a == "--json");
    let mut ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    if ids.contains(&"bench") {
        let results = run_fixpoint_bench(quick);
        print!("{}", to_table(&results));
        if json {
            let out = Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../../BENCH_fixpoint.json");
            std::fs::write(&out, to_json(&results)).expect("write BENCH_fixpoint.json");
            println!("wrote {}", out.display());
        }
        return;
    }

    if ids.is_empty() || ids.contains(&"all") {
        ids = ALL.to_vec();
    }
    let scale = Scale { quick };
    for id in ids {
        match run(id, scale) {
            Some(tables) => {
                for t in tables {
                    if markdown {
                        println!("{}", t.to_markdown());
                    } else {
                        println!("{t}");
                    }
                }
            }
            None => eprintln!(
                "unknown experiment `{id}` (known: bench, {})",
                ALL.join(", ")
            ),
        }
    }
}
