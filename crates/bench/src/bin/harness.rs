//! Experiment harness: prints the E1–E9 tables (text or markdown) and
//! runs the engine fixpoint benchmark.
//!
//! ```sh
//! cargo run -p semrec-bench --release --bin harness -- all
//! cargo run -p semrec-bench --release --bin harness -- e1 e4 --quick
//! cargo run -p semrec-bench --release --bin harness -- all --markdown
//! cargo run -p semrec-bench --release --bin harness -- bench --json
//! cargo run -p semrec-bench --release --bin harness -- bench --baseline BENCH_fixpoint.json
//! cargo run -p semrec-bench --release --bin harness -- bench --quick --assert-scaling
//! cargo run -p semrec-bench --release --bin harness -- serve-bench --json
//! cargo run -p semrec-bench --release --bin harness -- serve-bench --quick --baseline BENCH_serve.json
//! ```
//!
//! `bench` times the semi-naive fixpoint on the gen workloads at 1/2/4
//! worker threads plus the end-to-end semantic (optimizer) speedup and
//! the governance overhead (budget checks on vs off, E1 fanout); with
//! `--json` it also writes `BENCH_fixpoint.json` at the repo root
//! (`--quick` shrinks sizes for the CI gate). `--baseline <file>` diffs
//! the fresh run against a prior JSON and prints per-workload speedups.
//! `--assert-scaling` exits nonzero if 4-thread time exceeds 1-thread
//! time by more than 10% on any workload with `rows_idb >= 50_000`.
//! `--assert-throughput <pct>` (requires `--baseline`) exits nonzero if
//! any workload's single-thread rows/sec falls more than `<pct>` percent
//! below the baseline's. `--assert-kernel-coverage <pct>` exits nonzero
//! if any kernel-bench workload routes fewer than `<pct>` percent of its
//! plan executions through the batch kernels. `--assert-routing` exits
//! nonzero if the cost planner's chosen route runs slower than the fixed
//! ladder (beyond noise), mispredicts cardinality by more than 10x, or
//! spends over 2% of evaluation time planning.

use semrec_bench::baseline::{check_schema_version, check_throughput, diff_table, parse_baseline};
use semrec_bench::experiments::{run, Scale, ALL};
use semrec_bench::fixpoint::{
    check_kernel_coverage, check_no_regrow, check_routing, check_scaling, dict_table,
    governance_table, incremental_table, kernel_table, routing_table, run_dict_bench,
    run_fixpoint_bench_gated, run_governance_bench, run_incremental_bench, run_kernel_bench,
    run_routing_bench, run_semantic_bench, semantic_table, to_json_full, to_json_with_dict,
    to_json_with_incremental, to_json_with_kernels, to_json_with_routing, to_table,
};
use semrec_bench::serve::{
    check_serve_baseline, check_serve_read, run_serve_bench, serve_table, serve_to_json,
};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path: Option<String> = None;
    let mut assert_throughput: Option<f64> = None;
    let mut assert_kernel_coverage: Option<f64> = None;
    let mut assert_no_regrow: Option<u64> = None;
    let mut args: Vec<String> = Vec::new();
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        if a == "--baseline" {
            match it.next() {
                Some(p) => baseline_path = Some(p),
                None => {
                    eprintln!("--baseline requires a file argument");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--assert-throughput" {
            match it.next().and_then(|p| p.parse::<f64>().ok()) {
                Some(pct) if pct >= 0.0 => assert_throughput = Some(pct),
                _ => {
                    eprintln!("--assert-throughput requires a tolerance percentage");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--assert-no-regrow" {
            match it.next().and_then(|p| p.parse::<u64>().ok()) {
                Some(max) => assert_no_regrow = Some(max),
                None => {
                    eprintln!("--assert-no-regrow requires a max-regrow count");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--assert-kernel-coverage" {
            match it.next().and_then(|p| p.parse::<f64>().ok()) {
                Some(pct) if (0.0..=100.0).contains(&pct) => assert_kernel_coverage = Some(pct),
                _ => {
                    eprintln!("--assert-kernel-coverage requires a percentage in 0..=100");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            args.push(a);
        }
    }
    let quick = args.iter().any(|a| a == "--quick");
    let markdown = args.iter().any(|a| a == "--markdown");
    let json = args.iter().any(|a| a == "--json");
    let assert_scaling = args.iter().any(|a| a == "--assert-scaling");
    let assert_routing = args.iter().any(|a| a == "--assert-routing");
    let mut ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    if ids.contains(&"dict") {
        print!("{}", dict_table(&run_dict_bench(quick)));
        return ExitCode::SUCCESS;
    }

    if ids.contains(&"serve-bench") {
        // With --baseline, validate the checked-in artifact's schema
        // before the timing run — a stale BENCH_serve.json fails fast.
        if let Some(path) = &baseline_path {
            match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
                Ok(src) => match check_serve_baseline(&src) {
                    Ok(summary) => println!("{summary}"),
                    Err(e) => {
                        eprintln!("baseline {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                Err(e) => {
                    eprintln!("cannot read baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let result = run_serve_bench(quick);
        print!("{}", serve_table(&result));
        if args.iter().any(|a| a == "--assert-serve-read") {
            match check_serve_read(&result) {
                Ok(summary) => println!("{summary}"),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if json {
            let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
            std::fs::write(&out, serve_to_json(&result)).expect("write BENCH_serve.json");
            println!("wrote {}", out.display());
        }
        return ExitCode::SUCCESS;
    }

    if ids.contains(&"bench") {
        // Read the baseline up front: --json may overwrite the very file
        // (the usual flow diffs a fresh run against the checked-in one).
        let baseline = match &baseline_path {
            Some(path) => match std::fs::read_to_string(path) {
                Ok(src) => {
                    // A stale schema fails before any timing runs: the
                    // gates below read fields the old artifact lacks.
                    match check_schema_version(&src) {
                        Ok(summary) => println!("{summary}"),
                        Err(e) => {
                            eprintln!("baseline {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                    match parse_baseline(&src) {
                        Ok(base) => Some(base),
                        Err(e) => {
                            eprintln!("cannot parse baseline {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                Err(e) => {
                    eprintln!("cannot read baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        // --assert-scaling needs a workload above the gate's IDB floor
        // even at quick sizes.
        let results = run_fixpoint_bench_gated(quick, !quick || assert_scaling);
        print!("{}", to_table(&results));
        let semantic = run_semantic_bench(quick);
        print!("{}", semantic_table(&semantic));
        let governance = run_governance_bench(quick);
        print!("{}", governance_table(&governance));
        let incremental = run_incremental_bench(quick);
        print!("{}", incremental_table(&incremental));
        let routing = run_routing_bench(quick);
        print!("{}", routing_table(&routing));
        let kernels = run_kernel_bench(quick);
        print!("{}", kernel_table(&kernels));
        let dict = run_dict_bench(quick);
        print!("{}", dict_table(&dict));
        if json {
            let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fixpoint.json");
            let doc = to_json_with_dict(
                to_json_with_kernels(
                    to_json_with_routing(
                        to_json_with_incremental(
                            to_json_full(&results, &semantic, &governance),
                            &incremental,
                        ),
                        &routing,
                    ),
                    &kernels,
                ),
                &dict,
            );
            std::fs::write(&out, doc).expect("write BENCH_fixpoint.json");
            println!("wrote {}", out.display());
        }
        if let (Some(base), Some(path)) = (&baseline, &baseline_path) {
            println!("\nspeedup vs baseline {path} (base ms / fresh ms):");
            print!("{}", diff_table(&results, base));
        }
        if assert_scaling {
            match check_scaling(&results) {
                Ok(summary) => println!("{summary}"),
                Err(report) => {
                    eprintln!("{report}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if assert_routing {
            match check_routing(&routing) {
                Ok(summary) => println!("{summary}"),
                Err(report) => {
                    eprintln!("{report}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Some(pct) = assert_throughput {
            let Some(base) = &baseline else {
                eprintln!("--assert-throughput requires --baseline <file>");
                return ExitCode::FAILURE;
            };
            match check_throughput(&results, base, pct) {
                Ok(summary) => println!("{summary}"),
                Err(report) => {
                    eprintln!("{report}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Some(max) = assert_no_regrow {
            match check_no_regrow(&kernels, max) {
                Ok(summary) => println!("{summary}"),
                Err(report) => {
                    eprintln!("{report}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Some(pct) = assert_kernel_coverage {
            match check_kernel_coverage(&kernels, pct) {
                Ok(summary) => println!("{summary}"),
                Err(report) => {
                    eprintln!("{report}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    if ids.is_empty() || ids.contains(&"all") {
        ids = ALL.to_vec();
    }
    let scale = Scale { quick };
    for id in ids {
        match run(id, scale) {
            Some(tables) => {
                for t in tables {
                    if markdown {
                        println!("{}", t.to_markdown());
                    } else {
                        println!("{t}");
                    }
                }
            }
            None => eprintln!(
                "unknown experiment `{id}` (known: bench, serve-bench, {})",
                ALL.join(", ")
            ),
        }
    }
    ExitCode::SUCCESS
}
