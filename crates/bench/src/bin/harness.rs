//! Experiment harness: prints the E1–E9 tables (text or markdown).
//!
//! ```sh
//! cargo run -p semrec-bench --release --bin harness -- all
//! cargo run -p semrec-bench --release --bin harness -- e1 e4 --quick
//! cargo run -p semrec-bench --release --bin harness -- all --markdown
//! ```

use semrec_bench::experiments::{run, Scale, ALL};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let markdown = args.iter().any(|a| a == "--markdown");
    let mut ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if ids.is_empty() || ids.contains(&"all") {
        ids = ALL.to_vec();
    }
    let scale = Scale { quick };
    for id in ids {
        match run(id, scale) {
            Some(tables) => {
                for t in tables {
                    if markdown {
                        println!("{}", t.to_markdown());
                    } else {
                        println!("{t}");
                    }
                }
            }
            None => eprintln!("unknown experiment `{id}` (known: {})", ALL.join(", ")),
        }
    }
}
