//! The experiment suite (E1–E9) reproducing every claimed effect of the
//! paper. See DESIGN.md §6 for the experiment index and EXPERIMENTS.md for
//! recorded results. Each experiment returns printable tables; the
//! `harness` binary drives them and Criterion benches time the hot
//! closures.

use crate::table::{ms, ratio, Table};
use semrec_core::baseline::evaluate_with_runtime_semantics;
use semrec_core::detect::{detect, DetectionMethod};
use semrec_core::isolate::isolate;
use semrec_core::optimizer::{Optimizer, OptimizerConfig, Plan};
use semrec_core::sequence::unfold;
use semrec_datalog::analysis::{classify_linear_pred, rectify};
use semrec_datalog::parser::{parse_atom, parse_unit};
use semrec_datalog::program::Program;
use semrec_datalog::term::{Term, Value};
use semrec_datalog::Pred;
use semrec_engine::eval::EvalResult;
use semrec_engine::magic::evaluate_query;
use semrec_engine::{evaluate, Database, Strategy};
use semrec_gen::{fanout, genealogy, org, parse_scenario, university, Scenario};
use std::time::{Duration, Instant};

/// Experiment sizing.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Use smaller workloads (CI-friendly).
    pub quick: bool,
}

impl Scale {
    fn pick<T>(&self, quick: T, full: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let v = f();
    (v, t.elapsed())
}

/// Builds the optimization plan for a scenario, with small relations.
pub fn plan_for(scenario: &Scenario, small: &[&str]) -> Plan {
    let mut config = OptimizerConfig::default();
    for s in small {
        config.policy.small_relations.insert(Pred::new(s));
    }
    Optimizer::new(&scenario.program)
        .with_constraints(&scenario.constraints)
        .with_config(config)
        .run()
        .expect("scenario optimizes")
}

fn check_equal(a: &EvalResult, b: &EvalResult, pred: &str) {
    assert_eq!(
        a.relation(pred).expect("computed").sorted_tuples(),
        b.relation(pred).expect("computed").sorted_tuples(),
        "optimized program diverged on {pred}"
    );
}

/// E1 — atom elimination: original vs transformed across the three
/// scenarios, showing the benefit/overhead trade against the sequence
/// depth k the residue spans.
pub fn e1(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "E1 — atom elimination (Ex. 4.1/3.2 + guarded reachability)",
        &[
            "scenario",
            "k",
            "param",
            "orig time",
            "opt time",
            "orig rows",
            "opt rows",
            "rows saved",
        ],
    );

    // k = 1: guarded reachability, sweep witness fan-out.
    let s = parse_scenario(fanout::PROGRAM);
    let plan = plan_for(&s, &[]);
    for &fo in scale.pick(&[2usize, 8][..], &[1usize, 4, 16, 64][..]) {
        let db = fanout::generate(&fanout::FanoutParams {
            nodes: scale.pick(120, 300),
            extra_edges: scale.pick(60, 150),
            fanout: fo,
            seed: 1,
        });
        let (base, tb) = timed(|| evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap());
        let (opt, to) = timed(|| evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap());
        check_equal(&base, &opt, "reach");
        t.row(vec![
            "fanout".into(),
            "1".into(),
            format!("fanout={fo}"),
            ms(tb),
            ms(to),
            base.stats.rows_scanned.to_string(),
            opt.stats.rows_scanned.to_string(),
            ratio(base.stats.rows_scanned, opt.stats.rows_scanned),
        ]);
    }

    // k = 1 conditional: flight routing, sweep the international fraction
    // (the optimized branch's selectivity).
    let s = parse_scenario(semrec_gen::flights::PROGRAM);
    let plan = plan_for(&s, &[]);
    for &frac in scale.pick(&[0.2f64, 0.8][..], &[0.1f64, 0.5, 0.9][..]) {
        let db = semrec_gen::flights::generate(&semrec_gen::flights::FlightsParams {
            airports: scale.pick(50, 90),
            flights: scale.pick(300, 700),
            intl_frac: frac,
            ..semrec_gen::flights::FlightsParams::default()
        });
        let (base, tb) = timed(|| evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap());
        let (opt, to) = timed(|| evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap());
        check_equal(&base, &opt, "route");
        t.row(vec![
            "flights".into(),
            "1c".into(),
            format!("intl={frac:.1}"),
            ms(tb),
            ms(to),
            base.stats.rows_scanned.to_string(),
            opt.stats.rows_scanned.to_string(),
            ratio(base.stats.rows_scanned, opt.stats.rows_scanned),
        ]);
    }

    // k = 2: university, sweep collaboration chain length.
    let s = parse_scenario(university::PROGRAM);
    let plan = plan_for(&s, &["doctoral"]);
    for &chain in scale.pick(&[2usize, 6][..], &[2usize, 4, 8, 12][..]) {
        let db = university::generate(&university::UniversityParams {
            professors: scale.pick(48, 96),
            students: scale.pick(100, 240),
            chain_len: chain,
            ..university::UniversityParams::default()
        });
        let (base, tb) = timed(|| evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap());
        let (opt, to) = timed(|| evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap());
        check_equal(&base, &opt, "eval");
        t.row(vec![
            "university".into(),
            "2".into(),
            format!("chain={chain}"),
            ms(tb),
            ms(to),
            base.stats.rows_scanned.to_string(),
            opt.stats.rows_scanned.to_string(),
            ratio(base.stats.rows_scanned, opt.stats.rows_scanned),
        ]);
    }

    // k = 4: organizational hierarchy.
    let s = parse_scenario(org::PROGRAM);
    let plan = plan_for(&s, &[]);
    for &n in scale.pick(&[200usize][..], &[200usize, 800][..]) {
        let db = org::generate(&org::OrgParams {
            employees: n,
            ..org::OrgParams::default()
        });
        let (base, tb) = timed(|| evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap());
        let (opt, to) = timed(|| evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap());
        check_equal(&base, &opt, "triple");
        t.row(vec![
            "org".into(),
            "4".into(),
            format!("employees={n}"),
            ms(tb),
            ms(to),
            base.stats.rows_scanned.to_string(),
            opt.stats.rows_scanned.to_string(),
            ratio(base.stats.rows_scanned, opt.stats.rows_scanned),
        ]);
    }
    t.note("rows saved > 1x: transformation wins; < 1x: sequence-commitment overhead dominates.");
    t.note("shape: the k=1 elimination wins and scales with fan-out; deep sequences (k=2,4) pay commitment overhead that single-probe savings cannot recoup.");
    vec![t]
}

/// E2 — atom introduction: the doctoral small relation restricting the
/// eval_support join, across stipend selectivity.
pub fn e2(scale: Scale) -> Vec<Table> {
    let s = parse_scenario(university::PROGRAM);
    let with = plan_for(&s, &["doctoral"]);
    let without = plan_for(&s, &[]);
    let mut t = Table::new(
        "E2 — atom introduction (Ex. 4.2: doctoral into eval_support)",
        &[
            "rich_frac",
            "doctoral",
            "pays",
            "no-intro time",
            "intro time",
            "no-intro rows",
            "intro rows",
        ],
    );
    for &frac in scale.pick(&[0.1f64, 0.9][..], &[0.05f64, 0.2, 0.5, 0.9][..]) {
        let db = university::generate(&university::UniversityParams {
            professors: scale.pick(48, 96),
            students: scale.pick(150, 400),
            rich_frac: frac,
            ..university::UniversityParams::default()
        });
        let (base, tb) = timed(|| evaluate(&db, &without.program, Strategy::SemiNaive).unwrap());
        let (opt, to) = timed(|| evaluate(&db, &with.program, Strategy::SemiNaive).unwrap());
        check_equal(&base, &opt, "eval_support");
        t.row(vec![
            format!("{frac:.2}"),
            db.count("doctoral").to_string(),
            db.count("pays").to_string(),
            ms(tb),
            ms(to),
            base.stats.rows_scanned.to_string(),
            opt.stats.rows_scanned.to_string(),
        ]);
    }
    t.note("both programs carry the same recursive optimization; the delta is the introduced doctoral guard on the rich branch.");
    vec![t]
}

/// E3 — subtree pruning: full evaluation (honest overhead on consistent
/// data) and goal-directed evaluation where the query binds the pruning
/// condition.
pub fn e3(scale: Scale) -> Vec<Table> {
    let s = parse_scenario(genealogy::PROGRAM);
    let plan = plan_for(&s, &[]);
    let db = genealogy::generate(&genealogy::GenealogyParams {
        families: scale.pick(4, 8),
        depth: scale.pick(5, 7),
        branching: 2,
        seed: 7,
    });

    let mut full = Table::new(
        "E3a — pruning under full evaluation (Ex. 4.3)",
        &["system", "time", "rows", "anc tuples"],
    );
    let (base, tb) = timed(|| evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap());
    let (opt, to) = timed(|| evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap());
    check_equal(&base, &opt, "anc");
    full.row(vec![
        "original".into(),
        ms(tb),
        base.stats.rows_scanned.to_string(),
        base.relation("anc").unwrap().len().to_string(),
    ]);
    full.row(vec![
        "pruned".into(),
        ms(to),
        opt.stats.rows_scanned.to_string(),
        opt.relation("anc").unwrap().len().to_string(),
    ]);
    full.note("on IC-consistent data the pruned pattern never materializes in bottom-up evaluation — pruning adds chain overhead and saves nothing; this quantifies the limit of the paper's claim for data-driven engines.");

    let mut magic = Table::new(
        "E3b — pruning × magic sets (goal binds the ancestor's age)",
        &["bound age", "orig rows", "pruned rows", "answers"],
    );
    // One young and one old parent age present in the data.
    let rel = db.get(Pred::new("par")).unwrap();
    let mut ages = Vec::new();
    for probe in [|a: i64| a <= 50, |a: i64| a > 100] {
        if let Some(t) = rel
            .iter()
            .find(|t| matches!(t[3], Value::Int(a) if probe(a)))
        {
            if let Value::Int(a) = t[3] {
                ages.push(a);
            }
        }
    }
    for age in ages {
        let mut goal = parse_atom("anc(X, Xa, Y, Ya)").unwrap();
        goal.args[3] = Term::Const(Value::Int(age));
        let (a1, r1) = evaluate_query(&db, &plan.rectified, &goal, Strategy::SemiNaive).unwrap();
        let (a2, r2) = evaluate_query(&db, &plan.program, &goal, Strategy::SemiNaive).unwrap();
        assert_eq!(a1, a2);
        magic.row(vec![
            age.to_string(),
            r1.stats.rows_scanned.to_string(),
            r2.stats.rows_scanned.to_string(),
            a1.len().to_string(),
        ]);
    }
    magic.note("with the age bound, the strict chain's Ya > 50 guard makes deep exploration statically dead for young goals.");

    // E3c: the same bound-age goals under tabled top-down evaluation —
    // the evaluation model the paper's proof-tree argument presumes.
    let mut td = Table::new(
        "E3c — pruning × tabled top-down evaluation",
        &[
            "bound age",
            "orig expansions",
            "pruned expansions",
            "orig resolutions",
            "pruned resolutions",
            "answers",
        ],
    );
    let rel = db.get(Pred::new("par")).unwrap();
    let mut ages = Vec::new();
    for probe in [|a: i64| a <= 50, |a: i64| a > 100] {
        if let Some(tp) = rel
            .iter()
            .find(|t| matches!(t[3], Value::Int(a) if probe(a)))
        {
            if let Value::Int(a) = tp[3] {
                ages.push(a);
            }
        }
    }
    for age in ages {
        let mut goal = parse_atom("anc(X, Xa, Y, Ya)").unwrap();
        goal.args[3] = Term::Const(Value::Int(age));
        let (a1, s1) = semrec_engine::topdown::query_topdown(&db, &plan.rectified, &goal).unwrap();
        let (a2, s2) = semrec_engine::topdown::query_topdown(&db, &plan.program, &goal).unwrap();
        assert_eq!(a1, a2);
        td.row(vec![
            age.to_string(),
            s1.expansions.to_string(),
            s2.expansions.to_string(),
            s1.resolutions.to_string(),
            s2.resolutions.to_string(),
            a1.len().to_string(),
        ]);
    }
    td.note("with bound-first resolution, tabled top-down exploration is data-driven too: the guards never fire on consistent data and the chain structure adds expansions — confirming E3a/E3b's finding in the paper's own evaluation model.");

    // E3d: non-tabled, depth-bounded SLD — the speculative prover of the
    // paper's era. Here the pushed guard finally pays: a young-bound goal
    // makes the committed chain die at rule entry, while the original
    // program expands the unbound recursion to the depth bound.
    use semrec_engine::sld::{query_sld, SldConfig};
    let small = genealogy::generate(&genealogy::GenealogyParams {
        families: 2,
        depth: 4,
        branching: 2,
        seed: 7,
    });
    let mut sld = Table::new(
        "E3d — pruning × depth-bounded SLD (no tabling)",
        &[
            "bound age",
            "orig expansions",
            "pruned expansions",
            "saved",
            "answers",
        ],
    );
    let rel = small.get(Pred::new("par")).unwrap();
    let mut ages = Vec::new();
    for probe in [|a: i64| a <= 50, |a: i64| a > 100] {
        if let Some(tp) = rel
            .iter()
            .find(|t| matches!(t[3], Value::Int(a) if probe(a)))
        {
            if let Value::Int(a) = tp[3] {
                ages.push(a);
            }
        }
    }
    let config = SldConfig {
        max_depth: scale.pick(8, 10),
        max_expansions: 4_000_000,
    };
    for age in ages {
        let mut goal = parse_atom("anc(X, Xa, Y, Ya)").unwrap();
        goal.args[3] = Term::Const(Value::Int(age));
        let (a1, s1, _) = query_sld(&small, &plan.rectified, &goal, config).unwrap();
        let (a2, s2, _) = query_sld(&small, &plan.program, &goal, config).unwrap();
        assert_eq!(a1, a2, "SLD answers diverged at age {age}");
        sld.row(vec![
            age.to_string(),
            s1.expansions.to_string(),
            s2.expansions.to_string(),
            ratio(s1.expansions, s2.expansions),
            a1.len().to_string(),
        ]);
    }
    sld.note("the paper's claimed benefit, demonstrated in its native evaluation model: for goals binding the pruning condition, whole speculative search subtrees are cut before touching the database.");
    vec![full, magic, td, sld]
}

/// E4 — compile-time transformation vs the evaluation-based (per-
/// iteration) baseline: run-time overhead decomposition.
pub fn e4(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "E4 — compile-time vs evaluation-based semantic optimization",
        &[
            "scenario",
            "rounds",
            "compiled: optimize once",
            "compiled: eval",
            "baseline: re-optimize total",
            "baseline: total",
            "residue computations",
        ],
    );
    let cases: Vec<(&str, Scenario, Database, &str)> = vec![
        (
            "org",
            parse_scenario(org::PROGRAM),
            org::generate(&org::OrgParams {
                employees: scale.pick(150, 500),
                ..org::OrgParams::default()
            }),
            "triple",
        ),
        (
            "university",
            parse_scenario(university::PROGRAM),
            university::generate(&university::UniversityParams {
                professors: scale.pick(48, 96),
                students: scale.pick(100, 300),
                ..university::UniversityParams::default()
            }),
            "eval",
        ),
        (
            "genealogy",
            parse_scenario(genealogy::PROGRAM),
            genealogy::generate(&genealogy::GenealogyParams {
                families: scale.pick(3, 6),
                depth: scale.pick(5, 6),
                ..genealogy::GenealogyParams::default()
            }),
            "anc",
        ),
        (
            "fanout",
            parse_scenario(fanout::PROGRAM),
            fanout::generate(&fanout::FanoutParams {
                nodes: scale.pick(120, 250),
                fanout: scale.pick(8, 16),
                ..fanout::FanoutParams::default()
            }),
            "reach",
        ),
    ];
    for (name, s, db, pred) in cases {
        let (plan, compile_time) = timed(|| plan_for(&s, &["doctoral"]));
        let (opt, eval_time) = timed(|| evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap());
        let (rt, rt_total) = timed(|| {
            evaluate_with_runtime_semantics(&db, &s.program, &s.constraints, Strategy::SemiNaive)
                .unwrap()
        });
        check_equal(&opt, &rt.result, pred);
        t.row(vec![
            name.into(),
            rt.rounds.to_string(),
            ms(compile_time),
            ms(eval_time),
            ms(rt.optimization_time),
            ms(rt_total),
            rt.residue_computations.to_string(),
        ]);
    }
    t.note("the compiled approach pays its optimization cost once; the evaluation-based baseline re-derives rule-level residues every round (claim (ii) of §1).");
    t.note("the baseline's residues are rule-level only — the sequence-spanning optimizations of Ex. 3.2/4.1/4.3 are out of its reach (claim (i)).");
    vec![t]
}

/// E5 — Algorithm 3.1 (SD-graph) vs exhaustive sequence enumeration for
/// residue detection, scaling the IC chain length.
pub fn e5(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "E5 — residue detection: Algorithm 3.1 vs exhaustive enumeration",
        &[
            "ic atoms k",
            "sdgraph",
            "exhaustive",
            "speedup",
            "found (both)",
        ],
    );
    let kmax = scale.pick(4, 5);
    for k in 2..=kmax {
        let (program, ic) = chain_detection_workload(k);
        let (prog, _) = rectify(&program);
        let info = classify_linear_pred(&prog, Pred::new("p")).unwrap();
        let (sd, t_sd) = timed(|| detect(&prog, &info, &ic, DetectionMethod::SdGraph, 0).unwrap());
        let (ex, t_ex) = timed(|| {
            detect(
                &prog,
                &info,
                &ic,
                DetectionMethod::Exhaustive { max_len: k + 1 },
                0,
            )
            .unwrap()
        });
        // Every SD detection is found exhaustively.
        for d in &sd {
            assert!(
                ex.iter()
                    .any(|e| e.residue.seq == d.residue.seq && e.residue.head == d.residue.head),
                "missing {:?}",
                d.residue.seq
            );
        }
        t.row(vec![
            k.to_string(),
            format!("{:.0}µs", t_sd.as_secs_f64() * 1e6),
            format!("{:.0}µs", t_ex.as_secs_f64() * 1e6),
            format!("{:.1}x", t_ex.as_secs_f64() / t_sd.as_secs_f64().max(1e-9)),
            format!("{}/{}", sd.len(), ex.len()),
        ]);
    }
    t.note("the program has two recursive rules, so exhaustive enumeration grows as 2^k while the SD-graph proposes the matching path directly.");
    vec![t]
}

/// A linear program with two recursive rules and an IC whose chain of `k`
/// atoms spans `k` levels of the first rule.
pub fn chain_detection_workload(k: usize) -> (Program, semrec_datalog::Constraint) {
    // p(X1, X2) with rule 1 stepping through `a` and rule 2 through `z`.
    let src = "
        p(X1, X2) :- e(X1, X2).
        p(X1, X2) :- a(X1, W), p(W, X2).
        p(X1, X2) :- z(X1, W), p(W, X2).
    ";
    let program = parse_unit(src).unwrap().program();
    // IC: a(V1, V2), a(V2, V3), …, a(Vk, Vk+1) -> q(V1, Vk+1).
    let atoms: Vec<String> = (0..k).map(|i| format!("a(V{}, V{})", i, i + 1)).collect();
    let ic_src = format!("ic: {} -> q(V0, V{k}).", atoms.join(", "));
    let ic = semrec_datalog::parse_constraints(&ic_src)
        .unwrap()
        .remove(0);
    (program, ic)
}

/// E6 — free residues vs expanded-form (CGM) residues: how many are
/// directly usable for query-independent optimization.
pub fn e6(_scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "E6 — free (sequence) residues vs CGM rule-level residues",
        &[
            "scenario",
            "ic",
            "CGM residues",
            "directly usable",
            "free detections",
            "useful/pushable",
        ],
    );
    for (name, src) in [
        ("org", org::PROGRAM),
        ("university", university::PROGRAM),
        ("genealogy", genealogy::PROGRAM),
        ("fanout", fanout::PROGRAM),
    ] {
        let s = parse_scenario(src);
        let (prog, _) = rectify(&s.program);
        let infos = semrec_datalog::analysis::classify_linear(&prog).unwrap();
        for ic in &s.constraints {
            let mut cgm = 0usize;
            let mut usable = 0usize;
            for rule in &prog.rules {
                for r in semrec_core::expand::rule_residues(ic, rule) {
                    cgm += 1;
                    if r.directly_usable() && !r.is_trivial() {
                        usable += 1;
                    }
                }
            }
            let mut free = 0usize;
            let mut useful = 0usize;
            for info in &infos {
                let ds = detect(&prog, info, ic, DetectionMethod::SdGraph, 3).unwrap();
                free += ds.len();
                useful += ds
                    .iter()
                    .filter(|d| d.residue.is_useful() || d.residue.is_null())
                    .count();
            }
            t.row(vec![
                name.into(),
                ic.name.map(|n| n.as_str().to_owned()).unwrap_or_default(),
                cgm.to_string(),
                usable.to_string(),
                free.to_string(),
                useful.to_string(),
            ]);
        }
    }
    t.note("CGM residues against recursive rules are mostly trivial or carry query-anticipating conditions (Ex. 3.2); free sequence residues are what the program transformation can push.");
    vec![t]
}

/// E7 — query independence: the transformed program under different
/// binding patterns, with magic sets on top.
pub fn e7(scale: Scale) -> Vec<Table> {
    let s = parse_scenario(fanout::PROGRAM);
    let plan = plan_for(&s, &[]);
    let db = fanout::generate(&fanout::FanoutParams {
        nodes: scale.pick(150, 400),
        extra_edges: scale.pick(60, 200),
        fanout: scale.pick(8, 16),
        seed: 3,
    });
    let mut t = Table::new(
        "E7 — query independence: bindings × (original|optimized) × magic",
        &["goal", "orig rows", "opt rows", "answers"],
    );
    for goal_src in ["reach(0, Y)", "reach(X, 17)", "reach(3, 17)", "reach(X, Y)"] {
        let goal = parse_atom(goal_src).unwrap();
        let (a1, r1) = evaluate_query(&db, &plan.rectified, &goal, Strategy::SemiNaive).unwrap();
        let (a2, r2) = evaluate_query(&db, &plan.program, &goal, Strategy::SemiNaive).unwrap();
        assert_eq!(a1, a2, "magic mismatch at {goal_src}");
        t.row(vec![
            goal_src.into(),
            r1.stats.rows_scanned.to_string(),
            r2.stats.rows_scanned.to_string(),
            a1.len().to_string(),
        ]);
    }
    t.note("the same compiled transformation serves every binding pattern (claim (i) of §1) and composes with magic sets (§6's analogy).");
    vec![t]
}

/// E8 — ablation: the cost of isolation alone (faithful Algorithm 4.1 and
/// the full-commitment variant) with no optimization applied.
pub fn e8(scale: Scale) -> Vec<Table> {
    let unit = parse_unit("anc(X, Y) :- par(X, Y). anc(X, Y) :- anc(X, Z), par(Z, Y).").unwrap();
    let (prog, _) = rectify(&unit.program());
    let info = classify_linear_pred(&prog, Pred::new("anc")).unwrap();
    let db = semrec_gen::graphs::tree("par", scale.pick(2_000, 10_000), 2);

    let mut t = Table::new(
        "E8 — isolation overhead ablation (no optimization applied)",
        &["k", "rules", "time", "rows", "vs original"],
    );
    let (base, tb) = timed(|| evaluate(&db, &prog, Strategy::SemiNaive).unwrap());
    t.row(vec![
        "-".into(),
        prog.len().to_string(),
        ms(tb),
        base.stats.rows_scanned.to_string(),
        "1.00x".into(),
    ]);
    for k in 1..=4usize {
        let seq = vec![1usize; k];
        let u = unfold(&prog, &info, &seq).unwrap();
        let iso = isolate(&prog, &info, &u);
        let (r, td) = timed(|| evaluate(&db, &iso.program, Strategy::SemiNaive).unwrap());
        check_equal(&base, &r, "anc");
        t.row(vec![
            k.to_string(),
            iso.program.len().to_string(),
            ms(td),
            r.stats.rows_scanned.to_string(),
            ratio(r.stats.rows_scanned, base.stats.rows_scanned),
        ]);
    }
    t.note("isolating a length-k sequence multiplies rule count and per-tuple bookkeeping; an optimization must beat this floor to pay off (cf. E1).");
    vec![t]
}

/// E9 — intelligent query answering latency and outcomes (Ex. 5.1).
pub fn e9(_scale: Scale) -> Vec<Table> {
    let program = parse_unit(
        "honors(Stud) :- transcript(Stud, Major, Cred, Gpa), Cred >= 30, Gpa >= 38.
         honors(Stud) :- transcript(Stud, Major, Cred, Gpa), Gpa >= 38, exceptional(Stud).
         exceptional(Stud) :- publication(Stud, P), appears(P, Jl), reputed(Jl).
         honors(Stud) :- graduated(Stud, College), topten(College).",
    )
    .unwrap()
    .program();
    let mut t = Table::new(
        "E9 — intelligent query answering (Ex. 5.1)",
        &[
            "query",
            "relevant",
            "irrelevant",
            "qualified",
            "needs-more",
            "time",
        ],
    );
    for q in [
        "describe honors(S) where major(S, cs), graduated(S, C), topten(C), hobby(S, chess).",
        "describe honors(S) where transcript(S, M, Cr, G), G >= 38.",
        "describe honors(S) where transcript(S, M, Cr, G), Cr >= 30, G >= 38.",
        "describe honors(S).",
    ] {
        let query = semrec_iqa::parse_describe(q).unwrap();
        let (a, d) = timed(|| semrec_iqa::answer(&program, &query, 4));
        let qualified = a
            .trees
            .iter()
            .filter(|x| x.verdict == semrec_iqa::TreeVerdict::Qualified)
            .count();
        let needs = a
            .trees
            .iter()
            .filter(|x| matches!(x.verdict, semrec_iqa::TreeVerdict::NeedsMore { .. }))
            .count();
        t.row(vec![
            q.chars().take(58).collect(),
            a.relevant.len().to_string(),
            a.irrelevant.len().to_string(),
            qualified.to_string(),
            needs.to_string(),
            format!("{:.0}µs", d.as_secs_f64() * 1e6),
        ]);
    }
    vec![t]
}

/// E10 — intra-round parallel evaluation speedup (engine extension, not a
/// paper claim): the same program and data on 1, 2, and 4 worker threads.
pub fn e10(scale: Scale) -> Vec<Table> {
    // Parallelism applies across rule plans within a round, so the
    // workload has several independent recursions: k transitive closures
    // over disjoint edge relations.
    let k = 8usize;
    let rules: String = (0..k)
        .map(|i| format!("t{i}(X, Y) :- e{i}(X, Y). t{i}(X, Y) :- e{i}(X, Z), t{i}(Z, Y).\n"))
        .collect();
    let program: Program = rules.parse().unwrap();
    let mut db = Database::new();
    let n = scale.pick(150usize, 350);
    for i in 0..k {
        let g = semrec_gen::graphs::random_digraph(&format!("e{i}"), n, n * 2, i as u64);
        for (pred, rel) in g.iter() {
            for t in rel.iter() {
                db.insert(pred, t.to_vec());
            }
        }
    }
    let mut t = Table::new(
        "E10 — parallel evaluation (engine extension)",
        &["threads", "time", "speedup", "rows (invariant)"],
    );
    // Untimed warmup: without it the serial baseline absorbs the
    // process's cold-start cost alone and inflates the speedups.
    semrec_engine::evaluate_parallel(&db, &program, Strategy::SemiNaive, 1).unwrap();
    let mut base = None;
    for threads in [1usize, 2, 4] {
        let (res, d) = timed(|| {
            semrec_engine::evaluate_parallel(&db, &program, Strategy::SemiNaive, threads).unwrap()
        });
        let baseline = *base.get_or_insert(d.as_secs_f64());
        t.row(vec![
            threads.to_string(),
            ms(d),
            format!("{:.2}x", baseline / d.as_secs_f64().max(1e-9)),
            res.stats.rows_scanned.to_string(),
        ]);
    }
    t.note("eight independent closures; counters are identical across thread counts, only wall time changes.");
    vec![t]
}

/// Runs an experiment by id.
pub fn run(id: &str, scale: Scale) -> Option<Vec<Table>> {
    match id {
        "e1" => Some(e1(scale)),
        "e2" => Some(e2(scale)),
        "e3" => Some(e3(scale)),
        "e4" => Some(e4(scale)),
        "e5" => Some(e5(scale)),
        "e6" => Some(e6(scale)),
        "e7" => Some(e7(scale)),
        "e8" => Some(e8(scale)),
        "e9" => Some(e9(scale)),
        "e10" => Some(e10(scale)),
        _ => None,
    }
}

/// All experiment ids.
pub const ALL: [&str; 10] = ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"];

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: Scale = Scale { quick: true };

    #[test]
    fn all_experiments_run_quick() {
        for id in ALL {
            let tables = run(id, QUICK).expect("known id");
            assert!(!tables.is_empty(), "{id} produced no tables");
            for t in &tables {
                assert!(!t.rows.is_empty(), "{id} produced an empty table");
            }
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run("e42", QUICK).is_none());
    }

    #[test]
    fn chain_workload_validates() {
        for k in 2..=4 {
            let (p, ic) = chain_detection_workload(k);
            semrec_datalog::analysis::validate(&p, &[ic]).unwrap();
        }
    }
}
