//! Fixpoint throughput benchmark: times the engine's semi-naive loop on
//! the `gen` workloads, serial and parallel, and emits
//! `BENCH_fixpoint.json` at the repo root.
//!
//! This is the perf trajectory every engine PR is judged against — no
//! criterion, no external deps (offline-build policy): plain
//! `Instant`-based wall timing, median of N runs.

use semrec_datalog::program::Program;
use semrec_engine::{Database, Evaluator, Strategy};
use semrec_gen::{fanout, org, parse_scenario, university};
use std::fmt::Write as _;
use std::time::Instant;

/// One timed configuration.
#[derive(Clone, Debug)]
pub struct Timing {
    /// Worker threads (1 = serial).
    pub threads: usize,
    /// Median wall milliseconds over the runs.
    pub millis: f64,
    /// Worker busy fraction (0 for serial).
    pub busy_fraction: f64,
    /// Aggregate seed-scan rows/sec across parallel rounds (0 for serial).
    pub rows_per_sec: f64,
}

/// One benchmarked workload.
#[derive(Clone, Debug)]
pub struct WorkloadResult {
    /// Workload name (`fanout`, `org`, `university`).
    pub name: String,
    /// Size label (generator parameters).
    pub params: String,
    /// EDB tuples in.
    pub rows_edb: usize,
    /// IDB tuples out.
    pub rows_idb: usize,
    /// Fixpoint rounds.
    pub rounds: u64,
    /// Timings at each thread count.
    pub timings: Vec<Timing>,
}

fn edb_rows(db: &Database) -> usize {
    db.iter().map(|(_, rel)| rel.len()).sum()
}

fn time_once(db: &Database, prog: &Program, threads: usize) -> (f64, f64, f64, usize, u64) {
    let start = Instant::now();
    let mut ev = Evaluator::new(db, prog, Strategy::SemiNaive)
        .unwrap()
        .with_parallelism(threads);
    ev.run().unwrap();
    let millis = start.elapsed().as_secs_f64() * 1e3;
    let ps = ev.pool_stats();
    let rounds = ev.rounds();
    let res = ev.finish();
    let out: usize = res.idb.values().map(|r| r.len()).sum();
    (millis, ps.busy_fraction(), ps.rows_per_sec(), out, rounds)
}

fn bench_workload(
    name: &str,
    params: String,
    db: &Database,
    prog: &Program,
    thread_counts: &[usize],
    runs: usize,
) -> WorkloadResult {
    let mut timings = Vec::new();
    let mut rows_idb = 0;
    let mut rounds = 0;
    for &threads in thread_counts {
        let mut samples = Vec::with_capacity(runs);
        let mut busy = 0.0;
        let mut rps = 0.0;
        for _ in 0..runs.max(1) {
            let (ms, b, r, out, nrounds) = time_once(db, prog, threads);
            samples.push(ms);
            busy = b;
            rps = r;
            rows_idb = out;
            rounds = nrounds;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        let millis = samples[samples.len() / 2];
        timings.push(Timing {
            threads,
            millis,
            busy_fraction: busy,
            rows_per_sec: rps,
        });
    }
    WorkloadResult {
        name: name.to_owned(),
        params,
        rows_edb: edb_rows(db),
        rows_idb,
        rounds,
        timings,
    }
}

/// Runs the full fixpoint benchmark. `quick` shrinks sizes and run counts
/// (used by `scripts/check.sh` so the tier-1 gate stays fast).
pub fn run_fixpoint_bench(quick: bool) -> Vec<WorkloadResult> {
    let runs = if quick { 1 } else { 3 };
    let threads: &[usize] = &[1, 2, 4];
    let mut results = Vec::new();

    // Fanout k = 1 — the E1 headline scenario. fanout=64 is the ISSUE's
    // ≥2x target configuration; a second size shows scaling in `nodes`.
    let fanout_sizes: &[(usize, usize, usize)] = if quick {
        &[(150, 80, 64)]
    } else {
        &[(150, 80, 64), (300, 160, 64), (300, 160, 8)]
    };
    let s = parse_scenario(fanout::PROGRAM);
    for &(nodes, extra, fo) in fanout_sizes {
        let db = fanout::generate(&fanout::FanoutParams {
            nodes,
            extra_edges: extra,
            fanout: fo,
            seed: 1,
        });
        results.push(bench_workload(
            "fanout",
            format!("nodes={nodes} extra_edges={extra} fanout={fo}"),
            &db,
            &s.program,
            threads,
            runs,
        ));
    }

    // Org reporting-tree closure (Example 4.1).
    let org_sizes: &[usize] = if quick { &[400] } else { &[400, 1200] };
    let s = parse_scenario(org::PROGRAM);
    for &employees in org_sizes {
        let db = org::generate(&org::OrgParams {
            employees,
            seed: 2,
            ..org::OrgParams::default()
        });
        results.push(bench_workload(
            "org",
            format!("employees={employees}"),
            &db,
            &s.program,
            threads,
            runs,
        ));
    }

    // University collaboration chains (Examples 3.2/4.2).
    let uni_sizes: &[(usize, usize)] = if quick {
        &[(60, 200)]
    } else {
        &[(60, 200), (120, 600)]
    };
    let s = parse_scenario(university::PROGRAM);
    for &(professors, students) in uni_sizes {
        let db = university::generate(&university::UniversityParams {
            professors,
            students,
            seed: 3,
            ..university::UniversityParams::default()
        });
        results.push(bench_workload(
            "university",
            format!("professors={professors} students={students}"),
            &db,
            &s.program,
            threads,
            runs,
        ));
    }

    results
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_owned()
    }
}

/// Serializes results as JSON (hand-rolled: offline-build policy).
pub fn to_json(results: &[WorkloadResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"benchmark\": \"fixpoint\",\n");
    let _ = writeln!(
        s,
        "  \"strategy\": \"SemiNaive\",\n  \"available_parallelism\": {},",
        std::thread::available_parallelism().map_or(0, usize::from)
    );
    s.push_str("  \"workloads\": [\n");
    for (i, w) in results.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(s, "      \"params\": \"{}\",", w.params);
        let _ = writeln!(s, "      \"rows_edb\": {},", w.rows_edb);
        let _ = writeln!(s, "      \"rows_idb\": {},", w.rows_idb);
        let _ = writeln!(s, "      \"rounds\": {},", w.rounds);
        s.push_str("      \"timings\": [\n");
        for (j, t) in w.timings.iter().enumerate() {
            let _ = write!(
                s,
                "        {{\"threads\": {}, \"millis\": {}, \"busy_fraction\": {}, \"rows_per_sec\": {}}}",
                t.threads,
                json_f(t.millis),
                json_f(t.busy_fraction),
                json_f(t.rows_per_sec)
            );
            s.push_str(if j + 1 < w.timings.len() { ",\n" } else { "\n" });
        }
        s.push_str("      ]\n");
        s.push_str(if i + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

/// A human-readable summary table.
pub fn to_table(results: &[WorkloadResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:<42} {:>9} {:>9} {:>8} {:>8} {:>8} {:>7}",
        "workload", "params", "edb", "idb", "t1 ms", "t2 ms", "t4 ms", "x4"
    );
    for w in results {
        let ms = |n: usize| {
            w.timings
                .iter()
                .find(|t| t.threads == n)
                .map_or(f64::NAN, |t| t.millis)
        };
        let speedup = ms(1) / ms(4);
        let _ = writeln!(
            s,
            "{:<12} {:<42} {:>9} {:>9} {:>8.2} {:>8.2} {:>8.2} {:>6.2}x",
            w.name,
            w.params,
            w.rows_edb,
            w.rows_idb,
            ms(1),
            ms(2),
            ms(4),
            speedup
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_runs_and_serializes() {
        let results = run_fixpoint_bench(true);
        assert!(results.len() >= 3, "at least 3 workloads");
        for w in &results {
            assert!(w.rows_idb > 0, "{} derived nothing", w.name);
            assert_eq!(w.timings.len(), 3);
        }
        let json = to_json(&results);
        assert!(json.contains("\"fanout\""));
        assert!(json.contains("\"threads\": 4"));
        // Sanity: balanced braces/brackets.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let table = to_table(&results);
        assert!(table.contains("university"));
    }
}
