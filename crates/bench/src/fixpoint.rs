//! Fixpoint throughput benchmark: times the engine's semi-naive loop on
//! the `gen` workloads, serial and parallel, and emits
//! `BENCH_fixpoint.json` at the repo root.
//!
//! This is the perf trajectory every engine PR is judged against — no
//! criterion, no external deps (offline-build policy): plain
//! `Instant`-based wall timing, median of N runs.

use semrec_datalog::program::Program;
use semrec_engine::fxhash::{hash_one, PrehashedMap};
use semrec_engine::{evaluate, Budget, CancelToken, CodeMap, Database, Evaluator, Stats, Strategy};
use semrec_gen::{fanout, org, parse_scenario, university};
use std::fmt::Write as _;
use std::time::Instant;

/// Version of the `BENCH_fixpoint.json` schema this harness emits
/// (`"schema_version"` in the document header). Bump it whenever a
/// section or field the CI gates read is added or changed; `check.sh`
/// fails when the checked-in baseline's version differs, forcing a
/// regeneration with `harness bench --json` in the same PR.
pub const SCHEMA_VERSION: u64 = 3;

/// IDB-size floor for the `--assert-scaling` gate: workloads below this
/// finish in a few ms and are dominated by noise, not by scaling.
pub const SCALING_MIN_IDB_ROWS: usize = 50_000;
/// Maximum tolerated `t4/t1` ratio before the gate fails.
pub const SCALING_MAX_RATIO: f64 = 1.10;

/// One timed configuration.
#[derive(Clone, Debug)]
pub struct Timing {
    /// Worker threads (1 = serial).
    pub threads: usize,
    /// Median wall milliseconds over the runs.
    pub millis: f64,
    /// Worker busy fraction (0 for serial).
    pub busy_fraction: f64,
    /// Aggregate seed-scan rows/sec across parallel rounds (0 for serial).
    pub rows_per_sec: f64,
}

/// One benchmarked workload.
#[derive(Clone, Debug)]
pub struct WorkloadResult {
    /// Workload name (`fanout`, `org`, `university`).
    pub name: String,
    /// Size label (generator parameters).
    pub params: String,
    /// EDB tuples in.
    pub rows_edb: usize,
    /// IDB tuples out.
    pub rows_idb: usize,
    /// Fixpoint rounds.
    pub rounds: u64,
    /// Timings at each thread count.
    pub timings: Vec<Timing>,
}

fn edb_rows(db: &Database) -> usize {
    db.iter().map(|(_, rel)| rel.len()).sum()
}

fn time_once(db: &Database, prog: &Program, threads: usize) -> (f64, f64, f64, usize, u64) {
    let start = Instant::now();
    let mut ev = Evaluator::new(db, prog, Strategy::SemiNaive)
        .unwrap()
        .with_parallelism(threads);
    ev.run().unwrap();
    let millis = start.elapsed().as_secs_f64() * 1e3;
    let ps = ev.pool_stats();
    let rounds = ev.rounds();
    let res = ev.finish();
    let out: usize = res.idb.values().map(|r| r.len()).sum();
    (millis, ps.busy_fraction(), ps.rows_per_sec(), out, rounds)
}

fn bench_workload(
    name: &str,
    params: String,
    db: &Database,
    prog: &Program,
    thread_counts: &[usize],
    runs: usize,
) -> WorkloadResult {
    // One untimed warmup so the first timed config doesn't absorb the
    // cold-start cost (page faults, lazily built indexes) alone.
    let (_, _, _, mut rows_idb, mut rounds) = time_once(db, prog, thread_counts[0]);
    // Interleave thread configs across passes instead of timing each
    // config's runs back to back: on a shared/noisy machine, slow drift
    // (throttling, allocator state) then hits every config equally and
    // the medians stay comparable.
    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(runs); thread_counts.len()];
    let mut busy = vec![0.0; thread_counts.len()];
    let mut rps: Vec<Vec<f64>> = vec![Vec::with_capacity(runs); thread_counts.len()];
    for _ in 0..runs.max(1) {
        for (i, &threads) in thread_counts.iter().enumerate() {
            let (ms, b, r, out, nrounds) = time_once(db, prog, threads);
            samples[i].push(ms);
            busy[i] = b;
            rps[i].push(r);
            rows_idb = out;
            rounds = nrounds;
        }
    }
    let timings = thread_counts
        .iter()
        .enumerate()
        .map(|(i, &threads)| {
            samples[i].sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
            // Median the throughput samples too: a single-sample
            // rows/sec feeds `--assert-throughput`, where one noisy
            // window would trip (or hide) the gate.
            rps[i].sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
            Timing {
                threads,
                millis: samples[i][samples[i].len() / 2],
                busy_fraction: busy[i],
                rows_per_sec: rps[i][rps[i].len() / 2],
            }
        })
        .collect();
    WorkloadResult {
        name: name.to_owned(),
        params,
        rows_edb: edb_rows(db),
        rows_idb,
        rounds,
        timings,
    }
}

/// Runs the full fixpoint benchmark. `quick` shrinks sizes and run counts
/// (used by `scripts/check.sh` so the tier-1 gate stays fast).
pub fn run_fixpoint_bench(quick: bool) -> Vec<WorkloadResult> {
    run_fixpoint_bench_gated(quick, !quick)
}

/// Like [`run_fixpoint_bench`], but `with_gate_workload` additionally
/// forces a workload above [`SCALING_MIN_IDB_ROWS`] into quick mode so
/// `--assert-scaling` has something to check (full mode always has one).
pub fn run_fixpoint_bench_gated(quick: bool, with_gate_workload: bool) -> Vec<WorkloadResult> {
    // Quick mode still takes 3 samples per config: the medians feed the
    // scaling and throughput gates, and a single-sample median is just
    // that sample — one scheduling hiccup would flake the gate. The
    // quick workloads are small enough that the extra passes are cheap.
    let runs = 3;
    let threads: &[usize] = &[1, 2, 4];
    let mut results = Vec::new();

    // Fanout k = 1 — the E1 headline scenario. fanout=64 is the ISSUE's
    // ≥2x target configuration; a second size shows scaling in `nodes`.
    let fanout_sizes: &[(usize, usize, usize)] = if !quick {
        &[(150, 80, 64), (300, 160, 64), (300, 160, 8)]
    } else if with_gate_workload {
        &[(150, 80, 64), (300, 160, 64)]
    } else {
        &[(150, 80, 64)]
    };
    let s = parse_scenario(fanout::PROGRAM);
    for &(nodes, extra, fo) in fanout_sizes {
        let db = fanout::generate(&fanout::FanoutParams {
            nodes,
            extra_edges: extra,
            fanout: fo,
            seed: 1,
        });
        results.push(bench_workload(
            "fanout",
            format!("nodes={nodes} extra_edges={extra} fanout={fo}"),
            &db,
            &s.program,
            threads,
            runs,
        ));
    }

    // Org reporting-tree closure (Example 4.1).
    let org_sizes: &[usize] = if quick { &[400] } else { &[400, 1200] };
    let s = parse_scenario(org::PROGRAM);
    for &employees in org_sizes {
        let db = org::generate(&org::OrgParams {
            employees,
            seed: 2,
            ..org::OrgParams::default()
        });
        results.push(bench_workload(
            "org",
            format!("employees={employees}"),
            &db,
            &s.program,
            threads,
            runs,
        ));
    }

    // University collaboration chains (Examples 3.2/4.2).
    let uni_sizes: &[(usize, usize)] = if quick {
        &[(60, 200)]
    } else {
        &[(60, 200), (120, 600)]
    };
    let s = parse_scenario(university::PROGRAM);
    for &(professors, students) in uni_sizes {
        let db = university::generate(&university::UniversityParams {
            professors,
            students,
            seed: 3,
            ..university::UniversityParams::default()
        });
        results.push(bench_workload(
            "university",
            format!("professors={professors} students={students}"),
            &db,
            &s.program,
            threads,
            runs,
        ));
    }

    results
}

/// One interpreter-vs-kernel comparison: the same workload evaluated
/// single-threaded with the specialized join kernels disabled (general
/// step machine only) and enabled, plus the kernel telemetry counters
/// from the enabled run.
#[derive(Clone, Debug)]
pub struct KernelBenchResult {
    /// Workload name.
    pub name: String,
    /// Generator parameter label.
    pub params: String,
    /// IDB tuples out (identical in both modes).
    pub rows_idb: usize,
    /// Median single-thread wall ms, kernels disabled.
    pub interp_millis: f64,
    /// Median single-thread wall ms, kernels enabled.
    pub kernel_millis: f64,
    /// Seed-scan rows/sec, kernels disabled.
    pub interp_rows_per_sec: f64,
    /// Seed-scan rows/sec, kernels enabled.
    pub kernel_rows_per_sec: f64,
    /// Plan executions routed to a specialized kernel (enabled run).
    pub kernel_firings: u64,
    /// Plan executions that fell back to the step machine (enabled run).
    pub interp_firings: u64,
    /// Index probes issued (enabled run).
    pub probes: u64,
    /// Rows yielded by index probes after lazy filtering (enabled run).
    pub probe_hits: u64,
    /// High-water bytes of reusable task scratch (enabled run) — flat
    /// and tiny regardless of derived-row count: the zero-allocation
    /// witness.
    pub scratch_hw_bytes: u64,
    /// Dictionary-map walks the enabled run actually paid (memo misses
    /// and unmemoized resolutions).
    pub dict_probes: u64,
    /// Key→code resolutions served from the EDB-stable kernel memos
    /// instead of the dictionary (enabled run).
    pub dict_memo_hits: u64,
    /// Mid-insert dedup-table rehashes during drains (enabled run); 0
    /// means the EWMA pre-sizing held on every round.
    pub dedup_regrows: u64,
}

impl KernelBenchResult {
    /// Kernel-over-interpreter throughput ratio (> 1: kernels win).
    pub fn speedup(&self) -> f64 {
        self.kernel_rows_per_sec / self.interp_rows_per_sec.max(1e-9)
    }

    /// Fraction of plan executions that ran through a batch kernel in
    /// the kernels-enabled run — the eligibility-coverage metric
    /// `kernel_firings / (kernel_firings + interp_firings)`. A workload
    /// that never fires either (empty delta) counts as full coverage.
    pub fn coverage(&self) -> f64 {
        let total = self.kernel_firings + self.interp_firings;
        if total == 0 {
            return 1.0;
        }
        self.kernel_firings as f64 / total as f64
    }
}

fn time_kernels_once(db: &Database, prog: &Program, kernels: bool) -> (f64, f64, Stats, usize) {
    let start = Instant::now();
    let mut ev = Evaluator::new(db, prog, Strategy::SemiNaive)
        .unwrap()
        .with_kernels(kernels);
    ev.run().unwrap();
    let millis = start.elapsed().as_secs_f64() * 1e3;
    let rps = ev.pool_stats().rows_per_sec();
    let stats = ev.stats();
    let out: usize = ev.finish().idb.values().map(|r| r.len()).sum();
    (millis, rps, stats, out)
}

/// Runs the kernels-vs-interpreter bench: every gen workload evaluated
/// single-threaded with [`Evaluator::with_kernels`] off and on,
/// interleaved, medians reported. The ISSUE 5 acceptance number — ≥1.5x
/// single-thread rows/sec on fanout nodes=300 fanout=64 — comes from
/// this section's `kernel_rows_per_sec`.
pub fn run_kernel_bench(quick: bool) -> Vec<KernelBenchResult> {
    let runs = if quick { 1 } else { 3 };
    let mut specs: Vec<(String, String, Database, Program)> = Vec::new();

    let fanout_sizes: &[(usize, usize, usize)] = if quick {
        &[(150, 80, 64)]
    } else {
        &[(150, 80, 64), (300, 160, 64)]
    };
    let s = parse_scenario(fanout::PROGRAM);
    for &(nodes, extra, fo) in fanout_sizes {
        let db = fanout::generate(&fanout::FanoutParams {
            nodes,
            extra_edges: extra,
            fanout: fo,
            seed: 1,
        });
        specs.push((
            "fanout".into(),
            format!("nodes={nodes} extra_edges={extra} fanout={fo}"),
            db,
            s.program.clone(),
        ));
    }
    let s = parse_scenario(org::PROGRAM);
    let db = org::generate(&org::OrgParams {
        employees: 400,
        seed: 2,
        ..org::OrgParams::default()
    });
    specs.push(("org".into(), "employees=400".into(), db, s.program.clone()));
    let s = parse_scenario(university::PROGRAM);
    let db = university::generate(&university::UniversityParams {
        professors: 60,
        students: 200,
        seed: 3,
        ..university::UniversityParams::default()
    });
    specs.push((
        "university".into(),
        "professors=60 students=200".into(),
        db,
        s.program.clone(),
    ));

    let mut out = Vec::new();
    for (name, params, db, prog) in &specs {
        // Untimed warmup of both modes.
        time_kernels_once(db, prog, false);
        time_kernels_once(db, prog, true);
        let mut interp_ms = Vec::new();
        let mut kernel_ms = Vec::new();
        let mut interp_rps = 0.0;
        let mut kernel_rps = 0.0;
        let mut kstats = Stats::default();
        let mut rows_idb = 0;
        for _ in 0..runs.max(1) {
            let (ms, rps, _, interp_rows) = time_kernels_once(db, prog, false);
            interp_ms.push(ms);
            interp_rps = rps;
            let (ms, rps, st, kernel_rows) = time_kernels_once(db, prog, true);
            kernel_ms.push(ms);
            kernel_rps = rps;
            kstats = st;
            assert_eq!(interp_rows, kernel_rows, "kernels changed the answer");
            rows_idb = kernel_rows;
        }
        interp_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        kernel_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        out.push(KernelBenchResult {
            name: name.clone(),
            params: params.clone(),
            rows_idb,
            interp_millis: interp_ms[interp_ms.len() / 2],
            kernel_millis: kernel_ms[kernel_ms.len() / 2],
            interp_rows_per_sec: interp_rps,
            kernel_rows_per_sec: kernel_rps,
            kernel_firings: kstats.kernel_firings,
            interp_firings: kstats.interp_firings,
            probes: kstats.probes,
            probe_hits: kstats.probe_hits,
            scratch_hw_bytes: kstats.scratch_hw_bytes,
            dict_probes: kstats.dict_probes,
            dict_memo_hits: kstats.dict_memo_hits,
            dedup_regrows: kstats.dedup_regrows,
        });
    }
    out
}

/// A human-readable kernels-vs-interpreter table.
pub fn kernel_table(results: &[KernelBenchResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} {:<42} {:>10} {:>10} {:>8} {:>11} {:>11} {:>9} {:>10} {:>9} {:>9} {:>8}",
        "kernels",
        "params",
        "interp ms",
        "kernel ms",
        "speedup",
        "krows/s",
        "irows/s",
        "coverage",
        "scratch",
        "dict",
        "memo",
        "regrows"
    );
    for r in results {
        let _ = writeln!(
            s,
            "{:<10} {:<42} {:>10.2} {:>10.2} {:>7.2}x {:>11.0} {:>11.0} {:>8.1}% {:>9}B {:>9} {:>9} {:>8}",
            r.name,
            r.params,
            r.interp_millis,
            r.kernel_millis,
            r.speedup(),
            r.kernel_rows_per_sec,
            r.interp_rows_per_sec,
            100.0 * r.coverage(),
            r.scratch_hw_bytes,
            r.dict_probes,
            r.dict_memo_hits,
            r.dedup_regrows,
        );
    }
    s
}

/// Splices the `kernels` section into an already-serialized benchmark
/// document. Empty input leaves the document unchanged.
pub fn to_json_with_kernels(mut s: String, kernels: &[KernelBenchResult]) -> String {
    if kernels.is_empty() {
        return s;
    }
    let tail = s.rfind("  ]\n}").expect("serializer emits a closing array");
    s.truncate(tail + 3);
    s.push_str(",\n  \"kernels\": [\n");
    for (i, r) in kernels.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"params\": \"{}\", \"rows_idb\": {}, \
             \"interp_millis\": {}, \"kernel_millis\": {}, \
             \"interp_rows_per_sec\": {}, \"kernel_rows_per_sec\": {}, \
             \"speedup\": {}, \"kernel_firings\": {}, \"interp_firings\": {}, \
             \"kernel_coverage\": {}, \
             \"probes\": {}, \"probe_hits\": {}, \"scratch_hw_bytes\": {}, \
             \"dict_probes\": {}, \"dict_memo_hits\": {}, \"dedup_regrows\": {}}}",
            r.name,
            r.params,
            r.rows_idb,
            json_f(r.interp_millis),
            json_f(r.kernel_millis),
            json_f(r.interp_rows_per_sec),
            json_f(r.kernel_rows_per_sec),
            json_f(r.speedup()),
            r.kernel_firings,
            r.interp_firings,
            json_f(r.coverage()),
            r.probes,
            r.probe_hits,
            r.scratch_hw_bytes,
            r.dict_probes,
            r.dict_memo_hits,
            r.dedup_regrows
        );
        s.push_str(if i + 1 < kernels.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// One end-to-end semantic-optimization measurement: the same workload
/// evaluated with the rectified original program vs the `core`
/// optimizer's residue-eliminated output.
#[derive(Clone, Debug)]
pub struct SemanticResult {
    /// Scenario name.
    pub scenario: String,
    /// Generator parameter label.
    pub params: String,
    /// Median fixpoint milliseconds of the original (rectified) program.
    pub original_millis: f64,
    /// Median fixpoint milliseconds of the optimized program.
    pub optimized_millis: f64,
    /// Rows scanned by the original program.
    pub original_rows: u64,
    /// Rows scanned by the optimized program.
    pub optimized_rows: u64,
    /// IDB tuples of the checked answer predicate (identical in both).
    pub rows_idb: usize,
}

impl SemanticResult {
    /// Wall-time speedup of the optimized program (> 1 means it wins).
    pub fn speedup(&self) -> f64 {
        self.original_millis / self.optimized_millis.max(1e-9)
    }
}

/// Runs the end-to-end semantic speedup bench: the fanout scenario's
/// guarded-reachability program (the paper's k=1 residue-based atom
/// elimination, DESIGN §4) timed original-vs-optimized on the fast
/// engine. This is the number the whole repo exists to improve: a
/// residue-eliminated join must save more time than evaluation overhead
/// costs.
pub fn run_semantic_bench(quick: bool) -> Vec<SemanticResult> {
    let runs = if quick { 1 } else { 3 };
    let s = parse_scenario(fanout::PROGRAM);
    let plan = semrec_core::optimizer::Optimizer::new(&s.program)
        .with_constraints(&s.constraints)
        .run()
        .expect("fanout scenario optimizes");

    let sizes: &[(usize, usize, usize)] = if quick {
        &[(150, 80, 64)]
    } else {
        &[(150, 80, 64), (300, 160, 64)]
    };
    let mut out = Vec::new();
    for &(nodes, extra, fo) in sizes {
        let db = fanout::generate(&fanout::FanoutParams {
            nodes,
            extra_edges: extra,
            fanout: fo,
            seed: 1,
        });
        let mut orig_ms = Vec::new();
        let mut opt_ms = Vec::new();
        let mut orig_rows = 0;
        let mut opt_rows = 0;
        let mut rows_idb = 0;
        for _ in 0..runs.max(1) {
            let t = Instant::now();
            let base = evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap();
            orig_ms.push(t.elapsed().as_secs_f64() * 1e3);
            let t = Instant::now();
            let opt = evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap();
            opt_ms.push(t.elapsed().as_secs_f64() * 1e3);
            assert_eq!(
                base.relation("reach").unwrap().sorted_tuples(),
                opt.relation("reach").unwrap().sorted_tuples(),
                "optimized program diverged on reach"
            );
            orig_rows = base.stats.rows_scanned;
            opt_rows = opt.stats.rows_scanned;
            rows_idb = base.relation("reach").unwrap().len();
        }
        orig_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        opt_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        out.push(SemanticResult {
            scenario: "fanout".to_owned(),
            params: format!("nodes={nodes} extra_edges={extra} fanout={fo}"),
            original_millis: orig_ms[orig_ms.len() / 2],
            optimized_millis: opt_ms[opt_ms.len() / 2],
            original_rows: orig_rows,
            optimized_rows: opt_rows,
            rows_idb,
        });
    }
    out
}

/// One governance-overhead measurement: the identical workload evaluated
/// with no budget vs a fully-armed budget that never trips (deadline,
/// row cap, byte cap, cancel token), isolating the cost of the checks
/// themselves — the round-boundary accounting plus the per-1024-row
/// cooperative deadline/cancel poll.
#[derive(Clone, Debug)]
pub struct GovernanceResult {
    /// Workload name.
    pub workload: String,
    /// Generator parameter label.
    pub params: String,
    /// Median fixpoint milliseconds without any budget.
    pub ungoverned_millis: f64,
    /// Median fixpoint milliseconds under the never-tripping budget.
    pub governed_millis: f64,
    /// IDB tuples out (identical in both).
    pub rows_idb: usize,
}

impl GovernanceResult {
    /// Governance overhead in percent (> 0 means governed is slower).
    pub fn overhead_pct(&self) -> f64 {
        (self.governed_millis / self.ungoverned_millis.max(1e-9) - 1.0) * 100.0
    }
}

fn time_governance_once(db: &Database, prog: &Program, governed: bool) -> (f64, usize) {
    let start = Instant::now();
    let mut ev = Evaluator::new(db, prog, Strategy::SemiNaive).unwrap();
    if governed {
        ev = ev
            .with_budget(
                Budget::unlimited()
                    .with_deadline(std::time::Duration::from_secs(3600))
                    .with_max_idb_rows(u64::MAX)
                    .with_max_resident_bytes(u64::MAX),
            )
            .with_cancel_token(CancelToken::new());
    }
    ev.run().unwrap();
    let millis = start.elapsed().as_secs_f64() * 1e3;
    let out: usize = ev.finish().idb.values().map(|r| r.len()).sum();
    (millis, out)
}

/// Measures governance overhead on the E1 fanout scenario (EXPERIMENTS.md
/// expects < 2%). Governed and ungoverned runs are interleaved so slow
/// machine drift hits both sides equally.
pub fn run_governance_bench(quick: bool) -> Vec<GovernanceResult> {
    let runs = if quick { 3 } else { 5 };
    let sizes: &[(usize, usize, usize)] = if quick {
        &[(150, 80, 64)]
    } else {
        &[(150, 80, 64), (300, 160, 64)]
    };
    let s = parse_scenario(fanout::PROGRAM);
    let mut out = Vec::new();
    for &(nodes, extra, fo) in sizes {
        let db = fanout::generate(&fanout::FanoutParams {
            nodes,
            extra_edges: extra,
            fanout: fo,
            seed: 1,
        });
        // Warmup both paths untimed.
        time_governance_once(&db, &s.program, false);
        time_governance_once(&db, &s.program, true);
        let mut plain = Vec::new();
        let mut governed = Vec::new();
        let mut rows_idb = 0;
        for _ in 0..runs {
            let (ms, out_rows) = time_governance_once(&db, &s.program, false);
            plain.push(ms);
            let (ms, gov_rows) = time_governance_once(&db, &s.program, true);
            governed.push(ms);
            assert_eq!(out_rows, gov_rows, "governed run changed the answer");
            rows_idb = out_rows;
        }
        plain.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        governed.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        out.push(GovernanceResult {
            workload: "fanout".to_owned(),
            params: format!("nodes={nodes} extra_edges={extra} fanout={fo}"),
            ungoverned_millis: plain[plain.len() / 2],
            governed_millis: governed[governed.len() / 2],
            rows_idb,
        });
    }
    out
}

/// A human-readable governance-overhead table.
pub fn governance_table(results: &[GovernanceResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} {:<42} {:>12} {:>12} {:>9}",
        "governance", "params", "plain ms", "governed ms", "overhead"
    );
    for r in results {
        let _ = writeln!(
            s,
            "{:<10} {:<42} {:>12.2} {:>12.2} {:>8.2}%",
            r.workload,
            r.params,
            r.ungoverned_millis,
            r.governed_millis,
            r.overhead_pct(),
        );
    }
    s
}

/// The `--assert-scaling` gate: on every workload with at least
/// [`SCALING_MIN_IDB_ROWS`] IDB rows, 4-thread time must not exceed
/// 1-thread time by more than [`SCALING_MAX_RATIO`]. Returns a summary
/// of the checked workloads, or a report of the violations.
pub fn check_scaling(results: &[WorkloadResult]) -> Result<String, String> {
    let mut checked = 0usize;
    let mut violations = String::new();
    for w in results {
        if w.rows_idb < SCALING_MIN_IDB_ROWS {
            continue;
        }
        let ms = |n: usize| w.timings.iter().find(|t| t.threads == n).map(|t| t.millis);
        let (Some(t1), Some(t4)) = (ms(1), ms(4)) else {
            continue;
        };
        checked += 1;
        if t4 > t1 * SCALING_MAX_RATIO {
            let _ = writeln!(
                violations,
                "  {} {}: t4 {:.2} ms > {:.0}% of t1 {:.2} ms (ratio {:.2})",
                w.name,
                w.params,
                t4,
                SCALING_MAX_RATIO * 100.0,
                t1,
                t4 / t1.max(1e-9),
            );
        }
    }
    if violations.is_empty() {
        Ok(format!(
            "scaling gate: {checked} workload(s) with rows_idb >= {SCALING_MIN_IDB_ROWS} \
             within {:.0}% of serial",
            SCALING_MAX_RATIO * 100.0
        ))
    } else {
        Err(format!(
            "scaling gate FAILED (t4 > {:.0}% of t1 on rows_idb >= {SCALING_MIN_IDB_ROWS}):\n{violations}",
            SCALING_MAX_RATIO * 100.0
        ))
    }
}

/// CI gate: every kernel-bench workload must route at least `min_pct`
/// percent of its plan executions through the batch kernels (see
/// [`KernelBenchResult::coverage`]). Returns a pass summary or a
/// per-workload violation report.
pub fn check_kernel_coverage(
    results: &[KernelBenchResult],
    min_pct: f64,
) -> Result<String, String> {
    let mut violations = String::new();
    for r in results {
        let pct = 100.0 * r.coverage();
        if pct < min_pct {
            let _ = writeln!(
                violations,
                "  {} {}: coverage {:.1}% < {:.0}% ({} kernel vs {} interpreter firings)",
                r.name, r.params, pct, min_pct, r.kernel_firings, r.interp_firings,
            );
        }
    }
    if violations.is_empty() {
        Ok(format!(
            "kernel coverage gate: {} workload(s) at >= {min_pct:.0}% kernel firings",
            results.len()
        ))
    } else {
        Err(format!(
            "kernel coverage gate FAILED (< {min_pct:.0}% of plan executions through kernels):\n{violations}"
        ))
    }
}

/// CI gate: no kernel-bench workload may exceed `max_regrows` mid-drain
/// dedup-table rehashes (`dedup_regrows`) in its kernels-enabled run —
/// `--assert-no-regrow 0` pins the EWMA pre-sizing promise on the gen
/// workloads. Returns a pass summary or a per-workload violation report.
pub fn check_no_regrow(results: &[KernelBenchResult], max_regrows: u64) -> Result<String, String> {
    let mut violations = String::new();
    for r in results {
        if r.dedup_regrows > max_regrows {
            let _ = writeln!(
                violations,
                "  {} {}: dedup_regrows {} > {max_regrows}",
                r.name, r.params, r.dedup_regrows,
            );
        }
    }
    if violations.is_empty() {
        Ok(format!(
            "regrow gate: {} workload(s) at <= {max_regrows} mid-drain dedup rehashes",
            results.len()
        ))
    } else {
        Err(format!(
            "regrow gate FAILED (dedup pre-sizing missed; drains rehashed mid-insert):\n{violations}"
        ))
    }
}

/// One dictionary-map microbenchmark row: [`CodeMap`] vs `PrehashedMap`
/// over the same synthetic key population, nanoseconds per operation.
/// "Insert" builds the map from empty; "hit" looks up every resident
/// key; "miss" looks up as many absent keys.
#[derive(Clone, Debug)]
pub struct DictBenchResult {
    /// Resident keys in the map.
    pub keys: usize,
    /// ns/op building a `CodeMap` from empty.
    pub codemap_insert_ns: f64,
    /// ns/op for resident-key lookups on `CodeMap`.
    pub codemap_hit_ns: f64,
    /// ns/op for absent-key lookups on `CodeMap`.
    pub codemap_miss_ns: f64,
    /// ns/op building a `PrehashedMap` from empty.
    pub prehashed_insert_ns: f64,
    /// ns/op for resident-key lookups on `PrehashedMap`.
    pub prehashed_hit_ns: f64,
    /// ns/op for absent-key lookups on `PrehashedMap`.
    pub prehashed_miss_ns: f64,
}

/// Runs the `harness dict` microbenchmark: `CodeMap` vs the
/// `PrehashedMap` it replaced as the dictionary-encoding map, on
/// insert / lookup-hit / lookup-miss mixes at 1k / 100k / 1M resident
/// keys (`quick` drops the 1M row). Key `i` hashes via `hash_one(i)` —
/// the same Fx mixing the relation stores use — and codes are the key
/// indices, so the `CodeMap` equality closure is an O(1) array check,
/// isolating the probe-walk cost the tables differ on.
pub fn run_dict_bench(quick: bool) -> Vec<DictBenchResult> {
    let sizes: &[usize] = if quick {
        &[1_000, 100_000]
    } else {
        &[1_000, 100_000, 1_000_000]
    };
    let mut out = Vec::new();
    for &n in sizes {
        // Repeat small populations so every cell measures a similar
        // total op count (≥ ~1M) and the per-op quotient is stable.
        let reps = (1_000_000 / n).max(1);
        let hashes: Vec<u64> = (0..2 * n as u64).map(hash_one).collect();
        let per_op = |nanos: u128| nanos as f64 / (reps * n) as f64;

        let mut cm = CodeMap::default();
        let t = Instant::now();
        for _ in 0..reps {
            cm.clear();
            for (i, &h) in hashes.iter().enumerate().take(n) {
                cm.insert(h, i as u32, |c| hashes[c as usize]);
            }
        }
        let codemap_insert_ns = per_op(t.elapsed().as_nanos());
        let mut found = 0u64;
        let t = Instant::now();
        for _ in 0..reps {
            for (i, &h) in hashes.iter().enumerate().take(n) {
                found += u64::from(cm.get(h, |c| c as usize == i).is_some());
            }
        }
        let codemap_hit_ns = per_op(t.elapsed().as_nanos());
        assert_eq!(std::hint::black_box(found), (reps * n) as u64);
        let t = Instant::now();
        for _ in 0..reps {
            for (i, &h) in hashes.iter().enumerate().skip(n) {
                found += u64::from(cm.get(h, |c| c as usize == i).is_some());
            }
        }
        let codemap_miss_ns = per_op(t.elapsed().as_nanos());
        assert_eq!(std::hint::black_box(found), (reps * n) as u64, "misses hit");

        let mut pm: PrehashedMap<u32> = PrehashedMap::default();
        let t = Instant::now();
        for _ in 0..reps {
            pm.clear();
            for (i, &h) in hashes.iter().enumerate().take(n) {
                pm.insert(h, i as u32);
            }
        }
        let prehashed_insert_ns = per_op(t.elapsed().as_nanos());
        let mut found = 0u64;
        let t = Instant::now();
        for _ in 0..reps {
            for h in hashes.iter().take(n) {
                found += u64::from(pm.contains_key(h));
            }
        }
        let prehashed_hit_ns = per_op(t.elapsed().as_nanos());
        assert_eq!(std::hint::black_box(found), (reps * n) as u64);
        let t = Instant::now();
        for _ in 0..reps {
            for h in hashes.iter().skip(n) {
                found += u64::from(pm.contains_key(h));
            }
        }
        let prehashed_miss_ns = per_op(t.elapsed().as_nanos());
        assert_eq!(std::hint::black_box(found), (reps * n) as u64, "misses hit");

        out.push(DictBenchResult {
            keys: n,
            codemap_insert_ns,
            codemap_hit_ns,
            codemap_miss_ns,
            prehashed_insert_ns,
            prehashed_hit_ns,
            prehashed_miss_ns,
        });
    }
    out
}

/// A human-readable dictionary-microbenchmark table (ns per operation).
pub fn dict_table(results: &[DictBenchResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "dict", "keys", "cm ins", "cm hit", "cm miss", "pm ins", "pm hit", "pm miss"
    );
    for r in results {
        let _ = writeln!(
            s,
            "{:<10} {:>10} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            "ns/op",
            r.keys,
            r.codemap_insert_ns,
            r.codemap_hit_ns,
            r.codemap_miss_ns,
            r.prehashed_insert_ns,
            r.prehashed_hit_ns,
            r.prehashed_miss_ns,
        );
    }
    s
}

/// Splices the `dict` section into an already-serialized benchmark
/// document. Empty input leaves the document unchanged.
pub fn to_json_with_dict(mut s: String, dict: &[DictBenchResult]) -> String {
    if dict.is_empty() {
        return s;
    }
    let tail = s.rfind("  ]\n}").expect("serializer emits a closing array");
    s.truncate(tail + 3);
    s.push_str(",\n  \"dict\": [\n");
    for (i, r) in dict.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"keys\": {}, \"codemap_insert_ns\": {}, \"codemap_hit_ns\": {}, \
             \"codemap_miss_ns\": {}, \"prehashed_insert_ns\": {}, \
             \"prehashed_hit_ns\": {}, \"prehashed_miss_ns\": {}}}",
            r.keys,
            json_f(r.codemap_insert_ns),
            json_f(r.codemap_hit_ns),
            json_f(r.codemap_miss_ns),
            json_f(r.prehashed_insert_ns),
            json_f(r.prehashed_hit_ns),
            json_f(r.prehashed_miss_ns)
        );
        s.push_str(if i + 1 < dict.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_owned()
    }
}

/// Serializes results as JSON (hand-rolled: offline-build policy).
/// `semantic` may be empty (the section is omitted for compatibility
/// with older baselines).
pub fn to_json_with_semantic(results: &[WorkloadResult], semantic: &[SemanticResult]) -> String {
    let mut s = to_json(results);
    if semantic.is_empty() {
        return s;
    }
    // Splice the semantic section before the closing brace.
    let tail = s.rfind("  ]\n}").expect("to_json emits its workload array");
    s.truncate(tail + 3); // keep `  ]`, drop the newline and closing brace
    s.push_str(",\n  \"semantic\": [\n");
    for (i, r) in semantic.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"scenario\": \"{}\", \"params\": \"{}\", \"original_millis\": {}, \
             \"optimized_millis\": {}, \"speedup\": {}, \"original_rows\": {}, \
             \"optimized_rows\": {}, \"rows_idb\": {}}}",
            r.scenario,
            r.params,
            json_f(r.original_millis),
            json_f(r.optimized_millis),
            json_f(r.speedup()),
            r.original_rows,
            r.optimized_rows,
            r.rows_idb
        );
        s.push_str(if i + 1 < semantic.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Serializes the full benchmark document — workloads, semantic
/// speedups, and governance overhead. Empty sections are omitted so the
/// JSON stays compatible with older baselines.
pub fn to_json_full(
    results: &[WorkloadResult],
    semantic: &[SemanticResult],
    governance: &[GovernanceResult],
) -> String {
    let mut s = to_json_with_semantic(results, semantic);
    if governance.is_empty() {
        return s;
    }
    // Splice before the closing brace, like the semantic section.
    let tail = s.rfind("  ]\n}").expect("serializer emits a closing array");
    s.truncate(tail + 3);
    s.push_str(",\n  \"governance_overhead\": [\n");
    for (i, r) in governance.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"workload\": \"{}\", \"params\": \"{}\", \"ungoverned_millis\": {}, \
             \"governed_millis\": {}, \"overhead_pct\": {}, \"rows_idb\": {}}}",
            r.workload,
            r.params,
            json_f(r.ungoverned_millis),
            json_f(r.governed_millis),
            json_f(r.overhead_pct()),
            r.rows_idb
        );
        s.push_str(if i + 1 < governance.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

/// A human-readable semantic-speedup table.
pub fn semantic_table(results: &[SemanticResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} {:<42} {:>10} {:>10} {:>8} {:>12}",
        "semantic", "params", "orig ms", "opt ms", "speedup", "rows saved"
    );
    for r in results {
        let _ = writeln!(
            s,
            "{:<10} {:<42} {:>10.2} {:>10.2} {:>7.2}x {:>11.2}x",
            r.scenario,
            r.params,
            r.original_millis,
            r.optimized_millis,
            r.speedup(),
            r.original_rows as f64 / r.optimized_rows.max(1) as f64,
        );
    }
    s
}

/// Serializes results as JSON (hand-rolled: offline-build policy).
pub fn to_json(results: &[WorkloadResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"benchmark\": \"fixpoint\",\n");
    let _ = writeln!(s, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(
        s,
        "  \"strategy\": \"SemiNaive\",\n  \"available_parallelism\": {},",
        std::thread::available_parallelism().map_or(0, usize::from)
    );
    // The benched worker-thread set, so a reader knows which `timings`
    // entries to expect without scanning every workload.
    let mut threads: Vec<usize> = results
        .iter()
        .flat_map(|w| w.timings.iter().map(|t| t.threads))
        .collect();
    threads.sort_unstable();
    threads.dedup();
    let _ = writeln!(
        s,
        "  \"threads\": [{}],",
        threads
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    s.push_str("  \"workloads\": [\n");
    for (i, w) in results.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", w.name);
        let _ = writeln!(s, "      \"params\": \"{}\",", w.params);
        let _ = writeln!(s, "      \"rows_edb\": {},", w.rows_edb);
        let _ = writeln!(s, "      \"rows_idb\": {},", w.rows_idb);
        let _ = writeln!(s, "      \"rounds\": {},", w.rounds);
        s.push_str("      \"timings\": [\n");
        for (j, t) in w.timings.iter().enumerate() {
            let _ = write!(
                s,
                "        {{\"threads\": {}, \"millis\": {}, \"busy_fraction\": {}, \"rows_per_sec\": {}}}",
                t.threads,
                json_f(t.millis),
                json_f(t.busy_fraction),
                json_f(t.rows_per_sec)
            );
            s.push_str(if j + 1 < w.timings.len() { ",\n" } else { "\n" });
        }
        s.push_str("      ]\n");
        s.push_str(if i + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

/// A human-readable summary table.
pub fn to_table(results: &[WorkloadResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:<42} {:>9} {:>9} {:>8} {:>8} {:>8} {:>7}",
        "workload", "params", "edb", "idb", "t1 ms", "t2 ms", "t4 ms", "x4"
    );
    for w in results {
        let ms = |n: usize| {
            w.timings
                .iter()
                .find(|t| t.threads == n)
                .map_or(f64::NAN, |t| t.millis)
        };
        let speedup = ms(1) / ms(4);
        let _ = writeln!(
            s,
            "{:<12} {:<42} {:>9} {:>9} {:>8.2} {:>8.2} {:>8.2} {:>6.2}x",
            w.name,
            w.params,
            w.rows_edb,
            w.rows_idb,
            ms(1),
            ms(2),
            ms(4),
            speedup
        );
    }
    s
}

/// One incremental-maintenance measurement: a single transaction
/// applied to a maintained E1 fanout materialization, vs re-answering
/// the same post-transaction database from scratch.
#[derive(Clone, Debug)]
pub struct IncrementalResult {
    /// Scenario name.
    pub scenario: String,
    /// Generator parameter label.
    pub params: String,
    /// What the transaction did (`insert`, `ic_violating_insert`).
    pub op: String,
    /// Median milliseconds for the incremental update.
    pub update_millis: f64,
    /// Median milliseconds for a from-scratch evaluation of the active
    /// route's program over the post-transaction database.
    pub scratch_millis: f64,
    /// The route answering queries after the update.
    pub route: String,
    /// IDB tuples of the answer predicate after the update.
    pub rows_idb: usize,
}

impl IncrementalResult {
    /// From-scratch / incremental latency ratio (> 1: maintenance wins).
    pub fn speedup(&self) -> f64 {
        self.scratch_millis / self.update_millis.max(1e-9)
    }
}

/// Runs the incremental-maintenance bench on the large E1 fanout
/// workload: a single-tuple clean insert (must be far cheaper than
/// re-evaluating) and an IC-violating insert (pays the route
/// invalidation: the rectified program is rebuilt from scratch, so its
/// latency is the honest worst case).
pub fn run_incremental_bench(quick: bool) -> Vec<IncrementalResult> {
    use semrec_core::maintain::MaintainedQuery;
    use semrec_core::optimizer::OptimizerConfig;
    use semrec_datalog::term::Value;
    use semrec_engine::Tx;

    let runs = if quick { 1 } else { 5 };
    let (nodes, extra, fo) = if quick { (150, 80, 64) } else { (300, 160, 64) };
    let s = parse_scenario(fanout::PROGRAM);
    let params = format!("nodes={nodes} extra_edges={extra} fanout={fo}");
    let db = fanout::generate(&fanout::FanoutParams {
        nodes,
        extra_edges: extra,
        fanout: fo,
        seed: 1,
    });

    // (op, edge to insert): the clean insert targets a witnessed node;
    // the violating one targets a node the generator gave no witness.
    let clean_target = (2..nodes as i64)
        .find(|&b| {
            !db.get("edge".into())
                .is_some_and(|r| r.contains(&[Value::Int(0), Value::Int(b)]))
        })
        .expect("some witnessed node has no edge from 0");
    let ops: [(&str, i64); 2] = [
        ("insert", clean_target),
        ("ic_violating_insert", nodes as i64 + 4242),
    ];

    let mut out = Vec::new();
    for (op, target) in ops {
        let mut update_ms = Vec::new();
        let mut scratch_ms = Vec::new();
        let mut route = String::new();
        let mut rows_idb = 0;
        for _ in 0..runs.max(1) {
            // Fresh materialization per run: each measurement applies
            // the identical transaction to the identical state.
            let mut q = MaintainedQuery::new(
                db.clone(),
                &s.program,
                &s.constraints,
                OptimizerConfig::default(),
                1,
            )
            .expect("fanout scenario optimizes");
            let mut tx = Tx::new();
            tx.insert("edge", vec![Value::Int(0), Value::Int(target)]);
            let t = Instant::now();
            let res = q
                .apply(&tx, Budget::unlimited(), None)
                .expect("unlimited-budget update succeeds");
            update_ms.push(t.elapsed().as_secs_f64() * 1e3);
            route = format!("{:?}", res.route);
            rows_idb = q.relation("reach").map(|r| r.len()).unwrap_or(0);

            // From-scratch comparison: evaluate the active route's
            // program over the post-tx database.
            let program = if q.on_optimized_route() {
                &q.plan().program
            } else {
                &q.plan().rectified
            };
            let t = Instant::now();
            let scratch =
                evaluate(q.db(), program, Strategy::SemiNaive).expect("scratch evaluation");
            scratch_ms.push(t.elapsed().as_secs_f64() * 1e3);
            assert_eq!(
                q.relation("reach").map(|r| r.sorted_tuples()),
                scratch.relation("reach").map(|r| r.sorted_tuples()),
                "maintained answer diverged from scratch"
            );
        }
        update_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        scratch_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        out.push(IncrementalResult {
            scenario: "fanout".to_owned(),
            params: params.clone(),
            op: op.to_owned(),
            update_millis: update_ms[update_ms.len() / 2],
            scratch_millis: scratch_ms[scratch_ms.len() / 2],
            route,
            rows_idb,
        });
    }
    out
}

/// A human-readable incremental-update latency table.
pub fn incremental_table(results: &[IncrementalResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:<20} {:>10} {:>11} {:>8}  route",
        "incremental", "op", "update ms", "scratch ms", "speedup"
    );
    for r in results {
        let _ = writeln!(
            s,
            "{:<12} {:<20} {:>10.3} {:>11.2} {:>7.1}x  {}",
            r.scenario,
            r.op,
            r.update_millis,
            r.scratch_millis,
            r.speedup(),
            r.route
        );
    }
    s
}

/// Splices the `incremental` section into an already-serialized
/// benchmark document (the output of [`to_json_full`]). Empty input
/// leaves the document unchanged.
pub fn to_json_with_incremental(mut s: String, incremental: &[IncrementalResult]) -> String {
    if incremental.is_empty() {
        return s;
    }
    let tail = s.rfind("  ]\n}").expect("serializer emits a closing array");
    s.truncate(tail + 3);
    s.push_str(",\n  \"incremental\": [\n");
    for (i, r) in incremental.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"scenario\": \"{}\", \"params\": \"{}\", \"op\": \"{}\", \
             \"update_millis\": {}, \"scratch_millis\": {}, \"speedup\": {}, \
             \"route\": \"{}\", \"rows_idb\": {}}}",
            r.scenario,
            r.params,
            r.op,
            json_f(r.update_millis),
            json_f(r.scratch_millis),
            json_f(r.speedup()),
            r.route,
            r.rows_idb
        );
        s.push_str(if i + 1 < incremental.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

/// `--assert-routing`: the cost-chosen route may be at most this factor
/// slower than the fixed pre-cost ladder's program…
pub const ROUTING_MAX_SLOWDOWN: f64 = 1.25;
/// …plus this absolute noise floor in milliseconds (sub-ms workloads are
/// scheduling noise, not routing regressions).
pub const ROUTING_NOISE_FLOOR_MS: f64 = 2.0;
/// Maximum tolerated cardinality misprediction ratio
/// (`max(pred, actual) / min(pred, actual)`).
pub const ROUTING_MAX_MISPREDICTION: f64 = 10.0;
/// Routed evaluations at least this slow arm the planning-overhead
/// clause: planning must stay under [`ROUTING_MAX_PLAN_FRACTION`] of
/// evaluation time. Faster rows skip it — a fixed planning cost against
/// a micro-workload measures the workload's size, not the planner.
pub const ROUTING_PLAN_GATE_MIN_MS: f64 = 8.0;
/// Maximum planning time as a fraction of routed evaluation time.
pub const ROUTING_MAX_PLAN_FRACTION: f64 = 0.02;

/// One cost-routing measurement: the planner's chosen alternative for a
/// gen workload, timed against the fixed pre-cost ladder (the
/// optimizer's output program, which every evaluation ran before routes
/// were priced).
#[derive(Clone, Debug)]
pub struct RoutingResult {
    /// Scenario name.
    pub scenario: String,
    /// Generator parameter label.
    pub params: String,
    /// The chosen alternative (`original`, `rectified`, `residue_pushed`,
    /// `magic`).
    pub chosen: String,
    /// The route label evaluation reports for the chosen alternative.
    pub route: String,
    /// Estimated cost (cumulative rows touched) of the chosen plan.
    pub predicted_work: f64,
    /// Estimated fixpoint cardinality of the chosen plan.
    pub predicted_rows: f64,
    /// Measured IDB rows of the chosen plan.
    pub actual_rows: u64,
    /// `max(pred, actual) / min(pred, actual)` (1.0 = exact).
    pub misprediction: f64,
    /// Median fixpoint milliseconds of the cost-chosen program.
    pub routed_millis: f64,
    /// Median fixpoint milliseconds of the fixed ladder's program.
    pub ladder_millis: f64,
    /// Planning wall milliseconds (the memo's `plan_nanos`).
    pub plan_millis: f64,
}

impl RoutingResult {
    /// Planning time as a fraction of routed evaluation time.
    pub fn plan_fraction(&self) -> f64 {
        self.plan_millis / self.routed_millis.max(1e-9)
    }
}

fn route_workload(
    name: &str,
    params: String,
    db: &Database,
    program: &Program,
    plan: &semrec_core::Plan,
    runs: usize,
) -> Option<RoutingResult> {
    use semrec_engine::{CostMemo, EdbStats};
    // Warm the planner untimed: the very first build pays one-time
    // per-generation dictionary-index construction that persists on the
    // relations (the evaluator shares the same indexes). The measured
    // build below — with a *fresh* EdbStats, so every distribution is
    // re-read — is the steady-state replanning cost serve/maintain pay.
    let (warm_alts, _) = semrec_core::route_alternatives(program, plan, None);
    CostMemo::build(db, &mut EdbStats::new(), warm_alts).ok()?;
    let (alts, _) = semrec_core::route_alternatives(program, plan, None);
    let memo = CostMemo::build(db, &mut EdbStats::new(), alts).ok()?;
    let choice = memo.choice();
    let routed_prog = memo.best().program.clone();
    let ladder_prog = plan.program.clone();
    // Warm both programs untimed, then interleave the timed passes so
    // machine drift hits both sides equally (same discipline as the
    // governance bench).
    evaluate(db, &routed_prog, Strategy::SemiNaive).ok()?;
    evaluate(db, &ladder_prog, Strategy::SemiNaive).ok()?;
    let mut routed_ms = Vec::new();
    let mut ladder_ms = Vec::new();
    let mut actual_rows = 0u64;
    for _ in 0..runs.max(1) {
        let t = Instant::now();
        let res = evaluate(db, &routed_prog, Strategy::SemiNaive).ok()?;
        routed_ms.push(t.elapsed().as_secs_f64() * 1e3);
        actual_rows = res.idb.values().map(|r| r.len() as u64).sum();
        let t = Instant::now();
        evaluate(db, &ladder_prog, Strategy::SemiNaive).ok()?;
        ladder_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    routed_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ladder_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Some(RoutingResult {
        scenario: name.to_owned(),
        params,
        chosen: choice.chosen.name().to_owned(),
        route: format!("{:?}", choice.chosen.route()),
        predicted_work: choice.predicted_work,
        predicted_rows: choice.predicted_rows,
        actual_rows,
        misprediction: choice.misprediction(actual_rows),
        routed_millis: routed_ms[routed_ms.len() / 2],
        ladder_millis: ladder_ms[ladder_ms.len() / 2],
        plan_millis: choice.plan_nanos as f64 / 1e6,
    })
}

/// Runs the cost-routing bench: every gen scenario is optimized, its
/// route alternatives priced by the [`semrec_engine::CostMemo`], and the
/// chosen program timed against the fixed pre-cost ladder. The large
/// fanout size runs even in quick mode — it is the workload slow enough
/// to arm [`check_routing`]'s planning-overhead clause.
pub fn run_routing_bench(quick: bool) -> Vec<RoutingResult> {
    use semrec_core::optimizer::Optimizer;
    let runs = if quick { 3 } else { 5 };
    let mut out = Vec::new();

    let s = parse_scenario(fanout::PROGRAM);
    if let Ok(plan) = Optimizer::new(&s.program)
        .with_constraints(&s.constraints)
        .run()
    {
        for &(nodes, extra, fo) in &[(150usize, 80usize, 64usize), (300, 160, 64)] {
            let db = fanout::generate(&fanout::FanoutParams {
                nodes,
                extra_edges: extra,
                fanout: fo,
                seed: 1,
            });
            out.extend(route_workload(
                "fanout",
                format!("nodes={nodes} extra_edges={extra} fanout={fo}"),
                &db,
                &s.program,
                &plan,
                runs,
            ));
        }
    }

    let s = parse_scenario(org::PROGRAM);
    if let Ok(plan) = Optimizer::new(&s.program)
        .with_constraints(&s.constraints)
        .run()
    {
        let db = org::generate(&org::OrgParams {
            employees: 400,
            seed: 2,
            ..org::OrgParams::default()
        });
        out.extend(route_workload(
            "org",
            "employees=400".to_owned(),
            &db,
            &s.program,
            &plan,
            runs,
        ));
    }

    let s = parse_scenario(university::PROGRAM);
    if let Ok(plan) = Optimizer::new(&s.program)
        .with_constraints(&s.constraints)
        .run()
    {
        let db = university::generate(&university::UniversityParams {
            professors: 60,
            students: 200,
            seed: 3,
            ..university::UniversityParams::default()
        });
        out.extend(route_workload(
            "university",
            "professors=60 students=200".to_owned(),
            &db,
            &s.program,
            &plan,
            runs,
        ));
    }
    out
}

/// A human-readable cost-routing table.
pub fn routing_table(results: &[RoutingResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} {:<34} {:<14} {:>10} {:>9} {:>8} {:>9} {:>9} {:>8}",
        "routing", "params", "chosen", "est work", "rows", "mispred", "routed", "ladder", "plan ms"
    );
    for r in results {
        let _ = writeln!(
            s,
            "{:<10} {:<34} {:<14} {:>10.0} {:>9} {:>7.2}x {:>9.2} {:>9.2} {:>8.3}",
            r.scenario,
            r.params,
            r.chosen,
            r.predicted_work,
            r.actual_rows,
            r.misprediction,
            r.routed_millis,
            r.ladder_millis,
            r.plan_millis,
        );
    }
    s
}

/// The `--assert-routing` gate: on every routing workload the chosen
/// route must run no slower than [`ROUTING_MAX_SLOWDOWN`] × the fixed
/// ladder (plus [`ROUTING_NOISE_FLOOR_MS`]), the cardinality estimate
/// must land within [`ROUTING_MAX_MISPREDICTION`]× of the measured
/// rows, and — on workloads slow enough to arm the clause — planning
/// must cost under [`ROUTING_MAX_PLAN_FRACTION`] of evaluation time.
/// Arming zero planning-overhead checks is itself an error: the gate
/// would otherwise silently stop pinning the <2% promise.
pub fn check_routing(results: &[RoutingResult]) -> Result<String, String> {
    if results.is_empty() {
        return Err("routing gate FAILED: no routing workload ran".to_owned());
    }
    let mut violations = String::new();
    let mut plan_checked = 0usize;
    for r in results {
        let cap = r.ladder_millis * ROUTING_MAX_SLOWDOWN + ROUTING_NOISE_FLOOR_MS;
        if r.routed_millis > cap {
            let _ = writeln!(
                violations,
                "  {} {}: routed ({}) {:.2} ms > {:.2} ms cap (ladder {:.2} ms)",
                r.scenario, r.params, r.chosen, r.routed_millis, cap, r.ladder_millis,
            );
        }
        if !r.misprediction.is_finite() || r.misprediction > ROUTING_MAX_MISPREDICTION {
            let _ = writeln!(
                violations,
                "  {} {}: misprediction {:.2}x > {ROUTING_MAX_MISPREDICTION}x \
                 (predicted {:.0} rows, actual {})",
                r.scenario, r.params, r.misprediction, r.predicted_rows, r.actual_rows,
            );
        }
        if r.routed_millis >= ROUTING_PLAN_GATE_MIN_MS {
            plan_checked += 1;
            if r.plan_fraction() > ROUTING_MAX_PLAN_FRACTION {
                let _ = writeln!(
                    violations,
                    "  {} {}: planning {:.3} ms is {:.1}% of the {:.2} ms evaluation \
                     (cap {:.0}%)",
                    r.scenario,
                    r.params,
                    r.plan_millis,
                    100.0 * r.plan_fraction(),
                    r.routed_millis,
                    100.0 * ROUTING_MAX_PLAN_FRACTION,
                );
            }
        }
    }
    if plan_checked == 0 {
        let _ = writeln!(
            violations,
            "  no workload reached {ROUTING_PLAN_GATE_MIN_MS} ms routed time; the \
             planning-overhead clause never armed"
        );
    }
    if violations.is_empty() {
        Ok(format!(
            "routing gate: {} workload(s) routed within {:.0}% of the fixed ladder, \
             estimates within {ROUTING_MAX_MISPREDICTION}x, planning under {:.0}% of \
             evaluation on {plan_checked} workload(s)",
            results.len(),
            (ROUTING_MAX_SLOWDOWN - 1.0) * 100.0,
            100.0 * ROUTING_MAX_PLAN_FRACTION,
        ))
    } else {
        Err(format!("routing gate FAILED:\n{violations}"))
    }
}

/// Splices the `routing` section into an already-serialized benchmark
/// document. Empty input leaves the document unchanged.
pub fn to_json_with_routing(mut s: String, routing: &[RoutingResult]) -> String {
    if routing.is_empty() {
        return s;
    }
    let tail = s.rfind("  ]\n}").expect("serializer emits a closing array");
    s.truncate(tail + 3);
    s.push_str(",\n  \"routing\": [\n");
    for (i, r) in routing.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"scenario\": \"{}\", \"params\": \"{}\", \"chosen\": \"{}\", \
             \"route\": \"{}\", \"predicted_work\": {}, \"predicted_rows\": {}, \
             \"actual_rows\": {}, \"misprediction\": {}, \"routed_millis\": {}, \
             \"ladder_millis\": {}, \"plan_millis\": {}}}",
            r.scenario,
            r.params,
            r.chosen,
            r.route,
            json_f(r.predicted_work),
            json_f(r.predicted_rows),
            r.actual_rows,
            json_f(r.misprediction),
            json_f(r.routed_millis),
            json_f(r.ladder_millis),
            json_f(r.plan_millis),
        );
        s.push_str(if i + 1 < routing.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_runs_and_serializes() {
        let results = run_fixpoint_bench(true);
        assert!(results.len() >= 3, "at least 3 workloads");
        for w in &results {
            assert!(w.rows_idb > 0, "{} derived nothing", w.name);
            assert_eq!(w.timings.len(), 3);
            for t in &w.timings {
                // Satellite: serial rows must report wall-time throughput
                // so the JSON is comparable across thread counts.
                assert!(
                    t.rows_per_sec > 0.0,
                    "{} threads={} has rows_per_sec=0",
                    w.name,
                    t.threads
                );
                assert!(
                    t.busy_fraction > 0.0,
                    "{} threads={} has busy_fraction=0",
                    w.name,
                    t.threads
                );
            }
        }
        let json = to_json(&results);
        assert!(json.contains("\"fanout\""));
        assert!(json.contains("\"threads\": 4"));
        // Sanity: balanced braces/brackets.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let table = to_table(&results);
        assert!(table.contains("university"));
        // The fresh JSON must round-trip through the baseline reader.
        let parsed = crate::baseline::parse_baseline(&json).expect("fresh JSON parses");
        assert_eq!(parsed.len(), results.len());
        let diff = crate::baseline::diff_table(&results, &parsed);
        assert!(diff.contains("1.00x"), "self-diff is 1.00x:\n{diff}");
    }

    #[test]
    fn semantic_bench_runs_and_splices_into_json() {
        let semantic = run_semantic_bench(true);
        assert!(!semantic.is_empty());
        for r in &semantic {
            assert!(r.rows_idb > 0);
            assert!(
                r.optimized_rows < r.original_rows,
                "atom elimination must scan fewer rows: {r:?}"
            );
        }
        let w = WorkloadResult {
            name: "x".into(),
            params: "p".into(),
            rows_edb: 1,
            rows_idb: 1,
            rounds: 1,
            timings: vec![Timing {
                threads: 1,
                millis: 1.0,
                busy_fraction: 1.0,
                rows_per_sec: 1.0,
            }],
        };
        let json = to_json_with_semantic(&[w], &semantic);
        assert!(json.contains("\"semantic\""));
        assert!(json.contains("\"optimized_millis\""));
        // Still valid JSON per our own reader, with the workloads intact.
        let doc = crate::baseline::parse_json(&json).expect("spliced JSON parses");
        assert!(doc.get("workloads").is_some());
        assert_eq!(
            doc.get("semantic").and_then(|s| s.as_arr()).map(<[_]>::len),
            Some(semantic.len())
        );
    }

    #[test]
    fn governance_bench_runs_and_splices_into_json() {
        let governance = run_governance_bench(true);
        assert!(!governance.is_empty());
        for r in &governance {
            assert!(r.rows_idb > 0);
            assert!(r.overhead_pct().is_finite());
        }
        let w = WorkloadResult {
            name: "x".into(),
            params: "p".into(),
            rows_edb: 1,
            rows_idb: 1,
            rounds: 1,
            timings: vec![Timing {
                threads: 1,
                millis: 1.0,
                busy_fraction: 1.0,
                rows_per_sec: 1.0,
            }],
        };
        let sem = SemanticResult {
            scenario: "s".into(),
            params: "p".into(),
            original_millis: 2.0,
            optimized_millis: 1.0,
            original_rows: 2,
            optimized_rows: 1,
            rows_idb: 1,
        };
        // All three sections coexist and the document still parses.
        let json = to_json_full(std::slice::from_ref(&w), &[sem], &governance);
        assert!(json.contains("\"semantic\""));
        assert!(json.contains("\"governance_overhead\""));
        let doc = crate::baseline::parse_json(&json).expect("full JSON parses");
        assert_eq!(
            doc.get("governance_overhead")
                .and_then(|g| g.as_arr())
                .map(<[_]>::len),
            Some(governance.len())
        );
        // Governance without semantic also parses.
        let doc = crate::baseline::parse_json(&to_json_full(&[w], &[], &governance))
            .expect("governance-only JSON parses");
        assert!(doc.get("semantic").is_none());
        assert!(doc.get("governance_overhead").is_some());
    }

    #[test]
    fn routing_bench_runs_gates_and_splices_into_json() {
        use crate::baseline::Json;
        let routing = run_routing_bench(true);
        assert!(
            routing.len() >= 4,
            "two fanout sizes + org + university expected: {routing:?}"
        );
        let fanout_large = routing
            .iter()
            .find(|r| r.scenario == "fanout" && r.params.contains("nodes=300"))
            .expect("large fanout runs even in quick mode");
        // The paper's rewrite is the cheap one on fanout; the planner
        // must find it.
        assert_eq!(fanout_large.chosen, "residue_pushed", "{routing:?}");
        match check_routing(&routing) {
            Ok(summary) => assert!(summary.contains("routing gate"), "{summary}"),
            Err(report) => panic!("{report}\n{}", routing_table(&routing)),
        }
        let table = routing_table(&routing);
        assert!(table.contains("residue_pushed"), "{table}");
        let w = WorkloadResult {
            name: "x".into(),
            params: "p".into(),
            rows_edb: 1,
            rows_idb: 1,
            rounds: 1,
            timings: vec![Timing {
                threads: 1,
                millis: 1.0,
                busy_fraction: 1.0,
                rows_per_sec: 1.0,
            }],
        };
        let json = to_json_with_routing(to_json(std::slice::from_ref(&w)), &routing);
        assert!(json.contains("\"routing\""));
        let doc = crate::baseline::parse_json(&json).expect("routing JSON parses");
        assert_eq!(
            doc.get("routing").and_then(|r| r.as_arr()).map(<[_]>::len),
            Some(routing.len())
        );
        let first = &doc.get("routing").unwrap().as_arr().unwrap()[0];
        assert!(first.get("chosen").and_then(Json::as_str).is_some());
        assert!(first.get("misprediction").and_then(Json::as_num).is_some());
    }

    #[test]
    fn routing_gate_flags_each_violation_class() {
        let ok = RoutingResult {
            scenario: "s".into(),
            params: "p".into(),
            chosen: "residue_pushed".into(),
            route: "Optimized".into(),
            predicted_work: 100.0,
            predicted_rows: 120.0,
            actual_rows: 100,
            misprediction: 1.2,
            routed_millis: 10.0,
            ladder_millis: 10.0,
            plan_millis: 0.1,
        };
        assert!(check_routing(std::slice::from_ref(&ok)).is_ok());
        // An empty run can't silently pass.
        assert!(check_routing(&[]).is_err());
        // Routed slower than the ladder cap.
        let slow = RoutingResult {
            routed_millis: 20.0,
            ..ok.clone()
        };
        assert!(check_routing(&[slow]).unwrap_err().contains("cap"));
        // A wild cardinality estimate.
        let wild = RoutingResult {
            misprediction: 50.0,
            ..ok.clone()
        };
        assert!(check_routing(&[wild])
            .unwrap_err()
            .contains("misprediction"));
        // Planning overhead above the fraction cap.
        let heavy = RoutingResult {
            plan_millis: 1.0,
            ..ok.clone()
        };
        assert!(check_routing(&[heavy]).unwrap_err().contains("planning"));
        // Only fast workloads: the plan clause never arms, which fails
        // rather than silently disarming the <2% promise.
        let fast = RoutingResult {
            routed_millis: 1.0,
            ladder_millis: 1.0,
            ..ok
        };
        assert!(check_routing(&[fast]).unwrap_err().contains("never armed"));
    }

    #[test]
    fn scaling_gate_flags_regressions_and_passes_parity() {
        let mk = |t1: f64, t4: f64, idb: usize| WorkloadResult {
            name: "w".into(),
            params: format!("idb={idb}"),
            rows_edb: 0,
            rows_idb: idb,
            rounds: 1,
            timings: [1usize, 4]
                .iter()
                .zip([t1, t4])
                .map(|(&threads, millis)| Timing {
                    threads,
                    millis,
                    busy_fraction: 1.0,
                    rows_per_sec: 1.0,
                })
                .collect(),
        };
        // Parity and genuine speedup pass.
        assert!(check_scaling(&[mk(100.0, 100.0, 60_000), mk(100.0, 60.0, 60_000)]).is_ok());
        // Small workloads are exempt however bad the ratio.
        assert!(check_scaling(&[mk(1.0, 3.0, 100)]).is_ok());
        // A large workload 2x over serial fails.
        let err = check_scaling(&[mk(100.0, 200.0, 60_000)]).unwrap_err();
        assert!(err.contains("FAILED"), "{err}");
        assert!(err.contains("idb=60000"), "{err}");
    }
}
