//! Serving-daemon benchmark (`harness serve-bench`): read latency
//! percentiles and throughput against a live [`semrec_serve::Server`],
//! commit latency on the single-writer path, and overload shedding
//! under a deliberately tiny admission gate — emitted as
//! `BENCH_serve.json` at the repo root.
//!
//! The artifact carries its own schema version ([`SERVE_SCHEMA_VERSION`],
//! independent of the fixpoint bench's) so `check.sh` can fail on a
//! stale checked-in file, and records the box's
//! `available_parallelism` plus the evaluator thread count the run
//! used, so cross-machine numbers are interpretable.

use crate::baseline::{parse_json, Json};
use semrec_datalog::atom::Atom;
use semrec_datalog::parser::{parse_atom, parse_unit, Unit};
use semrec_engine::{int_tuple, Tuning, Tx};
use semrec_serve::{AdmissionConfig, ServeConfig, ServeError, Server};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Schema version of `BENCH_serve.json`. Bump whenever a field the
/// `check.sh` serve leg reads is added or changed; the leg fails when
/// the checked-in artifact's version differs, forcing a regeneration
/// with `harness serve-bench --json` in the same PR.
///
/// v2 added the indexed-read sections (`read_indexed`, `read_scan`),
/// the `answer_cache` section, and the `batched_write` section; v1
/// artifacts predate the indexed serve read path and are rejected.
pub const SERVE_SCHEMA_VERSION: u64 = 2;

/// One timed section's latency digest, microseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyDigest {
    /// Samples taken.
    pub count: usize,
    /// Median latency.
    pub p50_us: f64,
    /// 99th-percentile latency.
    pub p99_us: f64,
    /// Operations per second over the section's wall clock.
    pub per_sec: f64,
}

/// Everything one `serve-bench` run measured.
#[derive(Clone, Debug, Default)]
pub struct ServeBenchResult {
    /// Chain length of the workload EDB.
    pub chain: usize,
    /// Evaluator worker threads the daemon ran with.
    pub threads: usize,
    /// Single-client read latency/throughput at the latest epoch
    /// (server defaults: index + cache on, same goal repeated).
    pub read: LatencyDigest,
    /// Commit latency/throughput on the writer path (WAL off: the run
    /// measures the apply+publish pipeline, not this box's fsync).
    pub write: LatencyDigest,
    /// Bound-goal reads through the dictionary-probe path (cache off,
    /// cycling distinct goals so every read computes its answer).
    pub read_indexed: LatencyDigest,
    /// The same bound-goal cycle through the full-relation scan path
    /// (`index_reads` off, cache off) — the v1 read path, kept as the
    /// comparison baseline the `--assert-serve-read` gate divides by.
    pub read_scan: LatencyDigest,
    /// Repeated-goal reads against the answer cache (cache on).
    pub cache_read: LatencyDigest,
    /// Cache hit rate over the repeated-goal leg.
    pub cache_hit_rate: f64,
    /// Concurrent-writer group-commit throughput (batching on).
    pub batched_write: LatencyDigest,
    /// Writer threads driving the batched leg.
    pub batched_writers: usize,
    /// Mean transactions per batch the leg achieved.
    pub avg_batch: f64,
    /// One writer committing the identical transaction set serially —
    /// the like-for-like baseline `batched_speedup` divides by.
    pub serial_write: LatencyDigest,
    /// Batched concurrent throughput over serial same-shape throughput.
    pub batched_speedup: f64,
    /// Concurrent-phase reads that answered (all verified non-empty).
    pub concurrent_reads: u64,
    /// Concurrent-phase commits that landed.
    pub concurrent_commits: u64,
    /// Aggregate reads/sec across readers in the concurrent phase.
    pub concurrent_qps: f64,
    /// Requests shed with the typed `Overloaded` by the tiny-gate
    /// overload phase (must be nonzero — shedding is the feature).
    pub overloaded: u64,
    /// Requests the overload phase still answered.
    pub overload_answered: u64,
}

fn digest(mut samples: Vec<f64>, elapsed: Duration) -> LatencyDigest {
    if samples.is_empty() {
        return LatencyDigest::default();
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pick = |q: f64| samples[((samples.len() - 1) as f64 * q).round() as usize];
    LatencyDigest {
        count: samples.len(),
        p50_us: pick(0.50),
        p99_us: pick(0.99),
        per_sec: samples.len() as f64 / elapsed.as_secs_f64().max(1e-9),
    }
}

/// A witnessed-chain unit of `n` edges: the guarded transitive closure
/// the optimizer can push the witness residue out of, so the serve path
/// runs on the incrementally maintained optimized route.
fn chain_unit(n: usize) -> Unit {
    let mut src = String::from(
        "reach(X, Y) :- edge(X, Y).\n\
         reach(X, Y) :- edge(X, Z), witness(Z, W), reach(Z, Y).\n\
         ic ic1: edge(X, Z) -> witness(Z, W).\n",
    );
    for i in 0..n {
        let _ = writeln!(src, "edge({i}, {}).", i + 1);
        let _ = writeln!(src, "witness({i}, {}).", 10_000 + i);
    }
    let _ = writeln!(src, "witness({n}, {}).", 10_000 + n);
    parse_unit(&src).expect("generated unit parses")
}

/// Runs the serving benchmark. `quick` shrinks the workload for the CI
/// gate; the checked-in `BENCH_serve.json` is a full-size run.
pub fn run_serve_bench(quick: bool) -> ServeBenchResult {
    let (chain, reads, commits, readers, window_ms) = if quick {
        (300, 400, 40, 2, 150)
    } else {
        (2_000, 2_000, 200, 4, 1_000)
    };
    let tuning = Tuning::default();
    let unit = chain_unit(chain);
    let cfg = ServeConfig {
        tuning,
        retain_epochs: 8,
        ..ServeConfig::default()
    };
    let (server, _) = Server::open(&unit, cfg, None).expect("serve bench open");
    let goal = parse_atom("reach(0, Y)").expect("goal");

    let mut result = ServeBenchResult {
        chain,
        threads: tuning.threads,
        ..ServeBenchResult::default()
    };

    // Phase 1: single-client read latency at the latest epoch.
    let mut samples = Vec::with_capacity(reads);
    let started = Instant::now();
    for _ in 0..reads {
        let t = Instant::now();
        let reply = server.query(&goal, None, None).expect("bench read");
        samples.push(t.elapsed().as_secs_f64() * 1e6);
        assert_eq!(reply.tuples.len(), chain, "closure from node 0");
    }
    result.read = digest(samples, started.elapsed());

    // Phase 2: writer commit latency (witnessed edge appends).
    let mut samples = Vec::with_capacity(commits);
    let started = Instant::now();
    for i in 0..commits {
        let next = (chain + i + 1) as i64;
        let mut tx = Tx::new();
        tx.insert("edge", int_tuple(&[next - 1, next]));
        tx.insert("witness", int_tuple(&[next, 10_000 + next]));
        let t = Instant::now();
        server.commit(&tx).expect("bench commit");
        samples.push(t.elapsed().as_secs_f64() * 1e6);
    }
    result.write = digest(samples, started.elapsed());

    // Phase 2b: indexed vs scan bound-goal reads, both with the answer
    // cache off and cycling distinct goals, so every read computes its
    // answer and the two legs differ only in routing. A warmup query
    // pays the one-time dictionary index build outside the timings.
    let goals: Vec<Atom> = (0..chain)
        .map(|i| parse_atom(&format!("reach({i}, Y)")).expect("bound goal"))
        .collect();
    let indexed_cfg = ServeConfig {
        tuning,
        answer_cache: false,
        ..ServeConfig::default()
    };
    let (indexed, _) = Server::open(&unit, indexed_cfg, None).expect("indexed open");
    indexed.query(&goals[0], None, None).expect("index warmup");
    let mut samples = Vec::with_capacity(reads);
    let started = Instant::now();
    for k in 0..reads {
        let i = k % chain;
        let t = Instant::now();
        let reply = indexed.query(&goals[i], None, None).expect("indexed read");
        samples.push(t.elapsed().as_secs_f64() * 1e6);
        assert_eq!(reply.tuples.len(), chain - i, "closure from node {i}");
    }
    result.read_indexed = digest(samples, started.elapsed());

    let scan_reads = (reads / 10).max(10);
    let scan_cfg = ServeConfig {
        tuning,
        index_reads: false,
        answer_cache: false,
        ..ServeConfig::default()
    };
    let (scan, _) = Server::open(&unit, scan_cfg, None).expect("scan open");
    let mut samples = Vec::with_capacity(scan_reads);
    let started = Instant::now();
    for k in 0..scan_reads {
        let i = k % chain;
        let t = Instant::now();
        let reply = scan.query(&goals[i], None, None).expect("scan read");
        samples.push(t.elapsed().as_secs_f64() * 1e6);
        assert_eq!(reply.tuples.len(), chain - i, "closure from node {i}");
    }
    result.read_scan = digest(samples, started.elapsed());

    // Phase 2c: the answer cache on a repeated goal — one miss computes,
    // everything after is a generation-keyed hit.
    let (cached, _) = Server::open(
        &unit,
        ServeConfig {
            tuning,
            ..ServeConfig::default()
        },
        None,
    )
    .expect("cache open");
    let mut samples = Vec::with_capacity(reads);
    let started = Instant::now();
    for _ in 0..reads {
        let t = Instant::now();
        let reply = cached.query(&goals[0], None, None).expect("cached read");
        samples.push(t.elapsed().as_secs_f64() * 1e6);
        assert_eq!(reply.tuples.len(), chain);
    }
    result.cache_read = digest(samples, started.elapsed());
    let s = cached.stats();
    let lookups = s.cache_hits + s.cache_misses;
    result.cache_hit_rate = if lookups > 0 {
        s.cache_hits as f64 / lookups as f64
    } else {
        0.0
    };

    // Phase 2d: group-commit throughput. Disjoint two-node fragments
    // keep the deltas small and the monitored IC satisfied, so the
    // per-commit cost is dominated by the COW epoch publication — the
    // exact cost batching amortizes. One fresh server commits the whole
    // transaction set serially (the like-for-like baseline); a second
    // takes the same set from concurrent writers whose transactions the
    // leader sweeps into shared maintenance passes (one fsync window,
    // one publish each).
    // Batch size is capped by writer concurrency (each writer has one
    // outstanding commit), so 8 writers give the leader up to 8-tx
    // sweeps; the publication cost they share is what the speedup
    // measures.
    let writers = 8usize;
    let per_writer = (commits / writers).max(1);
    let fragment_tx = |w: usize, k: usize| {
        let base = 1_000_000 * (w as i64 + 1) + 2 * k as i64;
        let mut tx = Tx::new();
        tx.insert("edge", int_tuple(&[base, base + 1]));
        tx.insert("witness", int_tuple(&[base + 1, base + 500_000]));
        tx
    };
    let (serial, _) = Server::open(
        &unit,
        ServeConfig {
            tuning,
            ..ServeConfig::default()
        },
        None,
    )
    .expect("serial open");
    let mut samples = Vec::with_capacity(writers * per_writer);
    let started = Instant::now();
    for w in 0..writers {
        for k in 0..per_writer {
            let tx = fragment_tx(w, k);
            let t = Instant::now();
            serial.commit(&tx).expect("serial fragment commit");
            samples.push(t.elapsed().as_secs_f64() * 1e6);
        }
    }
    result.serial_write = digest(samples, started.elapsed());

    let (batched, _) = Server::open(
        &unit,
        ServeConfig {
            tuning,
            ..ServeConfig::default()
        },
        None,
    )
    .expect("batched open");
    let before = batched.stats();
    let started = Instant::now();
    let handles: Vec<_> = (0..writers)
        .map(|w| {
            let server = Arc::clone(&batched);
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(per_writer);
                for k in 0..per_writer {
                    let tx = fragment_tx(w, k);
                    let t = Instant::now();
                    server.commit(&tx).expect("batched commit");
                    lat.push(t.elapsed().as_secs_f64() * 1e6);
                }
                lat
            })
        })
        .collect();
    let mut samples = Vec::new();
    for h in handles {
        samples.extend(h.join().expect("writer thread"));
    }
    result.batched_write = digest(samples, started.elapsed());
    result.batched_writers = writers;
    let after = batched.stats();
    let batches = after.batches - before.batches;
    result.avg_batch = if batches > 0 {
        (after.batched_txs - before.batched_txs) as f64 / batches as f64
    } else {
        0.0
    };
    result.batched_speedup = result.batched_write.per_sec / result.serial_write.per_sec.max(1e-9);

    // Phase 3: concurrent readers while the writer keeps committing —
    // the serving scenario the epoch registry exists for.
    let done = Arc::new(AtomicBool::new(false));
    let read_count = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..readers)
        .map(|_| {
            let server = Arc::clone(&server);
            let done = Arc::clone(&done);
            let read_count = Arc::clone(&read_count);
            let goal = goal.clone();
            std::thread::spawn(move || {
                while !done.load(Ordering::Acquire) {
                    let reply = server.query(&goal, None, None).expect("concurrent read");
                    assert!(!reply.tuples.is_empty());
                    read_count.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    let window = Duration::from_millis(window_ms);
    let started = Instant::now();
    let mut concurrent_commits = 0u64;
    while started.elapsed() < window {
        let next = (chain + commits) as i64 + concurrent_commits as i64 + 1;
        let mut tx = Tx::new();
        tx.insert("edge", int_tuple(&[next - 1, next]));
        tx.insert("witness", int_tuple(&[next, 10_000 + next]));
        server.commit(&tx).expect("concurrent commit");
        concurrent_commits += 1;
    }
    done.store(true, Ordering::Release);
    let elapsed = started.elapsed();
    for h in handles {
        h.join().expect("reader thread");
    }
    result.concurrent_reads = read_count.load(Ordering::Relaxed);
    result.concurrent_commits = concurrent_commits;
    result.concurrent_qps = result.concurrent_reads as f64 / elapsed.as_secs_f64().max(1e-9);

    // Phase 4: overload shedding through a deliberately tiny gate. Two
    // held permits fill it; every query sheds typed until they drop.
    let tiny = ServeConfig {
        tuning,
        admission: AdmissionConfig {
            max_inflight: 2,
            ..AdmissionConfig::default()
        },
        ..ServeConfig::default()
    };
    let (small, _) = Server::open(&chain_unit(50), tiny, None).expect("overload open");
    let goal50 = parse_atom("reach(0, Y)").expect("goal");
    let held: Vec<_> = (0..2)
        .map(|_| small.admission().admit(None).expect("fill the gate"))
        .collect();
    for _ in 0..100 {
        match small.query(&goal50, None, None) {
            Err(ServeError::Overloaded { .. }) => result.overloaded += 1,
            Ok(_) => result.overload_answered += 1,
            Err(other) => panic!("overload phase: unexpected {other}"),
        }
    }
    drop(held);
    for _ in 0..20 {
        small.query(&goal50, None, None).expect("gate reopened");
        result.overload_answered += 1;
    }
    result
}

/// Renders the result as the `BENCH_serve.json` document.
pub fn serve_to_json(r: &ServeBenchResult) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema_version\": {SERVE_SCHEMA_VERSION},");
    let _ = writeln!(
        s,
        "  \"available_parallelism\": {},",
        std::thread::available_parallelism().map_or(0, usize::from)
    );
    let _ = writeln!(s, "  \"threads\": {},", r.threads);
    let _ = writeln!(s, "  \"chain\": {},", r.chain);
    let section = |s: &mut String, name: &str, d: &LatencyDigest, trailing: &str| {
        let _ = writeln!(s, "  \"{name}\": {{");
        let _ = writeln!(s, "    \"count\": {},", d.count);
        let _ = writeln!(s, "    \"p50_us\": {:.1},", d.p50_us);
        let _ = writeln!(s, "    \"p99_us\": {:.1},", d.p99_us);
        let _ = writeln!(s, "    \"per_sec\": {:.1}", d.per_sec);
        let _ = writeln!(s, "  }}{trailing}");
    };
    section(&mut s, "read", &r.read, ",");
    section(&mut s, "write", &r.write, ",");
    section(&mut s, "read_indexed", &r.read_indexed, ",");
    section(&mut s, "read_scan", &r.read_scan, ",");
    let _ = writeln!(s, "  \"answer_cache\": {{");
    let _ = writeln!(s, "    \"count\": {},", r.cache_read.count);
    let _ = writeln!(s, "    \"p50_us\": {:.1},", r.cache_read.p50_us);
    let _ = writeln!(s, "    \"p99_us\": {:.1},", r.cache_read.p99_us);
    let _ = writeln!(s, "    \"per_sec\": {:.1},", r.cache_read.per_sec);
    let _ = writeln!(s, "    \"hit_rate\": {:.4}", r.cache_hit_rate);
    let _ = writeln!(s, "  }},");
    section(&mut s, "serial_write", &r.serial_write, ",");
    let _ = writeln!(s, "  \"batched_write\": {{");
    let _ = writeln!(s, "    \"count\": {},", r.batched_write.count);
    let _ = writeln!(s, "    \"p50_us\": {:.1},", r.batched_write.p50_us);
    let _ = writeln!(s, "    \"p99_us\": {:.1},", r.batched_write.p99_us);
    let _ = writeln!(s, "    \"per_sec\": {:.1},", r.batched_write.per_sec);
    let _ = writeln!(s, "    \"writers\": {},", r.batched_writers);
    let _ = writeln!(s, "    \"avg_batch\": {:.2},", r.avg_batch);
    let _ = writeln!(s, "    \"speedup\": {:.2}", r.batched_speedup);
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"concurrent\": {{");
    let _ = writeln!(s, "    \"readers_qps\": {:.1},", r.concurrent_qps);
    let _ = writeln!(s, "    \"reads\": {},", r.concurrent_reads);
    let _ = writeln!(s, "    \"commits\": {}", r.concurrent_commits);
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"overload\": {{");
    let _ = writeln!(s, "    \"shed\": {},", r.overloaded);
    let _ = writeln!(s, "    \"answered\": {}", r.overload_answered);
    let _ = writeln!(s, "  }}");
    s.push_str("}\n");
    s
}

/// Human-readable summary table for the terminal.
pub fn serve_table(r: &ServeBenchResult) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "\nserve bench (chain {}, {} evaluator thread(s)):",
        r.chain, r.threads
    );
    let _ = writeln!(
        s,
        "  read   p50 {:>8.1}us  p99 {:>8.1}us  {:>10.1}/s  ({} samples)",
        r.read.p50_us, r.read.p99_us, r.read.per_sec, r.read.count
    );
    let _ = writeln!(
        s,
        "  write  p50 {:>8.1}us  p99 {:>8.1}us  {:>10.1}/s  ({} samples)",
        r.write.p50_us, r.write.p99_us, r.write.per_sec, r.write.count
    );
    let _ = writeln!(
        s,
        "  probe  p50 {:>8.1}us  p99 {:>8.1}us  {:>10.1}/s  ({} samples, indexed bound goals)",
        r.read_indexed.p50_us, r.read_indexed.p99_us, r.read_indexed.per_sec, r.read_indexed.count
    );
    let _ = writeln!(
        s,
        "  fscan  p50 {:>8.1}us  p99 {:>8.1}us  {:>10.1}/s  ({} samples, scan fallback)",
        r.read_scan.p50_us, r.read_scan.p99_us, r.read_scan.per_sec, r.read_scan.count
    );
    let _ = writeln!(
        s,
        "  cache  p50 {:>8.1}us  p99 {:>8.1}us  {:>10.1}/s  (hit rate {:.1}%)",
        r.cache_read.p50_us,
        r.cache_read.p99_us,
        r.cache_read.per_sec,
        r.cache_hit_rate * 100.0
    );
    let _ = writeln!(
        s,
        "  wser   p50 {:>8.1}us  p99 {:>8.1}us  {:>10.1}/s  ({} samples, serial baseline)",
        r.serial_write.p50_us, r.serial_write.p99_us, r.serial_write.per_sec, r.serial_write.count
    );
    let _ = writeln!(
        s,
        "  batch  p50 {:>8.1}us  p99 {:>8.1}us  {:>10.1}/s  ({} writers, {:.2} tx/batch, {:.2}x vs serial)",
        r.batched_write.p50_us,
        r.batched_write.p99_us,
        r.batched_write.per_sec,
        r.batched_writers,
        r.avg_batch,
        r.batched_speedup
    );
    let _ = writeln!(
        s,
        "  mixed  {:>10.1} reads/s across readers, {} commits alongside",
        r.concurrent_qps, r.concurrent_commits
    );
    let _ = writeln!(
        s,
        "  gate   {} shed typed, {} answered",
        r.overloaded, r.overload_answered
    );
    s
}

/// Validates a checked-in `BENCH_serve.json`: parses, checks the schema
/// version, and requires the fields the serve gate reads. Returns a
/// one-line summary on success.
pub fn check_serve_baseline(src: &str) -> Result<String, String> {
    let doc = parse_json(src)?;
    match doc.get("schema_version").and_then(Json::as_num) {
        Some(v) if v == SERVE_SCHEMA_VERSION as f64 => {}
        Some(v) => {
            return Err(format!(
                "BENCH_serve.json schema v{v} is stale (harness emits v{SERVE_SCHEMA_VERSION}); \
                 regenerate with `harness serve-bench --json`"
            ))
        }
        None => {
            return Err(format!(
                "BENCH_serve.json has no `schema_version` (harness emits \
                 v{SERVE_SCHEMA_VERSION}); regenerate with `harness serve-bench --json`"
            ))
        }
    }
    for key in ["available_parallelism", "threads", "chain"] {
        if doc.get(key).and_then(Json::as_num).is_none() {
            return Err(format!("BENCH_serve.json is missing numeric `{key}`"));
        }
    }
    for sec in [
        "read",
        "write",
        "read_indexed",
        "read_scan",
        "serial_write",
        "batched_write",
    ] {
        let obj = doc
            .get(sec)
            .ok_or_else(|| format!("BENCH_serve.json is missing section `{sec}`"))?;
        for key in ["count", "p50_us", "p99_us", "per_sec"] {
            if obj.get(key).and_then(Json::as_num).is_none() {
                return Err(format!("BENCH_serve.json `{sec}` is missing `{key}`"));
            }
        }
    }
    if doc
        .get("answer_cache")
        .and_then(|o| o.get("hit_rate"))
        .and_then(Json::as_num)
        .is_none()
    {
        return Err("BENCH_serve.json is missing `answer_cache.hit_rate`".to_string());
    }
    if doc
        .get("batched_write")
        .and_then(|o| o.get("avg_batch"))
        .and_then(Json::as_num)
        .is_none()
    {
        return Err("BENCH_serve.json is missing `batched_write.avg_batch`".to_string());
    }
    if doc
        .get("batched_write")
        .and_then(|o| o.get("speedup"))
        .and_then(Json::as_num)
        .is_none()
    {
        return Err("BENCH_serve.json is missing `batched_write.speedup`".to_string());
    }
    let shed = doc
        .get("overload")
        .and_then(|o| o.get("shed"))
        .and_then(Json::as_num)
        .ok_or("BENCH_serve.json is missing `overload.shed`")?;
    if shed < 1.0 {
        return Err(
            "BENCH_serve.json records zero shed requests — the overload phase \
                    did not exercise admission control"
                .to_string(),
        );
    }
    if doc
        .get("concurrent")
        .and_then(|o| o.get("readers_qps"))
        .and_then(Json::as_num)
        .is_none()
    {
        return Err("BENCH_serve.json is missing `concurrent.readers_qps`".to_string());
    }
    Ok(format!(
        "BENCH_serve.json schema v{SERVE_SCHEMA_VERSION} is current"
    ))
}

/// The `--assert-serve-read` CI gate: on a fresh (quick) run, the
/// indexed bound-goal read path must come in at ≤ 20% of the scan
/// path's median, and the repeated-goal leg must hit the answer cache
/// at least 90% of the time. Returns the one-line verdict on success.
pub fn check_serve_read(r: &ServeBenchResult) -> Result<String, String> {
    if r.read_indexed.count == 0 || r.read_scan.count == 0 {
        return Err("serve read gate: indexed/scan legs recorded no samples".to_string());
    }
    let ratio = r.read_indexed.p50_us / r.read_scan.p50_us.max(1e-9);
    if ratio > 0.20 {
        return Err(format!(
            "serve read gate: indexed bound-goal p50 {:.1}us is {:.0}% of scan p50 {:.1}us \
             (must be <= 20%)",
            r.read_indexed.p50_us,
            ratio * 100.0,
            r.read_scan.p50_us
        ));
    }
    if r.cache_hit_rate < 0.90 {
        return Err(format!(
            "serve read gate: answer cache hit rate {:.1}% on the repeated-goal leg \
             (must be >= 90%)",
            r.cache_hit_rate * 100.0
        ));
    }
    Ok(format!(
        "serve read gate: indexed p50 {:.1}us = {:.1}% of scan p50 {:.1}us, \
         cache hit rate {:.1}%",
        r.read_indexed.p50_us,
        ratio * 100.0,
        r.read_scan.p50_us,
        r.cache_hit_rate * 100.0
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_emits_a_self_validating_artifact() {
        let r = run_serve_bench(true);
        assert!(r.read.count > 0 && r.write.count > 0);
        assert!(r.read_indexed.count > 0 && r.read_scan.count > 0);
        assert!(r.cache_read.count > 0);
        assert!(r.batched_write.count > 0);
        assert!(r.overloaded > 0, "tiny gate must shed");
        assert!(r.concurrent_reads > 0);
        let json = serve_to_json(&r);
        let summary = check_serve_baseline(&json).expect("fresh artifact validates");
        assert!(summary.contains("current"));
    }

    #[test]
    fn stale_or_mangled_artifacts_are_rejected() {
        assert!(check_serve_baseline("{}").is_err());
        assert!(check_serve_baseline("{\"schema_version\": 0}").is_err());
        let v1 = check_serve_baseline("{\"schema_version\": 1}")
            .expect_err("v1 artifacts predate the indexed read path");
        assert!(v1.contains("stale"));
        let r = ServeBenchResult {
            overloaded: 0,
            ..ServeBenchResult::default()
        };
        let json = serve_to_json(&r);
        let err = check_serve_baseline(&json).expect_err("zero shed must fail");
        assert!(err.contains("shed"));
    }

    #[test]
    fn read_gate_rejects_slow_probes_and_cold_caches() {
        let good = ServeBenchResult {
            read_indexed: LatencyDigest {
                count: 10,
                p50_us: 100.0,
                ..LatencyDigest::default()
            },
            read_scan: LatencyDigest {
                count: 10,
                p50_us: 10_000.0,
                ..LatencyDigest::default()
            },
            cache_hit_rate: 0.99,
            ..ServeBenchResult::default()
        };
        assert!(check_serve_read(&good).is_ok());
        let slow = ServeBenchResult {
            read_indexed: LatencyDigest {
                count: 10,
                p50_us: 5_000.0,
                ..LatencyDigest::default()
            },
            ..good.clone()
        };
        assert!(check_serve_read(&slow).expect_err("ratio").contains("20%"));
        let cold = ServeBenchResult {
            cache_hit_rate: 0.5,
            ..good
        };
        assert!(check_serve_read(&cold)
            .expect_err("hit rate")
            .contains("90%"));
        assert!(check_serve_read(&ServeBenchResult::default()).is_err());
    }

    #[test]
    fn digest_percentiles_are_ordered() {
        let d = digest(
            (1..=100).map(|i| i as f64).collect(),
            Duration::from_secs(1),
        );
        assert_eq!(d.count, 100);
        assert!(d.p50_us <= d.p99_us);
        assert_eq!(d.per_sec, 100.0);
    }
}
