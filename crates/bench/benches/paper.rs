//! Criterion benchmarks timing the hot closures of experiments E1–E9.
//! Run with `cargo bench -p semrec-bench`; the printable tables come from
//! the `harness` binary instead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use semrec_bench::experiments::{chain_detection_workload, plan_for};
use semrec_core::baseline::evaluate_with_runtime_semantics;
use semrec_core::detect::{detect, DetectionMethod};
use semrec_core::isolate::isolate;
use semrec_core::optimizer::Optimizer;
use semrec_core::sequence::unfold;
use semrec_datalog::analysis::{classify_linear_pred, rectify};
use semrec_datalog::parser::{parse_atom, parse_unit};
use semrec_datalog::Pred;
use semrec_engine::magic::evaluate_query;
use semrec_engine::{evaluate, Strategy};
use semrec_gen::{fanout, genealogy, org, parse_scenario, university};
use std::hint::black_box;

/// E1 — atom elimination: original vs optimized evaluation.
fn bench_e1_atom_elimination(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_atom_elimination");
    // k = 1 guarded reachability at two fan-outs.
    let s = parse_scenario(fanout::PROGRAM);
    let plan = plan_for(&s, &[]);
    for fo in [4usize, 32] {
        let db = fanout::generate(&fanout::FanoutParams {
            nodes: 150,
            extra_edges: 80,
            fanout: fo,
            seed: 1,
        });
        g.bench_with_input(BenchmarkId::new("fanout_original", fo), &db, |b, db| {
            b.iter(|| black_box(evaluate(db, &plan.rectified, Strategy::SemiNaive).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("fanout_optimized", fo), &db, |b, db| {
            b.iter(|| black_box(evaluate(db, &plan.program, Strategy::SemiNaive).unwrap()))
        });
    }
    // k = 2 university.
    let s = parse_scenario(university::PROGRAM);
    let plan = plan_for(&s, &["doctoral"]);
    let db = university::generate(&university::UniversityParams::default());
    g.bench_function("university_original", |b| {
        b.iter(|| black_box(evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap()))
    });
    g.bench_function("university_optimized", |b| {
        b.iter(|| black_box(evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap()))
    });
    g.finish();
}

/// E2 — atom introduction on eval_support.
fn bench_e2_atom_introduction(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_atom_introduction");
    let s = parse_scenario(university::PROGRAM);
    let with = plan_for(&s, &["doctoral"]);
    let without = plan_for(&s, &[]);
    let db = university::generate(&university::UniversityParams {
        students: 300,
        rich_frac: 0.1,
        ..university::UniversityParams::default()
    });
    g.bench_function("without_introduction", |b| {
        b.iter(|| black_box(evaluate(&db, &without.program, Strategy::SemiNaive).unwrap()))
    });
    g.bench_function("with_introduction", |b| {
        b.iter(|| black_box(evaluate(&db, &with.program, Strategy::SemiNaive).unwrap()))
    });
    g.finish();
}

/// E3 — pruning: full evaluation and magic-directed young-ancestor goal.
fn bench_e3_pruning(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_pruning");
    let s = parse_scenario(genealogy::PROGRAM);
    let plan = plan_for(&s, &[]);
    let db = genealogy::generate(&genealogy::GenealogyParams {
        families: 4,
        depth: 6,
        branching: 2,
        seed: 7,
    });
    g.bench_function("full_original", |b| {
        b.iter(|| black_box(evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap()))
    });
    g.bench_function("full_pruned", |b| {
        b.iter(|| black_box(evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap()))
    });
    let mut goal = parse_atom("anc(X, Xa, Y, Ya)").unwrap();
    goal.args[3] = semrec_datalog::Term::Const(semrec_datalog::Value::Int(45));
    g.bench_function("magic_young_original", |b| {
        b.iter(|| {
            black_box(evaluate_query(&db, &plan.rectified, &goal, Strategy::SemiNaive).unwrap())
        })
    });
    g.bench_function("magic_young_pruned", |b| {
        b.iter(|| {
            black_box(evaluate_query(&db, &plan.program, &goal, Strategy::SemiNaive).unwrap())
        })
    });
    // The SLD (speculative) model on a small instance: the regime where
    // pruning wins (E3d).
    let small = genealogy::generate(&genealogy::GenealogyParams {
        families: 2,
        depth: 4,
        branching: 2,
        seed: 7,
    });
    let config = semrec_engine::sld::SldConfig {
        max_depth: 9,
        max_expansions: 4_000_000,
    };
    g.bench_function("sld_young_original", |b| {
        b.iter(|| {
            black_box(
                semrec_engine::sld::query_sld(&small, &plan.rectified, &goal, config).unwrap(),
            )
        })
    });
    g.bench_function("sld_young_pruned", |b| {
        b.iter(|| {
            black_box(
                semrec_engine::sld::query_sld(&small, &plan.program, &goal, config).unwrap(),
            )
        })
    });
    g.bench_function("topdown_young_original", |b| {
        b.iter(|| {
            black_box(
                semrec_engine::topdown::query_topdown(&small, &plan.rectified, &goal).unwrap(),
            )
        })
    });
    g.finish();
}

/// E4 — compiled optimization vs per-iteration baseline.
fn bench_e4_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_overhead");
    let s = parse_scenario(genealogy::PROGRAM);
    let db = genealogy::generate(&genealogy::GenealogyParams {
        families: 3,
        depth: 6,
        ..genealogy::GenealogyParams::default()
    });
    g.bench_function("compile_plus_eval", |b| {
        b.iter(|| {
            let plan = Optimizer::new(&s.program)
                .with_constraints(&s.constraints)
                .run()
                .unwrap();
            black_box(evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap())
        })
    });
    g.bench_function("runtime_baseline", |b| {
        b.iter(|| {
            black_box(
                evaluate_with_runtime_semantics(
                    &db,
                    &s.program,
                    &s.constraints,
                    Strategy::SemiNaive,
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

/// E5 — residue detection methods.
fn bench_e5_detection(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_detection");
    for k in [2usize, 3, 4] {
        let (program, ic) = chain_detection_workload(k);
        let (prog, _) = rectify(&program);
        let info = classify_linear_pred(&prog, Pred::new("p")).unwrap();
        g.bench_with_input(BenchmarkId::new("sdgraph", k), &k, |b, _| {
            b.iter(|| black_box(detect(&prog, &info, &ic, DetectionMethod::SdGraph, 0).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("exhaustive", k), &k, |b, _| {
            b.iter(|| {
                black_box(
                    detect(
                        &prog,
                        &info,
                        &ic,
                        DetectionMethod::Exhaustive { max_len: k + 1 },
                        0,
                    )
                    .unwrap(),
                )
            })
        });
    }
    g.finish();
}

/// E7 — binding patterns over the optimized program with magic sets.
fn bench_e7_bindings(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_bindings");
    let s = parse_scenario(fanout::PROGRAM);
    let plan = plan_for(&s, &[]);
    let db = fanout::generate(&fanout::FanoutParams {
        nodes: 200,
        extra_edges: 100,
        fanout: 8,
        seed: 3,
    });
    for goal_src in ["reach(0, Y)", "reach(X, 17)"] {
        let goal = parse_atom(goal_src).unwrap();
        g.bench_with_input(
            BenchmarkId::new("optimized_magic", goal_src),
            &goal,
            |b, goal| {
                b.iter(|| {
                    black_box(
                        evaluate_query(&db, &plan.program, goal, Strategy::SemiNaive).unwrap(),
                    )
                })
            },
        );
    }
    g.finish();
}

/// E8 — isolation overhead (Algorithm 4.1, no optimization).
fn bench_e8_isolation_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_isolation_cost");
    let unit = parse_unit("anc(X, Y) :- par(X, Y). anc(X, Y) :- anc(X, Z), par(Z, Y).").unwrap();
    let (prog, _) = rectify(&unit.program());
    let info = classify_linear_pred(&prog, Pred::new("anc")).unwrap();
    let db = semrec_gen::graphs::tree("par", 3_000, 2);
    g.bench_function("original", |b| {
        b.iter(|| black_box(evaluate(&db, &prog, Strategy::SemiNaive).unwrap()))
    });
    for k in [1usize, 2, 4] {
        let u = unfold(&prog, &info, &vec![1; k]).unwrap();
        let iso = isolate(&prog, &info, &u);
        g.bench_with_input(BenchmarkId::new("isolated", k), &k, |b, _| {
            b.iter(|| black_box(evaluate(&db, &iso.program, Strategy::SemiNaive).unwrap()))
        });
    }
    g.finish();
}

/// E9 — knowledge-query answering.
fn bench_e9_iqa(c: &mut Criterion) {
    let program = parse_unit(
        "honors(Stud) :- transcript(Stud, Major, Cred, Gpa), Cred >= 30, Gpa >= 38.
         honors(Stud) :- transcript(Stud, Major, Cred, Gpa), Gpa >= 38, exceptional(Stud).
         exceptional(Stud) :- publication(Stud, P), appears(P, Jl), reputed(Jl).
         honors(Stud) :- graduated(Stud, College), topten(College).",
    )
    .unwrap()
    .program();
    let query = semrec_iqa::parse_describe(
        "describe honors(S) where major(S, cs), graduated(S, C), topten(C), hobby(S, chess).",
    )
    .unwrap();
    c.bench_function("e9_iqa_describe", |b| {
        b.iter(|| black_box(semrec_iqa::answer(&program, &query, 4)))
    });
}

/// E6 is analytic (residue counting) — time the optimizer pipeline itself.
fn bench_e6_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_optimizer_pipeline");
    for (name, src) in [
        ("org", org::PROGRAM),
        ("university", university::PROGRAM),
        ("genealogy", genealogy::PROGRAM),
    ] {
        let s = parse_scenario(src);
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    Optimizer::new(&s.program)
                        .with_constraints(&s.constraints)
                        .run()
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

/// Shape-oriented configuration: 10 samples / 2s windows keep the full
/// suite under a few minutes; the harness binary is the precision tool.
fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group!(
    name = benches;
    config = config();
    targets = bench_e1_atom_elimination,
        bench_e2_atom_introduction,
        bench_e3_pruning,
        bench_e4_overhead,
        bench_e5_detection,
        bench_e6_pipeline,
        bench_e7_bindings,
        bench_e8_isolation_cost,
        bench_e9_iqa
);
criterion_main!(benches);
