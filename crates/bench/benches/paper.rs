//! Micro-benchmarks timing the hot closures of the E1/E2 experiments.
//!
//! Gated behind the off-by-default `criterion` feature and implemented
//! with plain `std::time` loops (the external criterion crate is gone per
//! the offline-build policy; the feature name is kept so existing
//! `--features criterion` invocations still work):
//!
//! ```sh
//! cargo bench -p semrec-bench --features criterion
//! ```
//!
//! For the engine-level fixpoint benchmark (serial vs parallel,
//! `BENCH_fixpoint.json`) use `harness bench` instead.

use semrec_bench::experiments::plan_for;
use semrec_engine::{evaluate, evaluate_parallel, Strategy};
use semrec_gen::{fanout, parse_scenario, university};
use std::hint::black_box;
use std::time::Instant;

/// Times `f` over `iters` runs after one warmup, reporting the mean.
fn bench(name: &str, iters: usize, mut f: impl FnMut()) {
    f(); // warmup
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let total = start.elapsed();
    println!(
        "{name:<44} {:>10.3} ms/iter ({iters} iters)",
        total.as_secs_f64() * 1e3 / iters as f64
    );
}

fn main() {
    // E1 — atom elimination: original vs optimized evaluation.
    let s = parse_scenario(fanout::PROGRAM);
    let plan = plan_for(&s, &[]);
    for fo in [4usize, 32] {
        let db = fanout::generate(&fanout::FanoutParams {
            nodes: 150,
            extra_edges: 80,
            fanout: fo,
            seed: 1,
        });
        bench(&format!("e1/fanout_original/{fo}"), 10, || {
            black_box(evaluate(&db, &plan.rectified, Strategy::SemiNaive).unwrap());
        });
        bench(&format!("e1/fanout_optimized/{fo}"), 10, || {
            black_box(evaluate(&db, &plan.program, Strategy::SemiNaive).unwrap());
        });
    }

    // E2 — atom introduction on the university eval_support chain.
    let s = parse_scenario(university::PROGRAM);
    let with = plan_for(&s, &["doctoral"]);
    let without = plan_for(&s, &[]);
    let db = university::generate(&university::UniversityParams {
        students: 300,
        ..university::UniversityParams::default()
    });
    bench("e2/university_no_introduction", 10, || {
        black_box(evaluate(&db, &without.program, Strategy::SemiNaive).unwrap());
    });
    bench("e2/university_with_introduction", 10, || {
        black_box(evaluate(&db, &with.program, Strategy::SemiNaive).unwrap());
    });

    // Engine parallel scaling on the E1 headline workload.
    let s = parse_scenario(fanout::PROGRAM);
    let db = fanout::generate(&fanout::FanoutParams {
        nodes: 300,
        extra_edges: 160,
        fanout: 64,
        seed: 1,
    });
    for threads in [1usize, 2, 4] {
        bench(&format!("engine/fanout64_threads/{threads}"), 5, || {
            black_box(evaluate_parallel(&db, &s.program, Strategy::SemiNaive, threads).unwrap());
        });
    }
}
