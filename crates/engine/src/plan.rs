//! Rule compilation: turning a rule into an ordered sequence of indexed
//! scan, filter and assignment steps over variable *slots*.
//!
//! The planner is a greedy bound-ness heuristic: evaluable assignments and
//! filters run as soon as their inputs are bound, and the next subgoal to
//! join is the one with the most bound argument positions (ties broken by
//! source order). Semi-naive evaluation asks for one *delta variant* per
//! IDB subgoal occurrence; the delta occurrence is scanned first, which is
//! the classic seed-from-delta strategy.

use crate::builtins::BuiltinOp;
use crate::error::EngineError;
use crate::fxhash::{FxHashMap, FxHashSet};
use semrec_datalog::atom::Pred;
use semrec_datalog::literal::{CmpOp, Literal};
use semrec_datalog::rule::Rule;
use semrec_datalog::symbol::Symbol;
use semrec_datalog::term::{Term, Value};
use std::collections::BTreeMap;

/// A value source: a variable slot or an inline constant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Source {
    /// Read the slot.
    Slot(usize),
    /// Use the constant.
    Const(Value),
}

/// Which view of a predicate's relation a scan reads (see the evaluator for
/// the old/delta/total row-range bookkeeping).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum View {
    /// The whole relation (EDB predicates).
    Full,
    /// All IDB rows visible at the start of the round.
    Total,
    /// Rows older than the last round's delta.
    Old,
    /// The last round's delta rows.
    Delta,
}

/// How one argument position of a scanned atom is handled per row.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArgPat {
    /// Must equal this constant.
    Const(Value),
    /// Must equal the current value of the slot (bound before this arg).
    Bound(usize),
    /// Binds the slot to the row's value (first occurrence).
    Bind(usize),
}

/// A scan of one body atom.
#[derive(Clone, Debug)]
pub struct ScanStep {
    /// The scanned predicate.
    pub pred: Pred,
    /// Which view to read.
    pub view: View,
    /// Per-argument handling.
    pub args: Vec<ArgPat>,
    /// Columns usable as an index key (constant or pre-scan-bound).
    pub key_cols: Vec<usize>,
    /// Key values, parallel to `key_cols`.
    pub key_vals: Vec<Source>,
    /// Index of the originating literal in the rule body.
    pub literal: usize,
}

/// A negated-subgoal check: fails when a matching tuple exists. All
/// argument positions are bound when the step runs.
#[derive(Clone, Debug)]
pub struct NegStep {
    /// The negated predicate.
    pub pred: Pred,
    /// Which view to read (Full for EDB, Total for lower-stratum IDB).
    pub view: View,
    /// The fully bound key (one source per column).
    pub key: Vec<Source>,
}

/// An arithmetic builtin evaluation (`plus/3`, `times/3`): computes the
/// unbound argument from the bound ones, or checks the relation when all
/// are bound.
#[derive(Clone, Copy, Debug)]
pub struct ComputeStep {
    /// The operation.
    pub op: BuiltinOp,
    /// The three argument sources.
    pub args: [Source; 3],
    /// Index of the argument to bind (`None` = pure check).
    pub bind: Option<(usize, usize)>, // (arg position, slot)
}

/// A comparison filter over bound values.
#[derive(Clone, Copy, Debug)]
pub struct FilterStep {
    /// Left operand.
    pub lhs: Source,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: Source,
}

/// Binds a slot from an equality with an already-bound source.
#[derive(Clone, Copy, Debug)]
pub struct AssignStep {
    /// Destination slot.
    pub slot: usize,
    /// Value source.
    pub from: Source,
}

/// One step of a compiled rule.
#[derive(Clone, Debug)]
pub enum Step {
    /// Join against a relation.
    Scan(ScanStep),
    /// Check a negated subgoal (stratified negation).
    Neg(NegStep),
    /// Evaluate an arithmetic builtin.
    Compute(ComputeStep),
    /// Evaluate a comparison.
    Filter(FilterStep),
    /// Bind a slot.
    Assign(AssignStep),
}

/// Where a kernel value comes from, resolved at plan-compile time so the
/// kernel's inner loop never routes through variable slots: a constant, a
/// column of the current seed row, or a column of the current row at an
/// earlier probe depth.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KernelSrc {
    /// The constant.
    Const(Value),
    /// Column of the seed row.
    Seed(usize),
    /// `(probe depth, column)` of a probe row already matched.
    Probe(usize, usize),
    /// Result of the `i`-th [`KernelCompute`]: a value-binding builtin
    /// hoisted to the seed phase, a pure function of the seed row.
    Computed(usize),
}

/// A value-binding builtin hoisted into a batch kernel's seed phase
/// (`plus(Y, 1, Z)` solving for `Z`). Only computes positioned before
/// the first probe whose read arguments resolve to constants, seed
/// columns, or earlier computes qualify — so each is a pure function of
/// the seed row, evaluated once per gathered row. A row whose compute
/// fails (type error, no solution) is dropped, exactly as the step
/// machine drops it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct KernelCompute {
    /// The operation.
    pub op: BuiltinOp,
    /// Argument sources; the entry at `bind` is the solved position and
    /// is never read.
    pub args: [KernelSrc; 3],
    /// The argument position the builtin solves for.
    pub bind: usize,
}

/// A pure filter riding a batch-kernel depth: a comparison or an
/// all-bound builtin check whose operands resolved to kernel sources at
/// compile time. Guards never bind anything — they only pass or fail a
/// candidate row — so the batch executor can evaluate them wherever
/// their sources are available.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KernelGuard {
    /// A comparison filter (`Y > 50`).
    Cmp(KernelSrc, CmpOp, KernelSrc),
    /// An all-bound arithmetic builtin check (`plus(X, 7, Y)`).
    Builtin(BuiltinOp, [KernelSrc; 3]),
}

/// One indexed probe in a [`BatchKernel`] chain.
#[derive(Clone, Debug)]
pub struct KernelProbe {
    /// The probed predicate.
    pub pred: Pred,
    /// Which view to read.
    pub view: View,
    /// Expected row width (the atom's arity); rows of any other width
    /// never match.
    pub arity: usize,
    /// Index key columns (same as the originating scan step's).
    pub key_cols: Vec<usize>,
    /// Key value sources, parallel to `key_cols`; all refer to the seed
    /// row, earlier probe depths, or constants.
    pub key: Vec<KernelSrc>,
    /// Residual equality checks on non-key columns (repeated variables
    /// first bound within this same atom).
    pub checks: Vec<(usize, KernelSrc)>,
    /// Filter/builtin-check guards the planner placed directly after
    /// this probe; they may read this depth and anything bound earlier.
    pub guards: Vec<KernelGuard>,
    /// `true` when no later probe key, later check or guard, or head
    /// term reads a column of this probe's matched row: the probe is a
    /// pure existence test (a semijoin), and the kernel stops at its
    /// first match instead of enumerating every duplicate-producing
    /// group row. This is the witness-guard shape the paper's isolating
    /// rules introduce — `witness(Z, W)` with `W` otherwise unused.
    pub existential: bool,
}

/// A compile-time specialization of the plan shapes the paper's programs
/// produce: a seed scan (key-less, or keyed by constants resolved at
/// compile time) followed by a short chain of indexed probes with
/// optional comparison/builtin-check guards, the head projected straight
/// from row columns and constants. The canonical instance is the linear
/// recursive rule `T(x,z) :- T(x,y), E(y,z)` — delta-seed scan of `T`,
/// one probe of `E`, direct projection — but multi-recursive rules (two
/// IDB occurrences), constant-key seeds, and builtin-check tails also
/// qualify, up to [`MAX_KERNEL_PROBES`] probes. Value-binding builtins
/// qualify when they are pure functions of the seed row (hoisted as
/// [`KernelCompute`]s); plans with negation, probe-dependent binding
/// builtins, or longer chains fall back to the general step machine.
#[derive(Clone, Debug)]
pub struct BatchKernel {
    /// The seed predicate.
    pub seed_pred: Pred,
    /// The seed view (Delta for semi-naive variants).
    pub seed_view: View,
    /// Expected seed row width.
    pub seed_arity: usize,
    /// Index key columns on the seed scan (empty = full range scan).
    pub seed_key_cols: Vec<usize>,
    /// Constant key values, parallel to `seed_key_cols`; a keyed seed
    /// only qualifies when every key value resolves to a constant.
    pub seed_key: Vec<Value>,
    /// Constant / repeated-variable checks on the seed row.
    pub seed_checks: Vec<(usize, KernelSrc)>,
    /// Guards evaluable from the seed row alone (placed before any
    /// probe).
    pub seed_guards: Vec<KernelGuard>,
    /// Hoisted value-binding builtins, evaluated per seed row at gather
    /// time in order (later computes may read earlier ones).
    pub computes: Vec<KernelCompute>,
    /// The probe chain, outermost first.
    pub probes: Vec<KernelProbe>,
    /// Head projection.
    pub head: Vec<KernelSrc>,
}

impl BatchKernel {
    /// Cumulative probe-key offsets into a packed key buffer:
    /// `key_offsets()[d]..key_offsets()[d + 1]` is depth `d`'s key
    /// slice, and the entry at `probes.len()` is the total key width —
    /// the per-task buffer length the batch executor reserves.
    pub fn key_offsets(&self) -> [usize; MAX_KERNEL_PROBES + 1] {
        let mut off = [0usize; MAX_KERNEL_PROBES + 1];
        for (d, p) in self.probes.iter().enumerate() {
            off[d + 1] = off[d] + p.key.len();
        }
        off
    }
}

/// Upper bound on a kernel's probe-chain length; the kernel executor
/// keeps its cursors in fixed-size arrays of this length. Longer chains
/// fall back to the step machine.
pub const MAX_KERNEL_PROBES: usize = 4;

/// Upper bound on a kernel's hoisted computes; the executor tracks
/// their group-invariance in a `u64` bitmask. More fall back to the
/// step machine (no real program gets anywhere near this).
pub const MAX_KERNEL_COMPUTES: usize = 64;

/// A fully compiled rule.
#[derive(Clone, Debug)]
pub struct CompiledRule {
    /// Head predicate.
    pub head_pred: Pred,
    /// Head projection.
    pub head: Vec<Source>,
    /// Ordered steps.
    pub steps: Vec<Step>,
    /// Number of variable slots.
    pub nslots: usize,
    /// Variable name of each slot (diagnostics).
    pub slot_vars: Vec<Symbol>,
    /// Specialized batch execution for seed-plus-probe-chain shapes,
    /// derived from `steps` at compile time; `None` means the general
    /// step machine runs this plan.
    pub kernel: Option<BatchKernel>,
}

/// Derives a [`BatchKernel`] from a compiled step sequence, or `None`
/// when the shape doesn't qualify. Selection rules: steps are scans,
/// assignments, filters, pure builtin checks, and seed-phase
/// value-binding builtins (negation and probe-dependent bindings fall
/// back); the first scan seeds the iteration
/// (it is the step data-parallel partitions split) and may carry an
/// index key only if every key value resolves to a constant; every
/// later scan has a non-empty index key; the chain has at most
/// [`MAX_KERNEL_PROBES`] probes; and every head term resolves to a
/// constant or a row column. Filters and builtin checks become guards
/// attached to the most recent probe (or the seed), preserving the
/// planner's evaluation point.
fn derive_kernel(steps: &[Step], head: &[Source], nslots: usize) -> Option<BatchKernel> {
    // Track where each slot was first bound, in step order — the same
    // order the step machine binds them.
    let mut bindings: Vec<Option<KernelSrc>> = vec![None; nslots];
    let resolve = |bindings: &[Option<KernelSrc>], v: Source| match v {
        Source::Const(c) => Some(KernelSrc::Const(c)),
        Source::Slot(sl) => bindings[sl],
    };

    struct SeedInfo {
        pred: Pred,
        view: View,
        arity: usize,
        key_cols: Vec<usize>,
        key: Vec<Value>,
        checks: Vec<(usize, KernelSrc)>,
        guards: Vec<KernelGuard>,
    }
    let mut seed: Option<SeedInfo> = None;
    let mut computes: Vec<KernelCompute> = Vec::new();
    let mut probes: Vec<KernelProbe> = Vec::new();

    for step in steps {
        match step {
            Step::Assign(a) => {
                bindings[a.slot] = Some(resolve(&bindings, a.from)?);
            }
            Step::Filter(fs) => {
                let g = KernelGuard::Cmp(
                    resolve(&bindings, fs.lhs)?,
                    fs.op,
                    resolve(&bindings, fs.rhs)?,
                );
                match probes.last_mut() {
                    Some(p) => p.guards.push(g),
                    None => seed.as_mut()?.guards.push(g),
                }
            }
            Step::Compute(cs) => match cs.bind {
                // The pure-check form becomes a guard at the planner's
                // evaluation point.
                None => {
                    let mut args = [KernelSrc::Seed(0); 3];
                    for (slot, &a) in args.iter_mut().zip(&cs.args) {
                        *slot = resolve(&bindings, a)?;
                    }
                    let g = KernelGuard::Builtin(cs.op, args);
                    match probes.last_mut() {
                        Some(p) => p.guards.push(g),
                        None => seed.as_mut()?.guards.push(g),
                    }
                }
                // The value-binding form qualifies only in the seed
                // phase (before any probe, so every read resolves to a
                // constant, seed column, or earlier compute): the batch
                // executor then evaluates it once per gathered seed
                // row, matching the step machine's per-row
                // evaluate-or-drop. A binding after a probe would run
                // per join combination — fall back.
                Some((pos, slot)) => {
                    if !probes.is_empty() || computes.len() == MAX_KERNEL_COMPUTES {
                        return None;
                    }
                    let mut args = [KernelSrc::Seed(0); 3];
                    for (j, (dst, &a)) in args.iter_mut().zip(&cs.args).enumerate() {
                        if j == pos {
                            continue; // the solved position is never read
                        }
                        *dst = resolve(&bindings, a)?;
                    }
                    let ci = computes.len();
                    computes.push(KernelCompute {
                        op: cs.op,
                        args,
                        bind: pos,
                    });
                    bindings[slot] = Some(KernelSrc::Computed(ci));
                }
            },
            Step::Neg(_) => return None,
            Step::Scan(s) if seed.is_none() => {
                // A keyed seed qualifies only when the whole key is
                // constant (e.g. a pre-seed assignment `R = executive`
                // pushed into the index key): the batch executor then
                // enumerates one dictionary group instead of the range.
                let key = s
                    .key_vals
                    .iter()
                    .map(|&v| match resolve(&bindings, v)? {
                        KernelSrc::Const(c) => Some(c),
                        _ => None,
                    })
                    .collect::<Option<Vec<Value>>>()?;
                let mut checks = Vec::new();
                for (col, pat) in s.args.iter().enumerate() {
                    if s.key_cols.contains(&col) {
                        continue; // enforced by the dictionary code match
                    }
                    match *pat {
                        ArgPat::Const(c) => checks.push((col, KernelSrc::Const(c))),
                        ArgPat::Bind(sl) => bindings[sl] = Some(KernelSrc::Seed(col)),
                        // A repeated variable within the seed atom:
                        // equality with the column that bound it.
                        ArgPat::Bound(sl) => checks.push((col, bindings[sl]?)),
                    }
                }
                seed = Some(SeedInfo {
                    pred: s.pred,
                    view: s.view,
                    arity: s.args.len(),
                    key_cols: s.key_cols.clone(),
                    key,
                    checks,
                    guards: Vec::new(),
                });
            }
            Step::Scan(s) => {
                if s.key_cols.is_empty() || probes.len() == MAX_KERNEL_PROBES {
                    return None;
                }
                let d = probes.len();
                let key = s
                    .key_vals
                    .iter()
                    .map(|&v| resolve(&bindings, v))
                    .collect::<Option<Vec<KernelSrc>>>()?;
                let mut checks = Vec::new();
                for (col, pat) in s.args.iter().enumerate() {
                    if s.key_cols.contains(&col) {
                        continue; // enforced by the dictionary code match
                    }
                    match *pat {
                        ArgPat::Const(c) => checks.push((col, KernelSrc::Const(c))),
                        ArgPat::Bind(sl) => bindings[sl] = Some(KernelSrc::Probe(d, col)),
                        ArgPat::Bound(sl) => checks.push((col, bindings[sl]?)),
                    }
                }
                probes.push(KernelProbe {
                    pred: s.pred,
                    view: s.view,
                    arity: s.args.len(),
                    key_cols: s.key_cols.clone(),
                    key,
                    checks,
                    guards: Vec::new(),
                    existential: false,
                });
            }
        }
    }
    let seed = seed?;
    let head = head
        .iter()
        .map(|&h| resolve(&bindings, h))
        .collect::<Option<Vec<KernelSrc>>>()?;
    // A probe depth nothing downstream reads is an existence test: once
    // one group row matches, every further match emits the exact same
    // head tuples, so the executor may short-circuit. `checks` and
    // `guards` *within* a depth run while matching that depth and don't
    // pin it.
    let reads = |src: &KernelSrc, d: usize| matches!(*src, KernelSrc::Probe(dd, _) if dd == d);
    let guard_reads = |g: &KernelGuard, d: usize| match g {
        KernelGuard::Cmp(l, _, r) => reads(l, d) || reads(r, d),
        KernelGuard::Builtin(_, args) => args.iter().any(|s| reads(s, d)),
    };
    for d in 0..probes.len() {
        let in_later = probes[d + 1..].iter().any(|p| {
            p.key.iter().any(|s| reads(s, d))
                || p.checks.iter().any(|(_, s)| reads(s, d))
                || p.guards.iter().any(|g| guard_reads(g, d))
        });
        probes[d].existential = !in_later && !head.iter().any(|s| reads(s, d));
    }
    Some(BatchKernel {
        seed_pred: seed.pred,
        seed_view: seed.view,
        seed_arity: seed.arity,
        seed_key_cols: seed.key_cols,
        seed_key: seed.key,
        seed_checks: seed.checks,
        seed_guards: seed.guards,
        computes,
        probes,
        head,
    })
}

struct Compiler<'a> {
    rule: &'a Rule,
    slots: FxHashMap<Symbol, usize>,
    slot_vars: Vec<Symbol>,
    bound: FxHashSet<usize>,
    steps: Vec<Step>,
    /// Views for negated literals (by body index).
    neg_views: FxHashMap<usize, View>,
}

impl<'a> Compiler<'a> {
    fn slot(&mut self, v: Symbol) -> usize {
        if let Some(&s) = self.slots.get(&v) {
            return s;
        }
        let s = self.slot_vars.len();
        self.slots.insert(v, s);
        self.slot_vars.push(v);
        s
    }

    fn source(&mut self, t: Term) -> Source {
        match t {
            Term::Const(c) => Source::Const(c),
            Term::Var(v) => Source::Slot(self.slot(v)),
        }
    }

    fn source_is_bound(&self, s: Source) -> bool {
        match s {
            Source::Const(_) => true,
            Source::Slot(i) => self.bound.contains(&i),
        }
    }

    /// Emits the scan for body literal `li` (must be an atom), given the
    /// view it should read.
    fn emit_scan(&mut self, li: usize, view: View) {
        let atom = self.rule.body[li].as_atom().expect("scan of non-atom");
        let mut args = Vec::with_capacity(atom.arity());
        let mut key_cols = Vec::new();
        let mut key_vals = Vec::new();
        let mut newly_bound: FxHashSet<usize> = FxHashSet::default();
        for (col, &t) in atom.args.iter().enumerate() {
            match t {
                Term::Const(c) => {
                    args.push(ArgPat::Const(c));
                    key_cols.push(col);
                    key_vals.push(Source::Const(c));
                }
                Term::Var(v) => {
                    let s = self.slot(v);
                    if self.bound.contains(&s) {
                        args.push(ArgPat::Bound(s));
                        // Only pre-scan bound slots join the index key.
                        if !newly_bound.contains(&s) {
                            key_cols.push(col);
                            key_vals.push(Source::Slot(s));
                        }
                    } else {
                        args.push(ArgPat::Bind(s));
                        self.bound.insert(s);
                        newly_bound.insert(s);
                    }
                }
            }
        }
        self.steps.push(Step::Scan(ScanStep {
            pred: atom.pred,
            view,
            args,
            key_cols,
            key_vals,
            literal: li,
        }));
    }

    /// Emits every currently runnable comparison (assignments first, then
    /// filters) and fully bound negated subgoal, repeating until none
    /// applies. Marks indices in `done`.
    fn drain_cmps(&mut self, done: &mut FxHashSet<usize>) {
        loop {
            let mut progressed = false;
            for (li, l) in self.rule.body.iter().enumerate() {
                if done.contains(&li) {
                    continue;
                }
                if let Literal::Atom(a) = l {
                    if let Some(op) = BuiltinOp::of(a.pred) {
                        if a.arity() != BuiltinOp::ARITY {
                            continue;
                        }
                        let srcs: Vec<Source> = a.args.iter().map(|&t| self.source(t)).collect();
                        let bound_count = srcs.iter().filter(|s| self.source_is_bound(**s)).count();
                        if bound_count >= 2 {
                            let bind =
                                srcs.iter()
                                    .position(|s| !self.source_is_bound(*s))
                                    .map(|pos| {
                                        let Source::Slot(sl) = srcs[pos] else {
                                            unreachable!("unbound source is a slot")
                                        };
                                        self.bound.insert(sl);
                                        (pos, sl)
                                    });
                            self.steps.push(Step::Compute(ComputeStep {
                                op,
                                args: [srcs[0], srcs[1], srcs[2]],
                                bind,
                            }));
                            done.insert(li);
                            progressed = true;
                        }
                        continue;
                    }
                    continue;
                }
                if let Literal::Neg(a) = l {
                    let bound = a.args.iter().all(|t| match t {
                        Term::Const(_) => true,
                        Term::Var(v) => self.slots.get(v).is_some_and(|sl| self.bound.contains(sl)),
                    });
                    if bound {
                        let key: Vec<Source> = a.args.iter().map(|&t| self.source(t)).collect();
                        self.steps.push(Step::Neg(NegStep {
                            pred: a.pred,
                            view: self.neg_views.get(&li).copied().unwrap_or(View::Full),
                            key,
                        }));
                        done.insert(li);
                        progressed = true;
                    }
                    continue;
                }
                let Literal::Cmp(c) = l else { continue };
                let lhs = self.source(c.lhs);
                let rhs = self.source(c.rhs);
                let lb = self.source_is_bound(lhs);
                let rb = self.source_is_bound(rhs);
                if lb && rb {
                    self.steps
                        .push(Step::Filter(FilterStep { lhs, op: c.op, rhs }));
                    done.insert(li);
                    progressed = true;
                } else if c.op == CmpOp::Eq && (lb || rb) {
                    let (slot, from) = if lb {
                        let Source::Slot(s) = rhs else { unreachable!() };
                        (s, lhs)
                    } else {
                        let Source::Slot(s) = lhs else { unreachable!() };
                        (s, rhs)
                    };
                    self.steps.push(Step::Assign(AssignStep { slot, from }));
                    self.bound.insert(slot);
                    done.insert(li);
                    progressed = true;
                }
            }
            if !progressed {
                return;
            }
        }
    }
}

/// Compiles a rule. `views` assigns a [`View`] to each body-literal index
/// that is an atom (atoms not present default to [`View::Full`]).
/// `first_literal` forces a particular atom to be scanned first (used for
/// the delta occurrence in semi-naive variants).
pub fn compile_rule(
    rule: &Rule,
    views: &BTreeMap<usize, View>,
    first_literal: Option<usize>,
) -> Result<CompiledRule, EngineError> {
    compile_rule_with_sizes(rule, views, first_literal, &BTreeMap::new())
}

/// Like [`compile_rule`], with relation cardinalities for join ordering:
/// when two candidate subgoals have equally many bound argument positions,
/// the smaller relation is scanned first (classic selectivity heuristic —
/// this is what realizes the paper's §4(2) "introduction of small
/// relations in the context of joining large relations"). Predicates
/// absent from `sizes` are assumed large.
pub fn compile_rule_with_sizes(
    rule: &Rule,
    views: &BTreeMap<usize, View>,
    first_literal: Option<usize>,
    sizes: &BTreeMap<Pred, usize>,
) -> Result<CompiledRule, EngineError> {
    let mut c = Compiler {
        rule,
        slots: FxHashMap::default(),
        slot_vars: Vec::new(),
        bound: FxHashSet::default(),
        steps: Vec::new(),
        neg_views: views
            .iter()
            .filter(|(li, _)| rule.body.get(**li).is_some_and(|l| l.as_neg().is_some()))
            .map(|(&li, &v)| (li, v))
            .collect(),
    };

    let atom_indices: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(_, l)| l.as_atom().is_some_and(|a| BuiltinOp::of(a.pred).is_none()))
        .map(|(i, _)| i)
        .collect();
    let mut done: FxHashSet<usize> = FxHashSet::default();

    let view_of = |li: usize| views.get(&li).copied().unwrap_or(View::Full);

    c.drain_cmps(&mut done);
    if let Some(first) = first_literal {
        debug_assert!(atom_indices.contains(&first));
        c.emit_scan(first, view_of(first));
        done.insert(first);
        c.drain_cmps(&mut done);
    }

    loop {
        // Pick the remaining atom with the most bound argument positions.
        // Among boundness-ties the smaller relation goes first — but only
        // when every tied candidate has a known size; if any is unknown
        // (IDB, e.g. a magic guard placed first on purpose) source order
        // is preserved.
        let bound_count = |li: usize| {
            let atom = rule.body[li].as_atom().unwrap();
            atom.args
                .iter()
                .filter(|t| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => c.slots.get(v).is_some_and(|s| c.bound.contains(s)),
                })
                .count()
        };
        let candidates: Vec<usize> = atom_indices
            .iter()
            .filter(|li| !done.contains(li))
            .copied()
            .collect();
        let Some(&max_bound) = candidates
            .iter()
            .map(|&li| bound_count(li))
            .collect::<Vec<_>>()
            .iter()
            .max()
        else {
            break;
        };
        let tied: Vec<usize> = candidates
            .into_iter()
            .filter(|&li| bound_count(li) == max_bound)
            .collect();
        let tied_sizes: Vec<Option<usize>> = tied
            .iter()
            .map(|&li| {
                let atom = rule.body[li].as_atom().unwrap();
                sizes.get(&atom.pred).copied()
            })
            .collect();
        let li = if tied.len() > 1 && tied_sizes.iter().all(Option::is_some) {
            tied.iter()
                .zip(&tied_sizes)
                .min_by_key(|(&li, sz)| (sz.unwrap(), li))
                .map(|(&li, _)| li)
                .unwrap()
        } else {
            tied[0]
        };
        c.emit_scan(li, view_of(li));
        done.insert(li);
        c.drain_cmps(&mut done);
    }

    // Any leftover comparison or negated subgoal has an unbound variable:
    // the rule is unsafe.
    for (li, l) in rule.body.iter().enumerate() {
        if done.contains(&li) {
            continue;
        }
        match l {
            Literal::Cmp(cmp) => {
                return Err(EngineError::UnsafeRule {
                    rule: rule.to_string(),
                    detail: format!("comparison `{cmp}` has unbound variables"),
                });
            }
            Literal::Neg(a) => {
                return Err(EngineError::UnsafeRule {
                    rule: rule.to_string(),
                    detail: format!("negated subgoal `!{a}` has unbound variables"),
                });
            }
            Literal::Atom(a) if BuiltinOp::of(a.pred).is_some() => {
                return Err(EngineError::UnsafeRule {
                    rule: rule.to_string(),
                    detail: format!("builtin `{a}` needs at least two bound arguments"),
                });
            }
            Literal::Atom(_) => {}
        }
    }

    // Head projection; every head variable must be bound.
    let mut head = Vec::with_capacity(rule.head.arity());
    for &t in &rule.head.args {
        let s = c.source(t);
        if !c.source_is_bound(s) {
            return Err(EngineError::UnsafeRule {
                rule: rule.to_string(),
                detail: format!("head term `{t}` is not bound by the body"),
            });
        }
        head.push(s);
    }

    let kernel = derive_kernel(&c.steps, &head, c.slot_vars.len());
    Ok(CompiledRule {
        head_pred: rule.head.pred,
        head,
        nslots: c.slot_vars.len(),
        slot_vars: c.slot_vars,
        steps: c.steps,
        kernel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_datalog::parser::parse_rule;

    fn compile(src: &str) -> CompiledRule {
        compile_rule(&parse_rule(src).unwrap(), &BTreeMap::new(), None).unwrap()
    }

    #[test]
    fn scans_then_filters() {
        let c = compile("p(X,Y) :- e(X,Z), Z > 3, f(Z,Y).");
        // e scanned first (tie-break by order), then Z>3 filter, then f.
        assert_eq!(c.steps.len(), 3);
        assert!(matches!(&c.steps[0], Step::Scan(s) if s.pred == Pred::new("e")));
        assert!(matches!(&c.steps[1], Step::Filter(_)));
        assert!(matches!(&c.steps[2], Step::Scan(s) if s.pred == Pred::new("f")));
        // f's first column is bound by then → index key on col 0.
        if let Step::Scan(s) = &c.steps[2] {
            assert_eq!(s.key_cols, vec![0]);
        }
    }

    #[test]
    fn constant_goes_to_index_key() {
        let c = compile("p(X) :- e(X, 7).");
        if let Step::Scan(s) = &c.steps[0] {
            assert_eq!(s.key_cols, vec![1]);
            assert_eq!(s.key_vals, vec![Source::Const(Value::Int(7))]);
        } else {
            panic!("expected scan");
        }
    }

    #[test]
    fn repeated_var_in_atom_checks_equality_not_key() {
        let c = compile("p(X) :- e(X, X).");
        if let Step::Scan(s) = &c.steps[0] {
            assert!(s.key_cols.is_empty());
            assert!(matches!(s.args[0], ArgPat::Bind(_)));
            assert!(matches!(s.args[1], ArgPat::Bound(_)));
        } else {
            panic!("expected scan");
        }
    }

    #[test]
    fn assignment_from_equality() {
        let c = compile("p(X,Y) :- e(X), Y = X.");
        assert!(c.steps.iter().any(|s| matches!(s, Step::Assign(_))));
    }

    #[test]
    fn eq_chain_assignments() {
        let c = compile("p(X,Y) :- e(X), Y = Z, Z = X.");
        let assigns = c
            .steps
            .iter()
            .filter(|s| matches!(s, Step::Assign(_)))
            .count();
        assert_eq!(assigns, 2);
    }

    #[test]
    fn unsafe_rule_rejected() {
        let r = parse_rule("p(X,Y) :- e(X), Y > 3.").unwrap();
        let err = compile_rule(&r, &BTreeMap::new(), None).unwrap_err();
        assert!(err.to_string().contains("unbound"));
        let r = parse_rule("p(X,Y) :- e(X).").unwrap();
        assert!(compile_rule(&r, &BTreeMap::new(), None).is_err());
    }

    #[test]
    fn first_literal_is_honored() {
        let r = parse_rule("p(X,Y) :- e(X,Z), q(Z,Y).").unwrap();
        let c = compile_rule(&r, &BTreeMap::new(), Some(1)).unwrap();
        assert!(matches!(&c.steps[0], Step::Scan(s) if s.pred == Pred::new("q")));
    }

    #[test]
    fn ground_head_constant_projection() {
        let c = compile("p(X, 3) :- e(X).");
        assert_eq!(c.head[1], Source::Const(Value::Int(3)));
    }

    #[test]
    fn linear_shape_gets_a_kernel() {
        // The canonical linear recursive shape: key-less seed, one
        // indexed probe, direct head projection.
        let c = compile("t(X,Z) :- t0(X,Y), e(Y,Z).");
        let k = c.kernel.as_ref().expect("linear shape should kernelize");
        assert_eq!(k.seed_pred, Pred::new("t0"));
        assert_eq!(k.probes.len(), 1);
        assert_eq!(k.probes[0].pred, Pred::new("e"));
        assert_eq!(k.probes[0].key_cols, vec![0]);
        assert_eq!(k.probes[0].key, vec![KernelSrc::Seed(1)]);
        assert_eq!(k.head, vec![KernelSrc::Seed(0), KernelSrc::Probe(0, 1)]);
    }

    #[test]
    fn probe_chain_gets_a_kernel() {
        // Seed plus two chained probes (the fanout witness shape).
        let c = compile("r(X,Y) :- d(Z,Y), e(X,Z), w(Z,W).");
        let k = c.kernel.as_ref().expect("chain should kernelize");
        assert_eq!(k.probes.len(), 2);
        for p in &k.probes {
            assert!(!p.key_cols.is_empty());
        }
        // `e` binds `X`, which the head reads; `w` binds only the unused
        // `W`, so it is a pure existence test.
        let e = k.probes.iter().position(|p| p.pred == Pred::new("e"));
        let w = k.probes.iter().position(|p| p.pred == Pred::new("w"));
        assert!(!k.probes[e.unwrap()].existential);
        assert!(k.probes[w.unwrap()].existential);
    }

    #[test]
    fn probe_read_by_later_key_is_not_existential() {
        // `f` binds nothing the head reads, but its `Y` keys the later
        // `g` probe — short-circuiting `f` would drop bindings.
        let c = compile("p(X,Z) :- s(X), f(X,Y), g(Y,Z).");
        let k = c.kernel.as_ref().expect("shape should kernelize");
        assert_eq!(k.probes.len(), 2);
        assert!(!k.probes[0].existential);
        assert!(!k.probes[1].existential);
    }

    #[test]
    fn kernel_captures_repeats_within_a_probe() {
        // `Y` is first bound at probe column 1 and repeated at column 2:
        // the kernel must carry a residual equality check, not a key col.
        let c = compile("p(X,Y) :- s(X), e(X, Y, Y).");
        let k = c.kernel.as_ref().expect("shape should kernelize");
        assert_eq!(k.probes[0].key_cols, vec![0]);
        assert_eq!(k.probes[0].checks, vec![(2, KernelSrc::Probe(0, 1))]);
    }

    #[test]
    fn non_kernel_shapes_fall_back() {
        // Negation and probe-dependent value-binding builtins disqualify
        // (a binding that reads a probe row would run per join
        // combination, not per seed row).
        assert!(compile("p(X) :- e(X,Y), f(Y,W), plus(W, 1, _Z).")
            .kernel
            .is_none());
        let r = parse_rule("p(X) :- e(X,Y), !blocked(X,Y).").unwrap();
        let c = compile_rule(&r, &BTreeMap::new(), None).unwrap();
        assert!(c.kernel.is_none());
        // A cross product (key-less second scan) also falls back.
        assert!(compile("p(X,Y) :- e(X), f(Y).").kernel.is_none());
    }

    #[test]
    fn filter_between_scans_becomes_probe_guard() {
        // A comparison after the seed scan guards the seed phase; a
        // pure-check builtin after a probe guards that probe.
        let c = compile("p(X,Y) :- e(X,Z), Z > 3, f(Z,Y).");
        let k = c.kernel.as_ref().expect("guarded chain should kernelize");
        assert_eq!(k.seed_guards.len(), 1);
        assert!(matches!(
            k.seed_guards[0],
            KernelGuard::Cmp(KernelSrc::Seed(1), _, KernelSrc::Const(_))
        ));
        assert_eq!(k.probes.len(), 1);
        assert!(k.probes[0].guards.is_empty());
    }

    #[test]
    fn builtin_tail_becomes_hoisted_compute() {
        // The planner hoists `plus(X, 1, Y)` as a binding compute right
        // after the seed scan (solving for `Y`) and pushes `Y` into the
        // `e` probe's index key — the kernel carries it as a
        // `KernelCompute` read through `KernelSrc::Computed`.
        let c = compile("p(X,Y) :- s(X), e(X,Y), plus(X, 1, Y).");
        let k = c.kernel.as_ref().expect("builtin tail should kernelize");
        assert_eq!(k.computes.len(), 1);
        assert_eq!(k.computes[0].op, BuiltinOp::Plus);
        assert_eq!(k.computes[0].bind, 2);
        assert_eq!(k.probes.len(), 1);
        assert!(k.probes[0].key.contains(&KernelSrc::Computed(0)));
    }

    #[test]
    fn seed_only_binding_builtin_kernelizes() {
        // No probe at all: seed scan + hoisted compute + head read.
        let c = compile("succ_t(X,Z) :- t(X,Y), plus(Y, 1, Z).");
        let k = c.kernel.as_ref().expect("seed-phase binding kernelizes");
        assert!(k.probes.is_empty());
        assert_eq!(k.computes.len(), 1);
        assert_eq!(k.head, vec![KernelSrc::Seed(0), KernelSrc::Computed(0)]);
    }

    #[test]
    fn probe_dependent_binding_builtin_falls_back() {
        // The binding compute reads `Y`, bound by the `e` probe — it
        // would run per join combination, so the shape falls back.
        let c = compile("p(X,Z) :- s(X), e(X,Y), plus(Y, 1, Z).");
        assert!(c.kernel.is_none());
    }

    #[test]
    fn own_guard_does_not_pin_existential() {
        // `w` binds only `W`, unused downstream — the `plus` check reads
        // it, but the planner attaches that guard to the `w` probe
        // itself, where it runs per candidate row *before* the first-hit
        // short-circuit. Nothing after the probe reads its columns, so
        // the probe stays existential.
        let c = compile("p(X) :- s(X), w(X, W), plus(W, 0, W).");
        let k = c.kernel.as_ref().expect("shape should kernelize");
        assert_eq!(k.probes[0].guards.len(), 1);
        assert!(k.probes[0].existential);
    }

    #[test]
    fn later_guard_read_pins_probe_non_existential() {
        // Here the pinning is real: the comparison also reads `F` from
        // the *later* `f` probe, so the planner evaluates it at depth 1
        // — short-circuiting depth 0 would drop `W` bindings the guard
        // still needs.
        let c = compile("p(X) :- s(X), w(X, W), f(X, F), W < F.");
        let k = c.kernel.as_ref().expect("shape should kernelize");
        assert_eq!(k.probes.len(), 2);
        assert!(!k.probes[0].existential);
        assert!(k.probes[1].guards.len() == 1);
        assert!(k.probes[1].existential);
    }

    #[test]
    fn constant_seed_key_kernelizes() {
        // Constant in the seed atom makes the seed scan keyed; the whole
        // key is constant, so the batch kernel enumerates one dictionary
        // group.
        let c = compile("p(X) :- e(3, X).");
        let k = c.kernel.as_ref().expect("constant-key seed kernelizes");
        assert_eq!(k.seed_key_cols, vec![0]);
        assert_eq!(k.seed_key, vec![Value::Int(3)]);
        assert!(k.probes.is_empty());
        assert_eq!(k.head, vec![KernelSrc::Seed(1)]);
    }

    #[test]
    fn multi_recursive_rule_kernelizes() {
        // Two IDB occurrences: seed on the first, probe on the second.
        let c = compile("t(X,Z) :- t(X,Y), t(Y,Z).");
        let k = c.kernel.as_ref().expect("multi-recursive kernelizes");
        assert_eq!(k.seed_pred, Pred::new("t"));
        assert_eq!(k.probes.len(), 1);
        assert_eq!(k.probes[0].pred, Pred::new("t"));
    }

    #[test]
    fn constant_equality_becomes_index_key() {
        // `R = executive` is turned into an assignment before any scan, so
        // the boss scan can use column 2 as part of its index key —
        // selection pushdown all the way into the index.
        let c = compile("t(U) :- boss(U, E, R), R = executive, experienced(U).");
        let kinds: Vec<&'static str> = c
            .steps
            .iter()
            .map(|s| match s {
                Step::Scan(_) => "scan",
                Step::Neg(_) => "neg",
                Step::Compute(_) => "compute",
                Step::Filter(_) => "filter",
                Step::Assign(_) => "assign",
            })
            .collect();
        assert_eq!(kinds, vec!["assign", "scan", "scan"]);
        if let Step::Scan(s) = &c.steps[1] {
            assert_eq!(s.pred, Pred::new("boss"));
            assert_eq!(s.key_cols, vec![2]);
        } else {
            panic!("expected boss scan");
        }
    }
}

impl std::fmt::Display for Source {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Source::Slot(i) => write!(f, "${i}"),
            Source::Const(c) => write!(f, "{c}"),
        }
    }
}

impl std::fmt::Display for CompiledRule {
    /// Renders the physical plan, one step per line — the engine's
    /// `EXPLAIN` output.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let head: Vec<String> = self.head.iter().map(ToString::to_string).collect();
        writeln!(f, "plan for {}({})", self.head_pred, head.join(", "))?;
        for (vi, v) in self.slot_vars.iter().enumerate() {
            write!(f, "{}${vi}={v}", if vi == 0 { "  slots: " } else { ", " })?;
        }
        if !self.slot_vars.is_empty() {
            writeln!(f)?;
        }
        for step in &self.steps {
            match step {
                Step::Scan(s) => {
                    let args: Vec<String> = s
                        .args
                        .iter()
                        .map(|a| match a {
                            ArgPat::Const(c) => format!("={c}"),
                            ArgPat::Bound(i) => format!("=${i}"),
                            ArgPat::Bind(i) => format!("→${i}"),
                        })
                        .collect();
                    let key = if s.key_cols.is_empty() {
                        "full scan".to_owned()
                    } else {
                        format!("index on cols {:?}", s.key_cols)
                    };
                    writeln!(
                        f,
                        "  scan {}({}) [{:?}, {}]",
                        s.pred,
                        args.join(", "),
                        s.view,
                        key
                    )?;
                }
                Step::Neg(n) => {
                    let key: Vec<String> = n.key.iter().map(ToString::to_string).collect();
                    writeln!(
                        f,
                        "  check absent {}({}) [{:?}]",
                        n.pred,
                        key.join(", "),
                        n.view
                    )?;
                }
                Step::Compute(cs) => {
                    let args: Vec<String> = cs.args.iter().map(ToString::to_string).collect();
                    match cs.bind {
                        Some((pos, slot)) => writeln!(
                            f,
                            "  compute {:?}({}) → arg {} = ${}",
                            cs.op,
                            args.join(", "),
                            pos,
                            slot
                        )?,
                        None => writeln!(f, "  check {:?}({})", cs.op, args.join(", "))?,
                    }
                }
                Step::Filter(c) => writeln!(f, "  filter {} {} {}", c.lhs, c.op, c.rhs)?,
                Step::Assign(a) => writeln!(f, "  assign ${} := {}", a.slot, a.from)?,
            }
        }
        if let Some(k) = &self.kernel {
            writeln!(
                f,
                "  kernel: batch (seed {} + {} probe{})",
                k.seed_pred,
                k.probes.len(),
                if k.probes.len() == 1 { "" } else { "s" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;
    use semrec_datalog::parser::parse_rule;

    #[test]
    fn explain_output_shape() {
        let r = parse_rule("p(X, Y) :- e(X, Z), Z > 3, f(Z, Y), !blocked(Z).").unwrap();
        let c = compile_rule(&r, &BTreeMap::new(), None).unwrap();
        let text = c.to_string();
        assert!(text.contains("plan for p("), "{text}");
        assert!(text.contains("scan e("));
        assert!(text.contains("filter"));
        assert!(text.contains("check absent blocked"));
        assert!(text.contains("index on cols"));
    }
}

#[cfg(test)]
mod size_aware_tests {
    use super::*;
    use semrec_datalog::parser::parse_rule;

    #[test]
    fn smaller_relation_scanned_first_on_tie() {
        let r = parse_rule("q(X, Y) :- big(X, Z), small(X, W), link(Z, W, Y).").unwrap();
        let mut sizes = BTreeMap::new();
        sizes.insert(Pred::new("big"), 100_000);
        sizes.insert(Pred::new("small"), 10);
        sizes.insert(Pred::new("link"), 100_000);
        let c = compile_rule_with_sizes(&r, &BTreeMap::new(), None, &sizes).unwrap();
        if let Step::Scan(s) = &c.steps[0] {
            assert_eq!(s.pred, Pred::new("small"));
        } else {
            panic!("expected scan first");
        }
    }

    #[test]
    fn boundness_still_dominates_size() {
        // After scanning tiny, mid has a bound arg while huge has none —
        // mid wins despite being larger than huge? No: bound args first.
        let r = parse_rule("q(X, Y) :- tiny(X), mid(X, Y), huge(Z, Y).").unwrap();
        let mut sizes = BTreeMap::new();
        sizes.insert(Pred::new("tiny"), 5);
        sizes.insert(Pred::new("mid"), 1_000);
        sizes.insert(Pred::new("huge"), 50);
        let c = compile_rule_with_sizes(&r, &BTreeMap::new(), None, &sizes).unwrap();
        let order: Vec<&str> = c
            .steps
            .iter()
            .filter_map(|s| match s {
                Step::Scan(s) => Some(s.pred.name()),
                _ => None,
            })
            .collect();
        assert_eq!(order, vec!["tiny", "mid", "huge"]);
    }

    #[test]
    fn unknown_sizes_fall_back_to_source_order() {
        let r = parse_rule("q(X, Y) :- a(X, Z), b(Z, Y).").unwrap();
        let c = compile_rule_with_sizes(&r, &BTreeMap::new(), None, &BTreeMap::new()).unwrap();
        if let Step::Scan(s) = &c.steps[0] {
            assert_eq!(s.pred, Pred::new("a"));
        } else {
            panic!();
        }
    }
}
