//! A small FxHash-style hasher (the Firefox/rustc multiply-rotate hash)
//! plus `HashMap`/`HashSet` aliases built on it.
//!
//! The engine's dedup and index probes hash tiny keys — a handful of
//! 16-byte [`Value`](semrec_datalog::term::Value)s — where SipHash's
//! per-hash setup cost dominates. FxHash is not DoS-resistant, which is
//! fine here: keys come from the workload being evaluated, not from an
//! adversary with oracle access to the table layout.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-style multiply-rotate hasher.
#[derive(Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes a slice of hashable items (e.g. a tuple of `Value`s) to a `u64`
/// with [`FxHasher`]. Used by the flat relation storage, which buckets rows
/// by precomputed hash instead of by owned key vectors.
#[inline]
pub fn hash_slice<T: Hash>(items: &[T]) -> u64 {
    let mut h = FxHasher::default();
    for it in items {
        it.hash(&mut h);
    }
    h.finish()
}

/// Hashes one 64-bit word with [`FxHasher`] — the single-key variant of
/// [`hash_slice`], for callers whose key is already a machine word (the
/// dictionary microbenchmark's synthetic keys, packed row ids).
#[inline]
pub fn hash_one(x: u64) -> u64 {
    let mut h = FxHasher::default();
    x.hash(&mut h);
    h.finish()
}

/// A pass-through hasher for keys that are *already* hashes (`u64`).
/// Rehashing a hash wastes cycles and does not improve distribution.
#[derive(Clone, Copy, Default)]
pub struct PrehashedHasher(u64);

impl Hasher for PrehashedHasher {
    #[inline]
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("PrehashedHasher only accepts u64 keys");
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = i;
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// A `HashMap` from precomputed `u64` hashes, without rehashing.
pub type PrehashedMap<V> = HashMap<u64, V, BuildHasherDefault<PrehashedHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_hash_is_order_sensitive() {
        let a = hash_slice(&[1u64, 2]);
        let b = hash_slice(&[2u64, 1]);
        assert_ne!(a, b);
        assert_eq!(a, hash_slice(&[1u64, 2]));
    }

    #[test]
    fn fx_map_works() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        m.insert(1, 2);
        m.insert(3, 4);
        assert_eq!(m.get(&1), Some(&2));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn prehashed_map_round_trips() {
        let mut m: PrehashedMap<&'static str> = PrehashedMap::default();
        m.insert(hash_slice(&[7u64]), "x");
        assert_eq!(m.get(&hash_slice(&[7u64])), Some(&"x"));
    }
}
