//! Evaluation instrumentation.
//!
//! The paper's claims are about *work avoided* (joins eliminated, scans
//! reduced, subtrees pruned) and *run-time overhead*. These counters make
//! that work observable independently of wall-clock noise, and the E1–E4
//! experiment tables report them next to timings.

use std::fmt;
use std::ops::AddAssign;

/// Work counters accumulated during an evaluation.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct Stats {
    /// Fixpoint rounds executed.
    pub iterations: u64,
    /// Compiled-plan executions (rule × variant × round).
    pub rule_firings: u64,
    /// Index probes issued by scan steps.
    pub probes: u64,
    /// Rows examined by scan steps (after index narrowing).
    pub rows_scanned: u64,
    /// Comparison evaluations (filter steps).
    pub cmp_evals: u64,
    /// Head tuples produced (including duplicates).
    pub derived: u64,
    /// Head tuples that were new.
    pub inserted: u64,
}

impl AddAssign for Stats {
    fn add_assign(&mut self, rhs: Stats) {
        self.iterations += rhs.iterations;
        self.rule_firings += rhs.rule_firings;
        self.probes += rhs.probes;
        self.rows_scanned += rhs.rows_scanned;
        self.cmp_evals += rhs.cmp_evals;
        self.derived += rhs.derived;
        self.inserted += rhs.inserted;
    }
}

/// Counters for the persistent worker pool, accumulated across every
/// parallel round of an evaluation. All zero in serial mode.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct PoolStats {
    /// Rounds executed on the pool (rounds with a single indivisible task
    /// run inline and are not counted).
    pub parallel_rounds: u64,
    /// Tasks dispatched (a plan split across workers counts once per chunk).
    pub tasks: u64,
    /// Sum of per-task execution time across workers, in nanoseconds.
    pub busy_nanos: u64,
    /// Sum of per-round wall-clock batch time, in nanoseconds.
    pub wall_nanos: u64,
    /// Time spent eagerly building indexes before parallel phases.
    pub index_build_nanos: u64,
    /// Seed-scan rows dispatched across all parallel rounds.
    pub rows_dispatched: u64,
    /// Seed-scan rows of the most recent parallel round.
    pub last_round_rows: u64,
    /// Wall-clock nanoseconds of the most recent parallel round.
    pub last_round_nanos: u64,
    /// Worker threads in the pool (0 until the pool first runs).
    pub workers: usize,
}

impl PoolStats {
    /// Fraction of worker capacity spent executing tasks: total busy time
    /// over `workers ×` total batch wall time. 0 when no round ran.
    pub fn busy_fraction(&self) -> f64 {
        let capacity = self.wall_nanos.saturating_mul(self.workers as u64);
        if capacity == 0 {
            return 0.0;
        }
        (self.busy_nanos as f64 / capacity as f64).min(1.0)
    }

    /// Aggregate seed-scan rows per second over all parallel rounds.
    pub fn rows_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.rows_dispatched as f64 * 1e9 / self.wall_nanos as f64
    }

    /// Seed-scan rows per second of the most recent parallel round.
    pub fn last_round_rows_per_sec(&self) -> f64 {
        if self.last_round_nanos == 0 {
            return 0.0;
        }
        self.last_round_rows as f64 * 1e9 / self.last_round_nanos as f64
    }
}

impl fmt::Display for PoolStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "par_rounds={} tasks={} busy={:.0}% rows/s={:.0} index_ms={:.2}",
            self.parallel_rounds,
            self.tasks,
            self.busy_fraction() * 100.0,
            self.rows_per_sec(),
            self.index_build_nanos as f64 / 1e6,
        )
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "iters={} firings={} probes={} rows={} cmps={} derived={} inserted={}",
            self.iterations,
            self.rule_firings,
            self.probes,
            self.rows_scanned,
            self.cmp_evals,
            self.derived,
            self.inserted
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = Stats {
            iterations: 1,
            rows_scanned: 10,
            ..Stats::default()
        };
        a += Stats {
            iterations: 2,
            derived: 5,
            ..Stats::default()
        };
        assert_eq!(a.iterations, 3);
        assert_eq!(a.rows_scanned, 10);
        assert_eq!(a.derived, 5);
    }
}
