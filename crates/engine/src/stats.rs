//! Evaluation instrumentation.
//!
//! The paper's claims are about *work avoided* (joins eliminated, scans
//! reduced, subtrees pruned) and *run-time overhead*. These counters make
//! that work observable independently of wall-clock noise, and the E1–E4
//! experiment tables report them next to timings.

use std::fmt;
use std::ops::AddAssign;

/// Work counters accumulated during an evaluation.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct Stats {
    /// Fixpoint rounds executed.
    pub iterations: u64,
    /// Compiled-plan executions (rule × variant × round).
    pub rule_firings: u64,
    /// Index probes issued by scan steps.
    pub probes: u64,
    /// Rows examined by scan steps (after index narrowing).
    pub rows_scanned: u64,
    /// Comparison evaluations (filter steps).
    pub cmp_evals: u64,
    /// Head tuples produced (including duplicates).
    pub derived: u64,
    /// Head tuples that were new.
    pub inserted: u64,
}

impl AddAssign for Stats {
    fn add_assign(&mut self, rhs: Stats) {
        self.iterations += rhs.iterations;
        self.rule_firings += rhs.rule_firings;
        self.probes += rhs.probes;
        self.rows_scanned += rhs.rows_scanned;
        self.cmp_evals += rhs.cmp_evals;
        self.derived += rhs.derived;
        self.inserted += rhs.inserted;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "iters={} firings={} probes={} rows={} cmps={} derived={} inserted={}",
            self.iterations,
            self.rule_firings,
            self.probes,
            self.rows_scanned,
            self.cmp_evals,
            self.derived,
            self.inserted
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = Stats {
            iterations: 1,
            rows_scanned: 10,
            ..Stats::default()
        };
        a += Stats {
            iterations: 2,
            derived: 5,
            ..Stats::default()
        };
        assert_eq!(a.iterations, 3);
        assert_eq!(a.rows_scanned, 10);
        assert_eq!(a.derived, 5);
    }
}
