//! Evaluation instrumentation.
//!
//! The paper's claims are about *work avoided* (joins eliminated, scans
//! reduced, subtrees pruned) and *run-time overhead*. These counters make
//! that work observable independently of wall-clock noise, and the E1–E4
//! experiment tables report them next to timings.

use std::fmt;
use std::ops::AddAssign;

/// Work counters accumulated during an evaluation.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct Stats {
    /// Fixpoint rounds executed.
    pub iterations: u64,
    /// Compiled-plan executions (rule × variant × round).
    pub rule_firings: u64,
    /// Index probes issued by scan steps.
    pub probes: u64,
    /// Rows examined by scan steps (after index narrowing).
    pub rows_scanned: u64,
    /// Comparison evaluations (filter steps).
    pub cmp_evals: u64,
    /// Head tuples produced (including duplicates).
    pub derived: u64,
    /// Head tuples that were new.
    pub inserted: u64,
    /// Rows yielded by index probes after lazy liveness/range filtering
    /// of dictionary groups (a subset of `rows_scanned`; full scans
    /// don't count here). Batch kernels charge group-level probe work
    /// per member — a split or batched group reports the same counts as
    /// tuple-at-a-time execution would.
    pub probe_hits: u64,
    /// Plan executions routed to the batch kernel pipeline (chunked
    /// gather → sort-group → probe-run → emit; DESIGN.md §13).
    pub kernel_firings: u64,
    /// Plan executions routed to the general step machine.
    pub interp_firings: u64,
    /// High-water mark of reusable per-worker task scratch, in bytes.
    /// Max-merged (not summed) across workers; steady-state rounds must
    /// keep this flat — it is the observable witness that the join
    /// kernels do zero heap allocation per derived row.
    pub scratch_hw_bytes: u64,
    /// Dictionary-map probes the batch pipeline actually paid (a
    /// [`crate::relation::CodeMap`] walk behind `ProbeHandle::encode`).
    /// Memo hits are *not* counted here — `dict_probes + dict_memo_hits`
    /// is the total key→code resolution demand.
    pub dict_probes: u64,
    /// Key→code resolutions served from the per-plan EDB-stable memo
    /// instead of the dictionary map (DESIGN.md §13).
    pub dict_memo_hits: u64,
    /// Mid-insert dedup-table rehashes during drains — the stall the
    /// EWMA pre-sizing exists to eliminate. Non-zero means a round's
    /// unique-row estimate was off by more than the 2× sizing headroom.
    pub dedup_regrows: u64,
    /// Wall nanoseconds spent in the cost planner (statistics
    /// collection, alternative estimation, route selection) before
    /// evaluation started. 0 for unplanned (direct) evaluations. Gated
    /// in the bench harness at <2% of evaluation time.
    pub plan_nanos: u64,
}

impl AddAssign for Stats {
    fn add_assign(&mut self, rhs: Stats) {
        self.iterations += rhs.iterations;
        self.rule_firings += rhs.rule_firings;
        self.probes += rhs.probes;
        self.rows_scanned += rhs.rows_scanned;
        self.cmp_evals += rhs.cmp_evals;
        self.derived += rhs.derived;
        self.inserted += rhs.inserted;
        self.probe_hits += rhs.probe_hits;
        self.kernel_firings += rhs.kernel_firings;
        self.interp_firings += rhs.interp_firings;
        self.scratch_hw_bytes = self.scratch_hw_bytes.max(rhs.scratch_hw_bytes);
        self.dict_probes += rhs.dict_probes;
        self.dict_memo_hits += rhs.dict_memo_hits;
        self.dedup_regrows += rhs.dedup_regrows;
        self.plan_nanos += rhs.plan_nanos;
    }
}

/// Counters for round execution, accumulated across an evaluation.
/// Parallel rounds account pool batches (with per-phase attribution);
/// serial rounds — including parallel-mode rounds that the adaptive
/// cutover routed to the control thread — account wall time and seed
/// rows too, so throughput is comparable across thread counts.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct PoolStats {
    /// Rounds executed on the pool.
    pub parallel_rounds: u64,
    /// Rounds executed serially on the control thread (always in serial
    /// mode; in parallel mode, rounds below the adaptive cutover).
    pub serial_rounds: u64,
    /// Tasks dispatched (a plan split across workers counts once per
    /// chunk; merge jobs count one per shard).
    pub tasks: u64,
    /// Sum of per-task execution time across workers, in nanoseconds.
    pub busy_nanos: u64,
    /// Sum of per-round wall-clock batch time, in nanoseconds.
    pub wall_nanos: u64,
    /// Worker busy time spent in join-phase tasks, in nanoseconds.
    pub join_nanos: u64,
    /// Worker busy time spent in per-shard merge tasks, in nanoseconds.
    pub merge_nanos: u64,
    /// Control-thread time concatenating shard segments into relations.
    pub concat_nanos: u64,
    /// Time spent eagerly building indexes before parallel phases.
    pub index_build_nanos: u64,
    /// Seed-scan rows dispatched across all parallel rounds.
    pub rows_dispatched: u64,
    /// Wall-clock nanoseconds of serial rounds.
    pub serial_nanos: u64,
    /// Seed-scan rows processed by serial rounds.
    pub serial_rows: u64,
    /// Seed-scan rows of the most recent parallel round.
    pub last_round_rows: u64,
    /// Wall-clock nanoseconds of the most recent parallel round.
    pub last_round_nanos: u64,
    /// Worker threads in the pool (0 until the pool first runs).
    pub workers: usize,
    /// Merge shards per parallel round (0 until a parallel round runs).
    pub shards: usize,
    /// The adaptive serial-cutover threshold in seed rows (0 = parallel
    /// evaluation disabled or not yet calibrated).
    pub cutover_rows: u64,
    /// Rounds where parallel evaluation was *requested* (`parallelism >
    /// 1`) but the adaptive cutover routed the round to the control
    /// thread anyway — the seed volume was below the dispatch-cost
    /// threshold, or the machine has a single schedulable CPU. A subset
    /// of `serial_rounds`; records the per-round decision so negative
    /// scaling fixed by staying serial is observable, not inferred.
    pub cutover_serial_rounds: u64,
}

impl PoolStats {
    /// Fraction of execution capacity spent on useful work: pool rounds
    /// contribute `busy / (workers × wall)`; serial rounds run one thread
    /// at full utilization and contribute `wall / wall`. 0 when no round
    /// ran anywhere.
    pub fn busy_fraction(&self) -> f64 {
        let capacity = self
            .wall_nanos
            .saturating_mul(self.workers as u64)
            .saturating_add(self.serial_nanos);
        if capacity == 0 {
            return 0.0;
        }
        let busy = self.busy_nanos.saturating_add(self.serial_nanos);
        (busy as f64 / capacity as f64).min(1.0)
    }

    /// Aggregate seed-scan rows per second over all rounds, parallel and
    /// serial alike (wall-time based, so thread counts are comparable).
    pub fn rows_per_sec(&self) -> f64 {
        let nanos = self.wall_nanos + self.serial_nanos;
        if nanos == 0 {
            return 0.0;
        }
        (self.rows_dispatched + self.serial_rows) as f64 * 1e9 / nanos as f64
    }

    /// Seed-scan rows per second of the most recent parallel round.
    pub fn last_round_rows_per_sec(&self) -> f64 {
        if self.last_round_nanos == 0 {
            return 0.0;
        }
        self.last_round_rows as f64 * 1e9 / self.last_round_nanos as f64
    }
}

impl fmt::Display for PoolStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "par_rounds={} serial_rounds={} tasks={} shards={} busy={:.0}% \
             rows/s={:.0} join_ms={:.2} merge_ms={:.2} concat_ms={:.2} \
             index_ms={:.2} cutover_rows={} cutover_serial={}",
            self.parallel_rounds,
            self.serial_rounds,
            self.tasks,
            self.shards,
            self.busy_fraction() * 100.0,
            self.rows_per_sec(),
            self.join_nanos as f64 / 1e6,
            self.merge_nanos as f64 / 1e6,
            self.concat_nanos as f64 / 1e6,
            self.index_build_nanos as f64 / 1e6,
            self.cutover_rows,
            self.cutover_serial_rounds,
        )
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "iters={} firings={} probes={} hits={} rows={} cmps={} derived={} \
             inserted={} kernel={} interp={} scratch_hw={}B dict={} memo={} \
             regrows={} plan_ms={:.3}",
            self.iterations,
            self.rule_firings,
            self.probes,
            self.probe_hits,
            self.rows_scanned,
            self.cmp_evals,
            self.derived,
            self.inserted,
            self.kernel_firings,
            self.interp_firings,
            self.scratch_hw_bytes,
            self.dict_probes,
            self.dict_memo_hits,
            self.dedup_regrows,
            self.plan_nanos as f64 / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = Stats {
            iterations: 1,
            rows_scanned: 10,
            ..Stats::default()
        };
        a += Stats {
            iterations: 2,
            derived: 5,
            ..Stats::default()
        };
        assert_eq!(a.iterations, 3);
        assert_eq!(a.rows_scanned, 10);
        assert_eq!(a.derived, 5);
    }

    #[test]
    fn scratch_high_water_merges_by_max() {
        let mut a = Stats {
            scratch_hw_bytes: 4096,
            ..Stats::default()
        };
        a += Stats {
            scratch_hw_bytes: 1024,
            ..Stats::default()
        };
        assert_eq!(a.scratch_hw_bytes, 4096, "hw is a max, not a sum");
        a += Stats {
            scratch_hw_bytes: 8192,
            ..Stats::default()
        };
        assert_eq!(a.scratch_hw_bytes, 8192);
    }
}
