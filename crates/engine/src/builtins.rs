//! Native arithmetic builtin predicates, evaluated by the planner instead
//! of relation lookup:
//!
//! * `plus(X, Y, Z)`  ⇔ `X + Y = Z`
//! * `times(X, Y, Z)` ⇔ `X × Y = Z`
//!
//! A builtin atom is *runnable* once at least two of its three arguments
//! are bound: the third is computed (for `times`, the multiplicative modes
//! fail unless the division is exact and the divisor non-zero). With all
//! three bound it acts as a filter. Arithmetic is over `Value::Int` only
//! and fails (no answers) on strings or overflow rather than erroring —
//! arithmetic failure in a body just means the row doesn't qualify.
//!
//! Builtins are ordinary atoms syntactically (`p(X, Y, Z)` in rule
//! bodies), so the parser and the rest of the toolchain need no special
//! cases; the engine's planner intercepts them before relation resolution.
//!
//! **Termination caveat**: arithmetic makes Datalog's domain unbounded —
//! a rule like `dist(X, Y, N) :- dist(X, Z, M), e(Z, Y), plus(M, 1, N)`
//! diverges on cyclic data. Use
//! [`Evaluator::with_max_iterations`](crate::eval::Evaluator::with_max_iterations)
//! as a guard when data is not known acyclic.

use semrec_datalog::atom::Pred;
use semrec_datalog::term::Value;

/// The builtin operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BuiltinOp {
    /// `plus(X, Y, Z)` ⇔ X + Y = Z.
    Plus,
    /// `times(X, Y, Z)` ⇔ X × Y = Z.
    Times,
}

impl BuiltinOp {
    /// Recognizes a builtin predicate (all builtins have arity 3).
    pub fn of(pred: Pred) -> Option<BuiltinOp> {
        match pred.name() {
            "plus" => Some(BuiltinOp::Plus),
            "times" => Some(BuiltinOp::Times),
            _ => None,
        }
    }

    /// The arity every builtin has.
    pub const ARITY: usize = 3;

    /// Given the three argument values with exactly one unknown (`None`),
    /// computes it. Returns `None` when the mode is unsupported for the
    /// values (non-integers, inexact division, overflow).
    pub fn solve(self, args: [Option<Value>; 3]) -> Option<Value> {
        let int = |v: Value| match v {
            Value::Int(i) => Some(i),
            Value::Str(_) => None,
        };
        match (self, args) {
            (BuiltinOp::Plus, [Some(x), Some(y), None]) => {
                Some(Value::Int(int(x)?.checked_add(int(y)?)?))
            }
            (BuiltinOp::Plus, [Some(x), None, Some(z)]) => {
                Some(Value::Int(int(z)?.checked_sub(int(x)?)?))
            }
            (BuiltinOp::Plus, [None, Some(y), Some(z)]) => {
                Some(Value::Int(int(z)?.checked_sub(int(y)?)?))
            }
            (BuiltinOp::Times, [Some(x), Some(y), None]) => {
                Some(Value::Int(int(x)?.checked_mul(int(y)?)?))
            }
            (BuiltinOp::Times, [Some(x), None, Some(z)]) => exact_div(int(z)?, int(x)?),
            (BuiltinOp::Times, [None, Some(y), Some(z)]) => exact_div(int(z)?, int(y)?),
            _ => None,
        }
    }

    /// With all three bound: does the relation hold?
    pub fn check(self, x: Value, y: Value, z: Value) -> bool {
        self.solve([Some(x), Some(y), None]) == Some(z)
    }
}

fn exact_div(z: i64, d: i64) -> Option<Value> {
    if d == 0 || z % d != 0 {
        None
    } else {
        Some(Value::Int(z / d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recognition() {
        assert_eq!(BuiltinOp::of(Pred::new("plus")), Some(BuiltinOp::Plus));
        assert_eq!(BuiltinOp::of(Pred::new("times")), Some(BuiltinOp::Times));
        assert_eq!(BuiltinOp::of(Pred::new("edge")), None);
    }

    #[test]
    fn plus_modes() {
        let i = Value::Int;
        assert_eq!(
            BuiltinOp::Plus.solve([Some(i(2)), Some(i(3)), None]),
            Some(i(5))
        );
        assert_eq!(
            BuiltinOp::Plus.solve([Some(i(2)), None, Some(i(5))]),
            Some(i(3))
        );
        assert_eq!(
            BuiltinOp::Plus.solve([None, Some(i(3)), Some(i(5))]),
            Some(i(2))
        );
        assert!(BuiltinOp::Plus.check(i(2), i(3), i(5)));
        assert!(!BuiltinOp::Plus.check(i(2), i(3), i(6)));
    }

    #[test]
    fn times_modes_and_exactness() {
        let i = Value::Int;
        assert_eq!(
            BuiltinOp::Times.solve([Some(i(4)), Some(i(3)), None]),
            Some(i(12))
        );
        assert_eq!(
            BuiltinOp::Times.solve([Some(i(4)), None, Some(i(12))]),
            Some(i(3))
        );
        // Inexact or zero divisions fail.
        assert_eq!(
            BuiltinOp::Times.solve([Some(i(5)), None, Some(i(12))]),
            None
        );
        assert_eq!(
            BuiltinOp::Times.solve([Some(i(0)), None, Some(i(12))]),
            None
        );
        assert_eq!(BuiltinOp::Times.solve([Some(i(0)), None, Some(i(0))]), None);
    }

    #[test]
    fn strings_and_overflow_fail_softly() {
        assert_eq!(
            BuiltinOp::Plus.solve([Some(Value::str("a")), Some(Value::Int(1)), None]),
            None
        );
        assert_eq!(
            BuiltinOp::Plus.solve([Some(Value::Int(i64::MAX)), Some(Value::Int(1)), None]),
            None
        );
    }
}
