//! The extensional database: a map from predicate to relation.

use crate::relation::{Relation, Tuple};
use semrec_datalog::atom::{Atom, Pred};
use semrec_datalog::constraint::{Constraint, IcHead};
use semrec_datalog::subst::Subst;
use semrec_datalog::symbol::Symbol;
use semrec_datalog::term::{Term, Value};
use std::collections::BTreeMap;

/// An extensional database (EDB): ground facts grouped by predicate.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Database {
    rels: BTreeMap<Pred, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Inserts a fact; creates the relation on first use. Returns `true` if
    /// the fact was new.
    ///
    /// # Panics
    /// Panics if the predicate was already used with a different arity.
    pub fn insert(&mut self, pred: impl Into<Pred>, tuple: Tuple) -> bool {
        let pred = pred.into();
        let arity = tuple.len();
        self.rels
            .entry(pred)
            .or_insert_with(|| Relation::new(arity))
            .insert(tuple)
    }

    /// Inserts a ground atom.
    ///
    /// # Panics
    /// Panics if the atom is not ground.
    pub fn insert_atom(&mut self, atom: &Atom) -> bool {
        let tuple: Tuple = atom
            .args
            .iter()
            .map(|t| t.as_const().expect("fact must be ground"))
            .collect();
        self.insert(atom.pred, tuple)
    }

    /// Builds a database from ground atoms (e.g. the `facts` of a parsed
    /// [`semrec_datalog::Unit`]).
    pub fn from_facts<'a>(facts: impl IntoIterator<Item = &'a Atom>) -> Database {
        let mut db = Database::new();
        for f in facts {
            db.insert_atom(f);
        }
        db
    }

    /// Deletes a fact (tombstoning its row — see [`Relation::delete`]).
    /// Returns `true` if the fact was present.
    pub fn delete(&mut self, pred: impl Into<Pred>, tuple: &[Value]) -> bool {
        self.rels
            .get_mut(&pred.into())
            .is_some_and(|r| r.delete(tuple))
    }

    /// Compacts every relation that accumulated tombstones, reclaiming
    /// deleted rows' storage and renumbering physical row ids. Callers
    /// holding row-id watermarks (the incremental layer's transaction
    /// marks) must refresh them afterwards.
    pub fn compact(&mut self) {
        for r in self.rels.values_mut() {
            r.compact();
        }
    }

    /// The relation for `pred`, if present.
    pub fn get(&self, pred: Pred) -> Option<&Relation> {
        self.rels.get(&pred)
    }

    /// Mutable access to the relation for `pred`, if present. Used by the
    /// incremental layer to roll back in-place appends on error.
    pub fn get_mut(&mut self, pred: Pred) -> Option<&mut Relation> {
        self.rels.get_mut(&pred)
    }

    /// Number of tuples for `pred` (0 if absent).
    pub fn count(&self, pred: impl Into<Pred>) -> usize {
        self.get(pred.into()).map_or(0, Relation::len)
    }

    /// Total number of tuples in the database.
    pub fn total_tuples(&self) -> usize {
        self.rels.values().map(Relation::len).sum()
    }

    /// Iterates over `(pred, relation)` pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (Pred, &Relation)> {
        self.rels.iter().map(|(&p, r)| (p, r))
    }

    /// Checks whether this database satisfies an integrity constraint:
    /// every assignment satisfying the body must satisfy the head. Returns
    /// the list of violating body bindings (empty = satisfied). Intended
    /// for tests and generator validation, not hot paths.
    pub fn violations(&self, ic: &Constraint) -> Vec<Subst> {
        let mut out = Vec::new();
        let vars: Vec<Symbol> = ic.vars().into_iter().collect();
        self.enumerate_bindings(ic, 0, &mut Subst::new(), &mut out, &vars);
        out
    }

    /// True if the database satisfies the constraint.
    pub fn satisfies(&self, ic: &Constraint) -> bool {
        self.violations(ic).is_empty()
    }

    fn enumerate_bindings(
        &self,
        ic: &Constraint,
        i: usize,
        partial: &mut Subst,
        out: &mut Vec<Subst>,
        _vars: &[Symbol],
    ) {
        if i == ic.body_atoms.len() {
            // All database atoms matched; check evaluable body atoms.
            for c in &ic.body_cmps {
                let g = partial.apply_cmp(c);
                match g.eval_ground() {
                    Some(true) => {}
                    // Unbound comparison variables make the body
                    // unsatisfiable for this binding (ICs are connected, so
                    // this only happens for malformed constraints).
                    _ => return,
                }
            }
            let ok = match &ic.head {
                IcHead::None => false,
                IcHead::Cmp(c) => partial.apply_cmp(c).eval_ground() == Some(true),
                IcHead::Atom(a) => {
                    let g = partial.apply_atom(a);
                    if let Some(rel) = self.get(g.pred) {
                        if g.is_ground() {
                            let t: Tuple = g.args.iter().map(|t| t.as_const().unwrap()).collect();
                            rel.contains(&t)
                        } else {
                            // Existential head variables: satisfied if any
                            // tuple matches the bound positions.
                            rel.iter().any(|row| {
                                g.args.iter().zip(row).all(|(t, v)| match t.as_const() {
                                    Some(c) => c == *v,
                                    None => true,
                                })
                            })
                        }
                    } else {
                        false
                    }
                }
            };
            if !ok {
                out.push(partial.clone());
            }
            return;
        }
        let atom = &ic.body_atoms[i];
        let Some(rel) = self.get(atom.pred) else {
            return; // empty relation: body unsatisfiable
        };
        'rows: for row in rel.iter() {
            let mut snapshot = partial.clone();
            for (t, v) in atom.args.iter().zip(row) {
                match t {
                    Term::Const(c) => {
                        if c != v {
                            continue 'rows;
                        }
                    }
                    Term::Var(x) => match snapshot.get(*x) {
                        Some(Term::Const(c)) if c == *v => {}
                        Some(_) => continue 'rows,
                        None => {
                            snapshot.insert(*x, Term::Const(*v));
                        }
                    },
                }
            }
            self.enumerate_bindings(ic, i + 1, &mut snapshot, out, _vars);
        }
    }
}

/// Convenience constructor for integer-tuple test data.
pub fn int_tuple(vals: &[i64]) -> Tuple {
    vals.iter().map(|&v| Value::Int(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use semrec_datalog::parser::{parse_constraints, parse_unit};

    #[test]
    fn insert_and_count() {
        let mut db = Database::new();
        assert!(db.insert("e", int_tuple(&[1, 2])));
        assert!(!db.insert("e", int_tuple(&[1, 2])));
        db.insert("e", int_tuple(&[2, 3]));
        assert_eq!(db.count("e"), 2);
        assert_eq!(db.total_tuples(), 2);
    }

    #[test]
    fn from_parsed_facts() {
        let unit = parse_unit("par(ann, bea). par(bea, cal).").unwrap();
        let db = Database::from_facts(&unit.facts);
        assert_eq!(db.count("par"), 2);
    }

    #[test]
    fn constraint_satisfaction_atom_head() {
        let ics = parse_constraints("ic: boss(E, B, R), R = executive -> experienced(B).").unwrap();
        let mut db = Database::new();
        db.insert(
            "boss",
            vec![
                Value::str("eva"),
                Value::str("max"),
                Value::str("executive"),
            ],
        );
        assert!(!db.satisfies(&ics[0]));
        db.insert("experienced", vec![Value::str("max")]);
        assert!(db.satisfies(&ics[0]));
    }

    #[test]
    fn constraint_satisfaction_denial() {
        let ics = parse_constraints("ic: p(X, Y), X > Y -> .").unwrap();
        let mut db = Database::new();
        db.insert("p", int_tuple(&[1, 2]));
        assert!(db.satisfies(&ics[0]));
        db.insert("p", int_tuple(&[5, 2]));
        assert_eq!(db.violations(&ics[0]).len(), 1);
    }

    #[test]
    fn constraint_cmp_head() {
        let ics = parse_constraints("ic: pays(M, S), M > 10000 -> M < 50000.").unwrap();
        let mut db = Database::new();
        db.insert("pays", int_tuple(&[20000, 1]));
        assert!(db.satisfies(&ics[0]));
        db.insert("pays", int_tuple(&[60000, 2]));
        assert!(!db.satisfies(&ics[0]));
    }

    #[test]
    fn repeated_variables_in_ic_body() {
        let ics = parse_constraints("ic: e(X, X) -> .").unwrap();
        let mut db = Database::new();
        db.insert("e", int_tuple(&[1, 2]));
        assert!(db.satisfies(&ics[0]));
        db.insert("e", int_tuple(&[3, 3]));
        assert!(!db.satisfies(&ics[0]));
    }
}
