//! Depth-bounded SLD resolution (Prolog-style, no tabling).
//!
//! This is the 1995-era evaluation model the paper's pruning argument
//! actually targets: a tuple-at-a-time prover that *speculatively*
//! explores rule expansions. Unlike the tabled engine
//! ([`crate::topdown`]), repeated subgoals are re-proved and recursive
//! expansion is only stopped by the depth bound — so a residue pushed into
//! the program (e.g. a `Ya > 50` guard on the committed chain) cuts whole
//! search subtrees *before* they touch the database.
//!
//! Literal selection is leftmost-atom, except that ground comparisons are
//! evaluated eagerly the moment their operands are bound — without this,
//! guards behind recursive subgoals would never fire early and the
//! comparison literals the optimizer introduces would be useless to a
//! top-down prover.
//!
//! On cyclic data the depth bound truncates the search; the result then
//! reports [`Completeness::DepthCutoff`] and the answer set may be
//! incomplete. (That is faithful to the model: Prolog loops, we cut.)

use crate::database::Database;
use crate::error::EngineError;
use crate::relation::Tuple;
use semrec_datalog::atom::{Atom, Pred};
use semrec_datalog::literal::Literal;
use semrec_datalog::program::Program;
use semrec_datalog::subst::Subst;
use semrec_datalog::symbol::Symbol;
use semrec_datalog::term::{Term, Value};
use std::collections::BTreeSet;
use std::fmt;

/// Work counters for an SLD run.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct SldStats {
    /// Rule expansions attempted (successful head unifications).
    pub expansions: u64,
    /// EDB fact matches attempted.
    pub fact_probes: u64,
    /// Comparison evaluations.
    pub cmp_evals: u64,
    /// Branches cut by the depth bound.
    pub depth_cuts: u64,
}

impl fmt::Display for SldStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "expansions={} fact_probes={} cmps={} depth_cuts={}",
            self.expansions, self.fact_probes, self.cmp_evals, self.depth_cuts
        )
    }
}

/// Whether the search space was fully explored.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Completeness {
    /// Every branch terminated naturally: the answers are complete.
    Complete,
    /// Some branch hit the depth bound: answers may be missing.
    DepthCutoff,
}

/// Configuration for [`query_sld`].
#[derive(Clone, Copy, Debug)]
pub struct SldConfig {
    /// Maximum IDB expansion depth per branch.
    pub max_depth: usize,
    /// Hard budget on total expansions (guards against exponential blowup).
    pub max_expansions: u64,
}

impl Default for SldConfig {
    fn default() -> Self {
        SldConfig {
            max_depth: 24,
            max_expansions: 5_000_000,
        }
    }
}

struct Sld<'db> {
    db: &'db Database,
    program: Program,
    idb: BTreeSet<Pred>,
    config: SldConfig,
    stats: SldStats,
    cutoff: bool,
    budget_exhausted: bool,
    fresh: u64,
    answers: BTreeSet<Tuple>,
}

/// Runs a depth-bounded SLD query. Returns the (sorted, deduplicated)
/// answers, the work counters, and whether the search was complete.
pub fn query_sld(
    db: &Database,
    program: &Program,
    goal: &Atom,
    config: SldConfig,
) -> Result<(Vec<Tuple>, SldStats, Completeness), EngineError> {
    if program
        .rules
        .iter()
        .any(|r| r.body.iter().any(|l| l.as_neg().is_some()))
    {
        return Err(EngineError::NotStratified(
            "the SLD engine does not support negation".into(),
        ));
    }
    program.arities().map_err(EngineError::ArityMismatch)?;
    let mut sld = Sld {
        db,
        program: program.clone(),
        idb: program.idb_preds(),
        config,
        stats: SldStats::default(),
        cutoff: false,
        budget_exhausted: false,
        fresh: 0,
        answers: BTreeSet::new(),
    };
    let goal_vars: Vec<Symbol> = {
        // The answer tuple is the goal's arguments under the final bindings.
        let mut seen = BTreeSet::new();
        goal.args
            .iter()
            .filter_map(|t| t.as_var())
            .filter(|v| seen.insert(*v))
            .collect()
    };
    let _ = goal_vars; // answers are read off the instantiated goal atom
    sld.prove(&[Literal::Atom(goal.clone())], &Subst::new(), goal, 0);
    let completeness = if sld.cutoff || sld.budget_exhausted {
        Completeness::DepthCutoff
    } else {
        Completeness::Complete
    };
    let answers: Vec<Tuple> = sld.answers.into_iter().collect();
    Ok((answers, sld.stats, completeness))
}

impl<'db> Sld<'db> {
    fn prove(&mut self, goals: &[Literal], theta: &Subst, root: &Atom, depth: usize) {
        if self.budget_exhausted {
            return;
        }
        if goals.is_empty() {
            let ground = theta.apply_atom(root);
            if let Some(t) = ground
                .args
                .iter()
                .map(|t| t.as_const())
                .collect::<Option<Tuple>>()
            {
                self.answers.insert(t);
            }
            return;
        }
        // Eager ground comparisons anywhere in the conjunction.
        for (i, lit) in goals.iter().enumerate() {
            if let Literal::Cmp(c) = lit {
                let g = theta.apply_cmp(c);
                if let Some(truth) = g.eval_ground() {
                    self.stats.cmp_evals += 1;
                    if truth {
                        let rest = without(goals, i);
                        self.prove(&rest, theta, root, depth);
                    }
                    return;
                }
            }
        }
        // Leftmost atom.
        let Some((i, Literal::Atom(a))) = goals
            .iter()
            .enumerate()
            .find(|(_, l)| matches!(l, Literal::Atom(_)))
        else {
            // Only non-ground comparisons remain: flounder (no answers down
            // this branch).
            return;
        };
        let atom = theta.apply_atom(a);
        let rest = without(goals, i);

        // Arithmetic builtins compute instead of matching facts.
        if let Some(op) = crate::builtins::BuiltinOp::of(atom.pred) {
            if atom.arity() == crate::builtins::BuiltinOp::ARITY {
                self.stats.cmp_evals += 1;
                let vals: Vec<Option<semrec_datalog::term::Value>> =
                    atom.args.iter().map(|t| t.as_const()).collect();
                let bound = vals.iter().filter(|v| v.is_some()).count();
                if bound == 3 {
                    if op.check(vals[0].unwrap(), vals[1].unwrap(), vals[2].unwrap()) {
                        self.prove(&rest, theta, root, depth);
                    }
                } else if bound == 2 {
                    let pos = vals.iter().position(Option::is_none).unwrap();
                    if let Some(v) = op.solve([vals[0], vals[1], vals[2]]) {
                        let Term::Var(x) = atom.args[pos] else {
                            unreachable!()
                        };
                        let mut t2 = theta.clone();
                        t2.insert(x, Term::Const(v));
                        self.prove(&rest, &t2, root, depth);
                    }
                } else if !rest.is_empty() {
                    // Defer: move the builtin behind the rest.
                    let mut deferred = rest.clone();
                    deferred.push(Literal::Atom(a.clone()));
                    self.prove(&deferred, theta, root, depth);
                }
                return;
            }
        }
        if !self.idb.contains(&atom.pred) {
            // EDB: match against facts.
            if let Some(rel) = self.db.get(atom.pred) {
                for row in rel.iter() {
                    self.stats.fact_probes += 1;
                    let mut t2 = theta.clone();
                    if bind_row(&mut t2, &atom, row) {
                        self.prove(&rest, &t2, root, depth);
                        if self.budget_exhausted {
                            return;
                        }
                    }
                }
            }
            return;
        }
        // IDB: expand rules, one level deeper.
        if depth >= self.config.max_depth {
            self.stats.depth_cuts += 1;
            self.cutoff = true;
            return;
        }
        for ri in self.program.rules_for(atom.pred) {
            let rule = self.program.rules[ri].clone();
            let renamed = self.freshen(&rule);
            let Some(mgu) = semrec_datalog::unify::unify_atoms(&renamed.head, &atom) else {
                continue;
            };
            self.stats.expansions += 1;
            if self.stats.expansions >= self.config.max_expansions {
                self.budget_exhausted = true;
                return;
            }
            let mut next: Vec<Literal> =
                renamed.body.iter().map(|l| mgu.apply_literal(l)).collect();
            for l in &rest {
                next.push(mgu.apply_literal(l));
            }
            let t2 = theta.compose(&mgu);
            self.prove(&next, &t2, root, depth + 1);
            if self.budget_exhausted {
                return;
            }
        }
    }

    fn freshen(&mut self, rule: &semrec_datalog::rule::Rule) -> semrec_datalog::rule::Rule {
        self.fresh += 1;
        let tag = self.fresh;
        let sub: Subst = rule
            .vars()
            .into_iter()
            .map(|v| (v, Term::Var(Symbol::intern(&format!("{v}`s{tag}")))))
            .collect();
        sub.apply_rule(rule)
    }
}

fn without(goals: &[Literal], i: usize) -> Vec<Literal> {
    goals
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != i)
        .map(|(_, l)| l.clone())
        .collect()
}

fn bind_row(theta: &mut Subst, atom: &Atom, row: &[Value]) -> bool {
    for (arg, v) in atom.args.iter().zip(row) {
        match theta.apply_term(*arg) {
            Term::Const(c) => {
                if c != *v {
                    return false;
                }
            }
            Term::Var(x) => {
                theta.insert(x, Term::Const(*v));
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::int_tuple;
    use crate::eval::{evaluate, Strategy};
    use semrec_datalog::parser::parse_atom;

    fn chain_db(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert("e", int_tuple(&[i, i + 1]));
        }
        db
    }

    fn tc() -> Program {
        "t(X,Y) :- e(X,Y). t(X,Y) :- e(X,Z), t(Z,Y)."
            .parse()
            .unwrap()
    }

    #[test]
    fn complete_on_acyclic_data() {
        let db = chain_db(8);
        let (answers, _, compl) = query_sld(
            &db,
            &tc(),
            &parse_atom("t(X, Y)").unwrap(),
            SldConfig::default(),
        )
        .unwrap();
        assert_eq!(compl, Completeness::Complete);
        let full = evaluate(&db, &tc(), Strategy::SemiNaive).unwrap();
        assert_eq!(answers, full.relation("t").unwrap().sorted_tuples());
    }

    #[test]
    fn ground_goal_and_failure() {
        let db = chain_db(6);
        let (answers, _, _) = query_sld(
            &db,
            &tc(),
            &parse_atom("t(1, 4)").unwrap(),
            SldConfig::default(),
        )
        .unwrap();
        assert_eq!(answers, vec![int_tuple(&[1, 4])]);
        let (answers, _, _) = query_sld(
            &db,
            &tc(),
            &parse_atom("t(4, 1)").unwrap(),
            SldConfig::default(),
        )
        .unwrap();
        assert!(answers.is_empty());
    }

    #[test]
    fn cyclic_data_reports_cutoff() {
        let mut db = Database::new();
        for i in 0..4 {
            db.insert("e", int_tuple(&[i, (i + 1) % 4]));
        }
        let (answers, stats, compl) = query_sld(
            &db,
            &tc(),
            &parse_atom("t(0, Y)").unwrap(),
            SldConfig {
                max_depth: 12,
                ..SldConfig::default()
            },
        )
        .unwrap();
        assert_eq!(compl, Completeness::DepthCutoff);
        assert!(stats.depth_cuts > 0);
        // All four targets are found well before the cutoff.
        assert_eq!(answers.len(), 4);
    }

    #[test]
    fn eager_ground_comparisons_prune_early() {
        // A guard that becomes ground at rule entry must cut before the
        // recursive subgoal explodes.
        let db = chain_db(10);
        let p: Program = "
            g(X, Y, C) :- e(X, Y), C > 5.
            g(X, Y, C) :- e(X, Z), g(Z, Y, C).
        "
        .parse()
        .unwrap();
        let (hits, cheap, _) = query_sld(
            &db,
            &p,
            &parse_atom("g(0, Y, 1)").unwrap(),
            SldConfig::default(),
        )
        .unwrap();
        assert!(hits.is_empty());
        // Without eager comparison evaluation this would be ~10 levels of
        // expansion; the guard only lives in the exit rule here, so the
        // recursion still walks — compare against a program with the guard
        // in the recursive rule as well.
        let p2: Program = "
            g(X, Y, C) :- e(X, Y), C > 5.
            g(X, Y, C) :- C > 5, e(X, Z), g(Z, Y, C).
        "
        .parse()
        .unwrap();
        let (hits2, guarded, _) = query_sld(
            &db,
            &p2,
            &parse_atom("g(0, Y, 1)").unwrap(),
            SldConfig::default(),
        )
        .unwrap();
        assert!(hits2.is_empty());
        assert!(
            guarded.expansions < cheap.expansions,
            "guarded {guarded} vs unguarded {cheap}"
        );
    }

    #[test]
    fn expansion_budget_is_enforced() {
        let mut db = Database::new();
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    db.insert("e", int_tuple(&[i, j]));
                }
            }
        }
        let (_, stats, compl) = query_sld(
            &db,
            &tc(),
            &parse_atom("t(X, Y)").unwrap(),
            SldConfig {
                max_depth: 30,
                max_expansions: 2_000,
            },
        )
        .unwrap();
        assert_eq!(compl, Completeness::DepthCutoff);
        assert!(stats.expansions <= 2_000);
    }

    #[test]
    fn negation_is_rejected() {
        let db = chain_db(2);
        let p: Program = "a(X) :- e(X, Y), !b(X). b(X) :- e(X, X).".parse().unwrap();
        assert!(query_sld(&db, &p, &parse_atom("a(X)").unwrap(), SldConfig::default()).is_err());
    }
}

#[cfg(test)]
mod builtin_tests {
    use super::*;
    use crate::database::int_tuple;
    use semrec_datalog::parser::parse_atom;

    #[test]
    fn arithmetic_in_sld() {
        let mut db = Database::new();
        for i in 0..4 {
            db.insert("e", int_tuple(&[i, i + 1]));
        }
        let p: Program = "
            dist(X, Y, 1) :- e(X, Y).
            dist(X, Y, N) :- dist(X, Z, M), e(Z, Y), plus(M, 1, N).
        "
        .parse()
        .unwrap();
        let (answers, _, compl) = query_sld(
            &db,
            &p,
            &parse_atom("dist(0, Y, N)").unwrap(),
            SldConfig::default(),
        )
        .unwrap();
        // The left-recursive expansion of the unbound dist subgoal hits
        // the depth bound (SLD is structurally, not data-, bounded) — but
        // all real answers are found well before it.
        assert_eq!(compl, Completeness::DepthCutoff);
        assert!(answers.contains(&int_tuple(&[0, 4, 4])));
        assert_eq!(answers.len(), 4);
    }
}
