//! Top-down evaluation with tabling (a QSQR-flavoured memoized resolution
//! loop).
//!
//! The paper's optimization story is proof-tree-shaped: residues prune or
//! shrink *derivation attempts*. Bottom-up engines never attempt the work
//! the ICs forbid on consistent data (see experiment E3), so this engine
//! provides the goal-directed counterpart: subgoals are tabled by their
//! canonical form, rules are expanded on demand, and recursive calls read
//! the tables, repeating passes until the tables stabilize.
//!
//! Supported class: positive programs with evaluable comparisons (negated
//! subgoals are rejected — combining tabling with stratified negation is
//! out of scope here). Subgoal canonicalization renames variables by first
//! occurrence, so `t(X, 5, Y)` and `t(A, 5, B)` share a table.

use crate::database::Database;
use crate::error::EngineError;
use crate::relation::Tuple;
use semrec_datalog::atom::{Atom, Pred};
use semrec_datalog::literal::Literal;
use semrec_datalog::program::Program;
use semrec_datalog::subst::Subst;
use semrec_datalog::symbol::Symbol;
use semrec_datalog::term::{Term, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Work counters for a top-down run: the "speculative exploration" the
/// bottom-up engine never performs.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct TdStats {
    /// Distinct tabled subgoals created.
    pub subgoals: u64,
    /// Rule expansion attempts (head unifications that succeeded).
    pub expansions: u64,
    /// Body-literal resolution steps.
    pub resolutions: u64,
    /// Stabilization passes over the subgoal graph.
    pub passes: u64,
    /// Answers recorded across all tables (with duplicates filtered).
    pub answers: u64,
}

impl fmt::Display for TdStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "subgoals={} expansions={} resolutions={} passes={} answers={}",
            self.subgoals, self.expansions, self.resolutions, self.passes, self.answers
        )
    }
}

/// A canonicalized subgoal: variables renamed `$0, $1, …` by first
/// occurrence (repeats preserved).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct CanonGoal {
    pred: Pred,
    args: Vec<CanonArg>,
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum CanonArg {
    Const(Value),
    Var(usize),
}

fn canonicalize(goal: &Atom) -> CanonGoal {
    let mut seen: BTreeMap<Symbol, usize> = BTreeMap::new();
    let args = goal
        .args
        .iter()
        .map(|t| match t {
            Term::Const(c) => CanonArg::Const(*c),
            Term::Var(v) => {
                let n = seen.len();
                CanonArg::Var(*seen.entry(*v).or_insert(n))
            }
        })
        .collect();
    CanonGoal {
        pred: goal.pred,
        args,
    }
}

/// True if `row` instantiates the canonical goal (constants equal,
/// repeated variables equal).
fn canon_matches(goal: &CanonGoal, row: &[Value]) -> bool {
    let mut bind: BTreeMap<usize, Value> = BTreeMap::new();
    for (a, &v) in goal.args.iter().zip(row) {
        match a {
            CanonArg::Const(c) => {
                if *c != v {
                    return false;
                }
            }
            CanonArg::Var(i) => match bind.get(i) {
                Some(&prev) if prev != v => return false,
                Some(_) => {}
                None => {
                    bind.insert(*i, v);
                }
            },
        }
    }
    true
}

/// The tabled top-down engine.
pub struct TopDown<'db> {
    db: &'db Database,
    program: Program,
    idb: BTreeSet<Pred>,
    tables: BTreeMap<CanonGoal, BTreeSet<Tuple>>,
    stats: TdStats,
    fresh: u64,
    changed: bool,
}

impl<'db> TopDown<'db> {
    /// Creates a top-down engine for the program.
    pub fn new(db: &'db Database, program: &Program) -> Result<TopDown<'db>, EngineError> {
        if program
            .rules
            .iter()
            .any(|r| r.body.iter().any(|l| l.as_neg().is_some()))
        {
            return Err(EngineError::NotStratified(
                "the top-down engine does not support negation".into(),
            ));
        }
        program.arities().map_err(EngineError::ArityMismatch)?;
        Ok(TopDown {
            db,
            program: program.clone(),
            idb: program.idb_preds(),
            tables: BTreeMap::new(),
            stats: TdStats::default(),
            fresh: 0,
            changed: false,
        })
    }

    /// Solves `goal`, returning the matching tuples (full-arity) sorted.
    pub fn query(&mut self, goal: &Atom) -> Vec<Tuple> {
        let canon = canonicalize(goal);
        loop {
            self.stats.passes += 1;
            self.changed = false;
            let mut in_pass: BTreeSet<CanonGoal> = BTreeSet::new();
            self.solve(&canon, &mut in_pass);
            if !self.changed {
                break;
            }
        }
        let mut out: Vec<Tuple> = self
            .tables
            .get(&canon)
            .map(|t| t.iter().cloned().collect())
            .unwrap_or_default();
        out.sort();
        out
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> TdStats {
        self.stats
    }

    /// One pass over a subgoal: expand its rules against the current
    /// tables, recording any new answers.
    fn solve(&mut self, goal: &CanonGoal, in_pass: &mut BTreeSet<CanonGoal>) {
        if !in_pass.insert(goal.clone()) {
            return; // already processed this pass (or in progress — cycle)
        }
        if !self.tables.contains_key(goal) {
            self.tables.insert(goal.clone(), BTreeSet::new());
            self.stats.subgoals += 1;
        }
        if !self.idb.contains(&goal.pred) {
            // EDB subgoal: answers come straight from the database.
            if let Some(rel) = self.db.get(goal.pred) {
                let rows: Vec<Tuple> = rel
                    .iter()
                    .filter(|r| canon_matches(goal, r))
                    .map(<[Value]>::to_vec)
                    .collect();
                self.add_answers(goal, rows);
            }
            return;
        }
        // Re-materialize the goal atom with fresh variables.
        let goal_atom = self.decanonicalize(goal);
        for ri in self.program.rules_for(goal.pred) {
            let rule = self.program.rules[ri].clone();
            let renamed = self.freshen(&rule);
            let Some(mgu) = semrec_datalog::unify::unify_atoms(&renamed.head, &goal_atom) else {
                continue;
            };
            self.stats.expansions += 1;
            let body: Vec<Literal> = renamed.body.iter().map(|l| mgu.apply_literal(l)).collect();
            let head = mgu.apply_atom(&renamed.head);
            let mut answers: Vec<Tuple> = Vec::new();
            self.resolve_body(&body, &Subst::new(), &head, &mut answers, in_pass);
            self.add_answers(goal, answers);
        }
    }

    /// Bound-first resolution of the body against the tables: at each step
    /// the next literal is a runnable comparison if any, otherwise the atom
    /// with the most bound argument positions under the current bindings —
    /// the tuple-at-a-time analogue of the bottom-up planner's heuristic,
    /// which is what makes bound goals genuinely goal-directed.
    fn resolve_body(
        &mut self,
        remaining: &[Literal],
        theta: &Subst,
        head: &Atom,
        answers: &mut Vec<Tuple>,
        in_pass: &mut BTreeSet<CanonGoal>,
    ) {
        if remaining.is_empty() {
            let ground = theta.apply_atom(head);
            if let Some(tuple) = atom_tuple(&ground) {
                answers.push(tuple);
            }
            return;
        }
        // Pick a runnable comparison first.
        for (i, lit) in remaining.iter().enumerate() {
            if let Literal::Cmp(c) = lit {
                let g = theta.apply_cmp(c);
                if let Some(truth) = g.eval_ground() {
                    self.stats.resolutions += 1;
                    if truth {
                        let rest: Vec<Literal> = remaining
                            .iter()
                            .enumerate()
                            .filter(|(j, _)| *j != i)
                            .map(|(_, l)| l.clone())
                            .collect();
                        self.resolve_body(&rest, theta, head, answers, in_pass);
                    }
                    return;
                }
            }
        }
        // Otherwise the atom with the most bound argument positions.
        let best = remaining
            .iter()
            .enumerate()
            .filter(|(_, l)| matches!(l, Literal::Atom(_)))
            .max_by_key(|(i, l)| {
                let Literal::Atom(a) = l else { unreachable!() };
                let bound = a
                    .args
                    .iter()
                    .filter(|t| matches!(theta.apply_term(**t), Term::Const(_)))
                    .count();
                // An unready builtin (needs ≥2 bound args) must wait for
                // other literals to bind its inputs.
                let ready = crate::builtins::BuiltinOp::of(a.pred).is_none() || bound >= 2;
                (ready, bound, usize::MAX - i)
            });
        let Some((bi, Literal::Atom(a))) = best else {
            // Only unbound comparisons left: the rule is unsafe for this
            // binding — no answers.
            return;
        };
        self.stats.resolutions += 1;
        let subgoal = theta.apply_atom(a);
        // Arithmetic builtins are computed, not tabled.
        if let Some(op) = crate::builtins::BuiltinOp::of(subgoal.pred) {
            if subgoal.arity() == crate::builtins::BuiltinOp::ARITY {
                let rest: Vec<Literal> = remaining
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != bi)
                    .map(|(_, l)| l.clone())
                    .collect();
                let vals: Vec<Option<semrec_datalog::term::Value>> =
                    subgoal.args.iter().map(|t| t.as_const()).collect();
                let bound = vals.iter().filter(|v| v.is_some()).count();
                if bound == 3 {
                    if op.check(vals[0].unwrap(), vals[1].unwrap(), vals[2].unwrap()) {
                        self.resolve_body(&rest, theta, head, answers, in_pass);
                    }
                } else if bound == 2 {
                    let pos = vals.iter().position(Option::is_none).unwrap();
                    if let Some(v) = op.solve([vals[0], vals[1], vals[2]]) {
                        let Term::Var(x) = subgoal.args[pos] else {
                            unreachable!()
                        };
                        let mut t2 = theta.clone();
                        t2.insert(x, Term::Const(v));
                        self.resolve_body(&rest, &t2, head, answers, in_pass);
                    }
                }
                // Fewer than two bound: flounder — no answers this branch.
                return;
            }
        }
        let canon = canonicalize(&subgoal);
        // Ensure the subgoal's table exists/gets a pass.
        self.solve(&canon, in_pass);
        let rows: Vec<Tuple> = self
            .tables
            .get(&canon)
            .map(|t| t.iter().cloned().collect())
            .unwrap_or_default();
        let rest: Vec<Literal> = remaining
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != bi)
            .map(|(_, l)| l.clone())
            .collect();
        for row in rows {
            let mut t2 = theta.clone();
            let mut ok = true;
            for (arg, v) in subgoal.args.iter().zip(&row) {
                match t2.apply_term(*arg) {
                    Term::Const(c) => {
                        if c != *v {
                            ok = false;
                            break;
                        }
                    }
                    Term::Var(x) => {
                        t2.insert(x, Term::Const(*v));
                    }
                }
            }
            if ok {
                self.resolve_body(&rest, &t2, head, answers, in_pass);
            }
        }
    }

    fn add_answers(&mut self, goal: &CanonGoal, rows: Vec<Tuple>) {
        let table = self.tables.get_mut(goal).expect("table created in solve");
        for r in rows {
            if table.insert(r) {
                self.stats.answers += 1;
                self.changed = true;
            }
        }
    }

    fn decanonicalize(&mut self, goal: &CanonGoal) -> Atom {
        let args = goal
            .args
            .iter()
            .map(|a| match a {
                CanonArg::Const(c) => Term::Const(*c),
                CanonArg::Var(i) => Term::Var(Symbol::intern(&format!("G`{i}"))),
            })
            .collect();
        Atom::new(goal.pred, args)
    }

    fn freshen(&mut self, rule: &semrec_datalog::rule::Rule) -> semrec_datalog::rule::Rule {
        self.fresh += 1;
        let tag = self.fresh;
        let sub: Subst = rule
            .vars()
            .into_iter()
            .map(|v| (v, Term::Var(Symbol::intern(&format!("{v}`t{tag}")))))
            .collect();
        sub.apply_rule(rule)
    }
}

fn atom_tuple(a: &Atom) -> Option<Tuple> {
    a.args.iter().map(|t| t.as_const()).collect()
}

/// One-shot convenience: top-down query answering.
pub fn query_topdown(
    db: &Database,
    program: &Program,
    goal: &Atom,
) -> Result<(Vec<Tuple>, TdStats), EngineError> {
    let mut td = TopDown::new(db, program)?;
    let answers = td.query(goal);
    Ok((answers, td.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::int_tuple;
    use crate::eval::{evaluate, Strategy};
    use semrec_datalog::parser::parse_atom;

    fn chain_db(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert("e", int_tuple(&[i, i + 1]));
        }
        db
    }

    fn tc() -> Program {
        "t(X,Y) :- e(X,Y). t(X,Y) :- e(X,Z), t(Z,Y)."
            .parse()
            .unwrap()
    }

    #[test]
    fn matches_bottom_up_on_full_goal() {
        let db = chain_db(8);
        let (mut answers, _) = query_topdown(&db, &tc(), &parse_atom("t(X, Y)").unwrap()).unwrap();
        answers.sort();
        let full = evaluate(&db, &tc(), Strategy::SemiNaive).unwrap();
        assert_eq!(answers, full.relation("t").unwrap().sorted_tuples());
    }

    #[test]
    fn bound_goal_is_goal_directed() {
        let db = chain_db(30);
        let (answers, stats) = query_topdown(&db, &tc(), &parse_atom("t(25, Y)").unwrap()).unwrap();
        assert_eq!(answers.len(), 5);
        // Only the suffix subgoals get tabled: far fewer than 30 nodes'
        // worth of full exploration.
        assert!(stats.subgoals < 20, "{stats}");
    }

    #[test]
    fn cyclic_data_terminates() {
        let mut db = Database::new();
        for i in 0..5 {
            db.insert("e", int_tuple(&[i, (i + 1) % 5]));
        }
        let (answers, _) = query_topdown(&db, &tc(), &parse_atom("t(0, Y)").unwrap()).unwrap();
        assert_eq!(answers.len(), 5);
    }

    #[test]
    fn right_linear_and_comparisons() {
        let db = chain_db(10);
        let p: Program = "big(X, Y) :- t(X, Y), Y >= 8.
                          t(X,Y) :- t(X,Z), e(Z,Y). t(X,Y) :- e(X,Y)."
            .parse()
            .unwrap();
        let (answers, _) = query_topdown(&db, &p, &parse_atom("big(0, Y)").unwrap()).unwrap();
        assert_eq!(answers.len(), 3);
    }

    #[test]
    fn repeated_variable_goals() {
        let mut db = chain_db(5);
        db.insert("e", int_tuple(&[3, 3]));
        let (answers, _) = query_topdown(&db, &tc(), &parse_atom("t(X, X)").unwrap()).unwrap();
        assert_eq!(answers, vec![int_tuple(&[3, 3])]);
    }

    #[test]
    fn negation_is_rejected() {
        let db = chain_db(3);
        let p: Program = "a(X) :- e(X, Y), !b(X). b(X) :- e(X, X).".parse().unwrap();
        assert!(TopDown::new(&db, &p).is_err());
    }

    #[test]
    fn ground_goal() {
        let db = chain_db(6);
        let (answers, _) = query_topdown(&db, &tc(), &parse_atom("t(1, 4)").unwrap()).unwrap();
        assert_eq!(answers, vec![int_tuple(&[1, 4])]);
        let (answers, _) = query_topdown(&db, &tc(), &parse_atom("t(4, 1)").unwrap()).unwrap();
        assert!(answers.is_empty());
    }
}

#[cfg(test)]
mod builtin_tests {
    use super::*;
    use crate::database::int_tuple;
    use semrec_datalog::parser::parse_atom;

    #[test]
    fn arithmetic_in_topdown() {
        let mut db = Database::new();
        for i in 0..4 {
            db.insert("e", int_tuple(&[i, i + 1]));
        }
        let p: Program = "
            dist(X, Y, 1) :- e(X, Y).
            dist(X, Y, N) :- dist(X, Z, M), e(Z, Y), plus(M, 1, N).
        "
        .parse()
        .unwrap();
        let (answers, _) = query_topdown(&db, &p, &parse_atom("dist(0, Y, N)").unwrap()).unwrap();
        assert!(answers.contains(&int_tuple(&[0, 4, 4])));
        assert_eq!(answers.len(), 4);
    }
}
