//! Loading and saving extensional data as delimiter-separated files.
//!
//! A data directory holds one `<predicate>.csv` per relation; each line is
//! one tuple. Cells parse as integers when possible and as string
//! constants otherwise (quoting with `"` is supported for cells containing
//! the delimiter). This keeps workloads out of program sources and lets
//! the CLI run against generated or exported data.

use crate::database::Database;
use crate::error::EngineError;
use semrec_datalog::atom::Pred;
use semrec_datalog::term::Value;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// The cell delimiter.
pub const DELIMITER: char = ',';

fn io_err(context: &str, e: std::io::Error) -> EngineError {
    EngineError::Io(format!("{context}: {e}"))
}

/// Parses one CSV line into values. Unquoted cells parse as integers when
/// possible; quoted cells are always string constants (so a string "42"
/// survives a round trip).
fn parse_line(line: &str) -> Vec<Value> {
    let mut out = Vec::new();
    let mut cell = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    let mut was_quoted = false;
    loop {
        match chars.next() {
            None => {
                out.push(finish_cell(&cell, was_quoted));
                return out;
            }
            Some('"') if in_quotes && chars.peek() == Some(&'"') => {
                chars.next();
                cell.push('"');
            }
            Some('"') => {
                in_quotes = !in_quotes;
                was_quoted = true;
            }
            Some(c) if c == DELIMITER && !in_quotes => {
                out.push(finish_cell(&cell, was_quoted));
                cell.clear();
                was_quoted = false;
            }
            Some(c) => cell.push(c),
        }
    }
}

fn finish_cell(cell: &str, was_quoted: bool) -> Value {
    if was_quoted {
        return Value::str(cell);
    }
    let t = cell.trim();
    match t.parse::<i64>() {
        Ok(i) => Value::Int(i),
        Err(_) => Value::str(t),
    }
}

fn render_cell(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Str(s) => {
            let t = s.as_str();
            if t.contains(DELIMITER) || t.contains('"') || t.parse::<i64>().is_ok() {
                format!("\"{}\"", t.replace('"', "\"\""))
            } else {
                t.to_owned()
            }
        }
    }
}

/// Loads every `*.csv` file of `dir` into `db` (file stem = predicate).
/// Returns the number of facts inserted.
pub fn load_dir(db: &mut Database, dir: &Path) -> Result<usize, EngineError> {
    let mut inserted = 0;
    let entries =
        std::fs::read_dir(dir).map_err(|e| io_err(&format!("reading {}", dir.display()), e))?;
    let mut paths: Vec<_> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .collect();
    paths.sort();
    for path in paths {
        let pred = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| EngineError::Io(format!("bad file name {path:?}")))?
            .to_owned();
        inserted += load_file(db, &pred, &path)?;
    }
    Ok(inserted)
}

/// Loads one CSV file into the named relation.
pub fn load_file(db: &mut Database, pred: &str, path: &Path) -> Result<usize, EngineError> {
    #[cfg(feature = "failpoints")]
    crate::failpoint::hit("io.load").map_err(EngineError::Io)?;
    let f =
        std::fs::File::open(path).map_err(|e| io_err(&format!("opening {}", path.display()), e))?;
    let mut inserted = 0;
    let mut arity: Option<usize> = None;
    for (lineno, line) in BufReader::new(f).lines().enumerate() {
        let line = line.map_err(|e| io_err(&format!("reading {}", path.display()), e))?;
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let tuple = parse_line(&line);
        match arity {
            None => arity = Some(tuple.len()),
            Some(n) if n != tuple.len() => {
                return Err(EngineError::ArityMismatch(format!(
                    "{}:{}: expected {} cells, found {}",
                    path.display(),
                    lineno + 1,
                    n,
                    tuple.len()
                )));
            }
            Some(_) => {}
        }
        if db.insert(pred, tuple) {
            inserted += 1;
        }
    }
    Ok(inserted)
}

/// Saves every relation of `db` into `dir` as `<predicate>.csv`.
pub fn save_dir(db: &Database, dir: &Path) -> Result<(), EngineError> {
    std::fs::create_dir_all(dir).map_err(|e| io_err(&format!("creating {}", dir.display()), e))?;
    for (pred, rel) in db.iter() {
        save_relation(pred, rel.sorted_tuples().iter(), dir)?;
    }
    Ok(())
}

/// Saves one relation.
pub fn save_relation<'a>(
    pred: Pred,
    tuples: impl Iterator<Item = &'a Vec<Value>>,
    dir: &Path,
) -> Result<(), EngineError> {
    let path = dir.join(format!("{}.csv", pred.name()));
    let f = std::fs::File::create(&path)
        .map_err(|e| io_err(&format!("creating {}", path.display()), e))?;
    let mut w = BufWriter::new(f);
    for t in tuples {
        let cells: Vec<String> = t.iter().map(render_cell).collect();
        writeln!(w, "{}", cells.join(","))
            .map_err(|e| io_err(&format!("writing {}", path.display()), e))?;
    }
    w.flush()
        .map_err(|e| io_err(&format!("flushing {}", path.display()), e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::int_tuple;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("semrec-io-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn roundtrip_dir() {
        let dir = tempdir("roundtrip");
        let mut db = Database::new();
        db.insert("e", int_tuple(&[1, 2]));
        db.insert("e", int_tuple(&[2, 3]));
        db.insert(
            "boss",
            vec![Value::str("amy"), Value::str("bo b"), Value::Int(7)],
        );
        save_dir(&db, &dir).unwrap();

        let mut back = Database::new();
        let n = load_dir(&mut back, &dir).unwrap();
        assert_eq!(n, 3);
        assert_eq!(back, db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quoting_roundtrips() {
        let dir = tempdir("quote");
        let mut db = Database::new();
        // Tricky cells: embedded delimiter, quote, and a numeric string.
        db.insert(
            "t",
            vec![
                Value::str("a,b"),
                Value::str("say \"hi\""),
                Value::str("42"),
            ],
        );
        save_dir(&db, &dir).unwrap();
        let mut back = Database::new();
        load_dir(&mut back, &dir).unwrap();
        assert_eq!(back, db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn arity_mismatch_reported() {
        let dir = tempdir("arity");
        std::fs::write(dir.join("p.csv"), "1,2\n1,2,3\n").unwrap();
        let mut db = Database::new();
        let err = load_dir(&mut db, &dir).expect_err("arity error");
        assert!(err.to_string().contains("expected 2 cells"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let dir = tempdir("comments");
        std::fs::write(dir.join("p.csv"), "# header\n1,2\n\n3,4\n").unwrap();
        let mut db = Database::new();
        assert_eq!(load_dir(&mut db, &dir).unwrap(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
