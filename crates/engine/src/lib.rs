//! # semrec-engine
//!
//! The evaluation substrate: an in-memory bottom-up Datalog engine with
//! naive and semi-naive fixpoint strategies, indexed nested-loop joins,
//! evaluable comparison predicates, work counters, and a magic-sets
//! rewriting for goal-directed evaluation.
//!
//! The engine deliberately supports a *larger* class than the paper's input
//! programs (arbitrary positive Datalog with comparisons, including mutual
//! recursion), because the paper's §4 isolation transformation produces
//! mutually recursive auxiliary predicates.

#![warn(missing_docs)]

pub mod builtins;
pub mod cost;
pub mod database;
pub mod error;
pub mod eval;
pub mod explain;
#[cfg(feature = "failpoints")]
pub mod failpoint;
pub mod fxhash;
pub mod governor;
pub mod incr;
pub mod io;
pub mod magic;
pub mod plan;
pub mod pool;
pub mod relation;
pub mod sld;
pub mod stats;
pub mod topdown;

pub use cost::{
    AlternativeKind, ColumnGroupStats, CostMemo, EdbStats, Estimator, PlanAlternative,
    ProgramEstimate, RelationStats, RouteChoice, RuleEstimate,
};
pub use database::{int_tuple, Database};
pub use error::EngineError;
pub use eval::{
    answer_goal, answer_goal_polled, evaluate, evaluate_parallel, goal_bindings, Cutover,
    EvalResult, Evaluator, GoalBindings, Prepared, Route, Strategy, Tuning,
};
pub use governor::{Budget, CancelToken};
pub use incr::{
    tx_to_stream, Materialized, Tx, TxDelta, TxStreamError, TxStreamEvent, TxStreamParser,
    UpdateStats,
};
pub use pool::{JobPanic, PhasePanic, WorkerPool};
pub use relation::{CodeMap, Relation, RowRange, Tuple};
pub use stats::{PoolStats, Stats};
