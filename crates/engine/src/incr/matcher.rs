//! A small tuple-at-a-time binding matcher over the combined EDB + IDB
//! state, used by the incremental layer's DRed pass and the delta IC
//! monitor. Unlike the compiled fixpoint plans, these enumerations are
//! seeded from a *single known tuple* (a deleted fact, an inserted
//! fact), so a recursive matcher over [`Relation::probe_into`] is both
//! simpler and fast enough: the seed binds most variables, and every
//! remaining subgoal probes an indexed column subset. The probes hit
//! the same dictionary indexes the batch kernels borrow (key → dense
//! code → row group), so maintenance passes reuse — and keep warm —
//! the fixpoint's own key views rather than building private ones.

use crate::database::Database;
use crate::error::EngineError;
use crate::governor::{Governor, POLL_MASK};
use crate::relation::Relation;
use semrec_datalog::atom::{Atom, Pred};
use semrec_datalog::literal::Cmp;
use semrec_datalog::subst::Subst;
use semrec_datalog::term::{Term, Value};
use std::collections::BTreeMap;

/// The state a matcher enumerates over: the extensional database plus a
/// (possibly partially pruned) IDB materialization. IDB predicates
/// shadow EDB predicates of the same name — in practice the namespaces
/// are disjoint.
pub(crate) struct State<'a> {
    pub edb: &'a Database,
    pub idb: &'a BTreeMap<Pred, Relation>,
}

impl<'a> State<'a> {
    pub fn rel(&self, p: Pred) -> Option<&'a Relation> {
        self.idb.get(&p).or_else(|| self.edb.get(p))
    }
}

/// Extends `theta` so that `atom` matches `row`; `false` (with `theta`
/// possibly half-extended — callers pass a clone) on mismatch.
pub(crate) fn unify_row(atom: &Atom, row: &[Value], theta: &mut Subst) -> bool {
    if atom.args.len() != row.len() {
        return false;
    }
    for (t, v) in atom.args.iter().zip(row) {
        match t {
            Term::Const(c) => {
                if c != v {
                    return false;
                }
            }
            Term::Var(x) => match theta.get(*x) {
                Some(Term::Const(c)) if c == *v => {}
                Some(_) => return false,
                None => {
                    theta.insert(*x, Term::Const(*v));
                }
            },
        }
    }
    true
}

/// Budget/cancellation poll state shared across one maintenance pass:
/// the cooperative governance check fires every [`POLL_MASK`]+1 rows,
/// same cadence as the fixpoint scan loops.
pub(crate) struct Poll<'a> {
    gov: Option<&'a Governor>,
    rows: u64,
    /// Pooled probe-hit buffers, one per active recursion depth: the
    /// matcher probes with [`Relation::probe_into`] instead of the
    /// allocating [`Relation::probe`], so steady-state maintenance
    /// passes reuse these buffers instead of allocating per probe.
    bufs: Vec<Vec<u32>>,
}

impl<'a> Poll<'a> {
    pub fn new(gov: Option<&'a Governor>) -> Poll<'a> {
        Poll {
            gov,
            rows: 0,
            bufs: Vec::new(),
        }
    }

    /// A cleared hit buffer from the pool (or a fresh one).
    fn take_buf(&mut self) -> Vec<u32> {
        self.bufs.pop().unwrap_or_default()
    }

    /// Returns a hit buffer to the pool for reuse.
    fn put_buf(&mut self, buf: Vec<u32>) {
        self.bufs.push(buf);
    }

    #[inline]
    pub fn tick(&mut self) -> Result<(), EngineError> {
        self.rows += 1;
        if self.rows & POLL_MASK == 0 {
            if let Some(g) = self.gov {
                if g.should_abort() {
                    return Err(g.reason().unwrap_or(EngineError::Cancelled));
                }
            }
        }
        Ok(())
    }
}

/// Enumerates every extension of `theta` matching all of `atoms` over
/// `state` and satisfying all of `cmps`, invoking `f` per complete
/// binding. `f` returns `false` to stop early (existence checks);
/// `Ok(false)` reports such a stop to the caller.
pub(crate) fn match_body(
    state: &State<'_>,
    atoms: &[&Atom],
    cmps: &[&Cmp],
    theta: &mut Subst,
    poll: &mut Poll<'_>,
    f: &mut dyn FnMut(&Subst) -> bool,
) -> Result<bool, EngineError> {
    match_atoms(state, atoms, 0, cmps, theta, poll, f)
}

fn match_atoms(
    state: &State<'_>,
    atoms: &[&Atom],
    i: usize,
    cmps: &[&Cmp],
    theta: &mut Subst,
    poll: &mut Poll<'_>,
    f: &mut dyn FnMut(&Subst) -> bool,
) -> Result<bool, EngineError> {
    if i == atoms.len() {
        // Comparison literals filter the completed binding. A rule-safe
        // body grounds every comparison variable; an unground
        // comparison (malformed input) rejects the binding, matching
        // `Database::violations`.
        for c in cmps {
            if theta.apply_cmp(c).eval_ground() != Some(true) {
                return Ok(true);
            }
        }
        return Ok(f(theta));
    }
    let atom = atoms[i];
    let Some(rel) = state.rel(atom.pred) else {
        return Ok(true); // empty relation: no matches down this branch
    };
    // Probe on the columns `theta` already grounds; fall back to a full
    // scan only when nothing is bound.
    let mut cols: Vec<usize> = Vec::with_capacity(atom.args.len());
    let mut key: Vec<Value> = Vec::with_capacity(atom.args.len());
    for (c, t) in atom.args.iter().enumerate() {
        let bound = match t {
            Term::Const(v) => Some(*v),
            Term::Var(x) => match theta.get(*x) {
                Some(Term::Const(v)) => Some(v),
                _ => None,
            },
        };
        if let Some(v) = bound {
            cols.push(c);
            key.push(v);
        }
    }
    if cols.is_empty() {
        for (_, row) in rel.iter_range(rel.all_rows()) {
            poll.tick()?;
            let mut snap = theta.clone();
            if unify_row(atom, row, &mut snap)
                && !match_atoms(state, atoms, i + 1, cmps, &mut snap, poll, f)?
            {
                return Ok(false);
            }
        }
    } else {
        let mut hits = poll.take_buf();
        rel.probe_into(&cols, &key, rel.all_rows(), &mut hits);
        let mut res = Ok(true);
        for &r in &hits {
            if let Err(e) = poll.tick() {
                res = Err(e);
                break;
            }
            let mut snap = theta.clone();
            if unify_row(atom, rel.row(r), &mut snap) {
                match match_atoms(state, atoms, i + 1, cmps, &mut snap, poll, f) {
                    Ok(true) => {}
                    stop_or_err => {
                        res = stop_or_err;
                        break;
                    }
                }
            }
        }
        poll.put_buf(hits);
        return res;
    }
    Ok(true)
}
