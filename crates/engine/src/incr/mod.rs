//! Incremental maintenance: transactional EDB updates that bring a
//! materialized fixpoint to the post-transaction state without
//! re-evaluating from scratch.
//!
//! The subsystem layers three pieces over the flat-storage engine:
//!
//! 1. **Transactions** — [`Tx`] batches inserts and deletes per
//!    predicate; [`Database::apply`] applies one atomically *to the
//!    database value it is called on* and reports the effective
//!    [`TxDelta`] (tuples actually added/removed, plus per-predicate
//!    physical-row watermarks separating pre-tx from inserted rows).
//!    Callers wanting all-or-nothing semantics against failures apply
//!    to a clone and swap on success — which is exactly what
//!    [`Materialized::apply`] does.
//! 2. **Delta propagation** — [`Materialized`] keeps the fixpoint of a
//!    program materialized across transactions. Inserts seed a
//!    semi-naive run whose first round scans only the delta
//!    ([`Evaluator::from_prepared`], reusing compiled plans); deletes
//!    run DRed over-deletion + re-derivation first (see [`mod@dred`]).
//!    Programs with negation or arithmetic builtins fall back to a
//!    governed from-scratch re-evaluation — transparently, with the
//!    same transactional contract.
//! 3. **Delta IC monitoring** — [`ic_still_satisfied`] re-checks a
//!    constraint against the delta only, for the optimizer's
//!    residue-guarded route invalidation (`semrec-core`'s
//!    `MaintainedQuery`).
//!
//! Every phase respects the resource governor: budgets and cancel
//! tokens thread through the DRed worklist and the propagation run, and
//! any error (budget trip, cancellation, injected fault) leaves the
//! caller-visible database and materialization exactly as they were
//! before the transaction — `tests/fault_injection.rs` asserts
//! commit-or-rollback under seeded schedules of the `incr.delete` and
//! `incr.icheck` failpoints.

mod dred;
mod icheck;
mod matcher;

use crate::database::Database;
use crate::error::EngineError;
use crate::eval::{Evaluator, Prepared, Strategy, Tuning};
use crate::fxhash::FxHashMap;
use crate::governor::{Budget, CancelToken, Governor};
use crate::relation::{Relation, Tuple};
use crate::stats::Stats;
use matcher::Poll;
use semrec_datalog::atom::{Atom, Pred};
use semrec_datalog::constraint::Constraint;
use semrec_datalog::literal::Literal;
use semrec_datalog::program::Program;
use std::collections::BTreeMap;
use std::time::Instant;

/// A transactional batch of EDB changes: inserts and deletes grouped by
/// predicate. Deletes apply before inserts, so a tx that removes and
/// re-adds the same tuple nets to the tuple being present.
#[derive(Clone, Debug, Default)]
pub struct Tx {
    inserts: BTreeMap<Pred, Vec<Tuple>>,
    deletes: BTreeMap<Pred, Vec<Tuple>>,
}

impl Tx {
    /// An empty transaction.
    pub fn new() -> Tx {
        Tx::default()
    }

    /// Queues a tuple insert.
    pub fn insert(&mut self, pred: impl Into<Pred>, tuple: Tuple) {
        self.inserts.entry(pred.into()).or_default().push(tuple);
    }

    /// Queues a tuple delete.
    pub fn delete(&mut self, pred: impl Into<Pred>, tuple: Tuple) {
        self.deletes.entry(pred.into()).or_default().push(tuple);
    }

    /// Queues inserting a ground atom.
    ///
    /// # Panics
    /// Panics if the atom is not ground.
    pub fn insert_atom(&mut self, atom: &Atom) {
        self.insert(atom.pred, ground_tuple(atom));
    }

    /// Queues deleting a ground atom.
    ///
    /// # Panics
    /// Panics if the atom is not ground.
    pub fn delete_atom(&mut self, atom: &Atom) {
        self.delete(atom.pred, ground_tuple(atom));
    }

    /// True if the transaction queues no changes.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Number of queued operations (inserts + deletes).
    pub fn len(&self) -> usize {
        self.inserts.values().map(Vec::len).sum::<usize>()
            + self.deletes.values().map(Vec::len).sum::<usize>()
    }

    /// The queued inserts, per predicate.
    pub fn inserts(&self) -> &BTreeMap<Pred, Vec<Tuple>> {
        &self.inserts
    }

    /// The queued deletes, per predicate.
    pub fn deletes(&self) -> &BTreeMap<Pred, Vec<Tuple>> {
        &self.deletes
    }
}

fn ground_tuple(atom: &Atom) -> Tuple {
    atom.args
        .iter()
        .map(|t| t.as_const().expect("tx fact must be ground"))
        .collect()
}

/// The *effective* changes one applied [`Tx`] made: inserts that were
/// actually new, deletes that actually hit, and — for the semi-naive
/// delta seeding — each inserted-into predicate's physical-row
/// watermark from just before its inserts were appended.
#[derive(Clone, Debug, Default)]
pub struct TxDelta {
    /// Tuples newly added, per predicate (duplicates of existing rows
    /// are not listed).
    pub inserted: BTreeMap<Pred, Vec<Tuple>>,
    /// Tuples actually removed, per predicate.
    pub deleted: BTreeMap<Pred, Vec<Tuple>>,
    /// Per inserted-into predicate, the physical row count before the
    /// inserts: rows `[mark, len)` are the predicate's delta.
    pub edb_marks: FxHashMap<Pred, u32>,
}

impl TxDelta {
    /// True if the transaction changed nothing.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }
}

impl Database {
    /// Applies a transaction to this database: deletes first (tombstoned
    /// in place), then inserts (appended past each relation's recorded
    /// watermark). Returns the effective delta. Infallible — failure
    /// atomicity is the caller's concern (apply to a clone and swap; see
    /// [`Materialized::apply`]).
    pub fn apply(&mut self, tx: &Tx) -> TxDelta {
        let mut delta = TxDelta::default();
        for (&p, ts) in &tx.deletes {
            for t in ts {
                if self.delete(p, t) {
                    delta.deleted.entry(p).or_default().push(t.clone());
                }
            }
        }
        for (&p, ts) in &tx.inserts {
            let mark = self.get(p).map_or(0, |r| r.physical_rows() as u32);
            let mut any = false;
            for t in ts {
                if self.insert(p, t.clone()) {
                    delta.inserted.entry(p).or_default().push(t.clone());
                    any = true;
                }
            }
            if any {
                delta.edb_marks.insert(p, mark);
            }
        }
        delta
    }
}

/// Exactly undoes the EDB appends recorded in `delta` (which must come
/// from an insert-only transaction): each touched relation is truncated
/// back to its pre-transaction watermark. Used to restore the database
/// after an in-place fast-path update fails mid-propagation.
pub fn rollback_inserts(db: &mut Database, delta: &TxDelta) {
    debug_assert!(delta.deleted.is_empty(), "rollback_inserts: tx had deletes");
    for (&p, &mark) in &delta.edb_marks {
        if let Some(rel) = db.get_mut(p) {
            rel.truncate(mark as usize);
        }
    }
}

/// Re-checks a constraint that held before a transaction against the
/// transaction's effective delta only (see [`mod@icheck`] for the case
/// analysis). `post` is the post-transaction database. Hits the
/// `incr.icheck` failpoint.
pub fn ic_still_satisfied(
    post: &Database,
    delta: &TxDelta,
    ic: &Constraint,
) -> Result<bool, EngineError> {
    icheck::still_satisfied(post, delta, ic, &mut Poll::new(None))
}

/// Counters for one applied transaction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// True when the update fell back to from-scratch re-evaluation
    /// (program uses negation or builtins).
    pub from_scratch: bool,
    /// IDB tuples tombstoned by DRed over-deletion.
    pub over_deleted: u64,
    /// Over-deleted tuples re-derived from surviving support.
    pub rederived: u64,
    /// IDB rows added by the propagation run (includes re-derivations
    /// it found transitively).
    pub idb_inserted: u64,
    /// Fixpoint rounds the propagation run took.
    pub rounds: u64,
    /// Wall-clock milliseconds for the whole update.
    pub elapsed_ms: u64,
    /// Work counters of the propagation (or fallback re-evaluation)
    /// run — the same [`Stats`] a batch evaluation reports, so callers
    /// can observe e.g. `dict_memo_hits` on the incremental path.
    pub stats: Stats,
}

/// A program's fixpoint kept materialized across transactions.
///
/// Owns the IDB relations and a [`Prepared`] plan cache; each
/// [`Materialized::apply`] call brings them to the post-transaction
/// fixpoint by delta propagation (or governed re-evaluation for
/// programs outside the incremental fragment). The EDB itself stays
/// with the caller, who passes it mutably per transaction.
pub struct Materialized {
    prepared: Prepared,
    idb: BTreeMap<Pred, Relation>,
    tuning: Tuning,
    /// Set when the program uses negation or arithmetic builtins:
    /// non-monotone (or non-enumerable) subgoals make delta propagation
    /// unsound, so every tx re-evaluates from scratch.
    fallback: bool,
    /// Rounds of the initial batch evaluation (for reporting).
    initial_rounds: u64,
}

/// True if the program is in the incrementally maintainable fragment:
/// positive bodies (no negation) and no arithmetic builtins.
fn incremental_capable(program: &Program) -> bool {
    program.rules.iter().all(|r| {
        r.body.iter().all(|l| match l {
            Literal::Atom(a) => crate::builtins::BuiltinOp::of(a.pred).is_none(),
            Literal::Cmp(_) => true,
            Literal::Neg(_) => false,
        })
    })
}

impl Materialized {
    /// Evaluates `program` over `db` from scratch (semi-naive, `threads`
    /// workers) and keeps the result materialized for incremental
    /// maintenance.
    pub fn new(
        db: &Database,
        program: &Program,
        threads: usize,
    ) -> Result<Materialized, EngineError> {
        Materialized::new_tuned(db, program, Tuning::with_threads(threads))
    }

    /// [`Materialized::new`] with the full evaluator [`Tuning`] bundle;
    /// the initial evaluation and every later propagation run use it,
    /// so agreement tests can pin the whole configuration (threads ×
    /// cutover × kernels on/off) for a materialization's lifetime.
    pub fn new_tuned(
        db: &Database,
        program: &Program,
        tuning: Tuning,
    ) -> Result<Materialized, EngineError> {
        let fallback = !incremental_capable(program);
        let prepared = Prepared::compile(db, program)?;
        let mut ev = Evaluator::new(db, program, Strategy::SemiNaive)?.with_tuning(tuning);
        ev.run()?;
        let initial_rounds = ev.rounds();
        let res = ev.finish();
        Ok(Materialized {
            prepared,
            idb: res.idb,
            tuning,
            fallback,
            initial_rounds,
        })
    }

    /// The materialized IDB relations.
    pub fn idb(&self) -> &BTreeMap<Pred, Relation> {
        &self.idb
    }

    /// The materialized relation for `pred`, if the program defines it.
    pub fn relation(&self, pred: impl Into<Pred>) -> Option<&Relation> {
        self.idb.get(&pred.into())
    }

    /// The maintained program.
    pub fn program(&self) -> &Program {
        self.prepared.program()
    }

    /// True when transactions propagate incrementally; false when the
    /// program is outside the incremental fragment and every update
    /// re-evaluates from scratch.
    pub fn is_incremental(&self) -> bool {
        !self.fallback
    }

    /// Rounds of the initial from-scratch evaluation.
    pub fn initial_rounds(&self) -> u64 {
        self.initial_rounds
    }

    /// Applies `tx` to `db` and brings the materialization to the
    /// post-transaction fixpoint. All-or-nothing: on any error (budget,
    /// cancellation, injected fault) both `db` and the materialization
    /// are left exactly as before the call.
    ///
    /// Insert-only transactions take an in-place fast path: the rows are
    /// appended directly and rolled back by [`Relation::truncate`] on
    /// error, so the per-transaction cost is proportional to the delta,
    /// not to a clone of the database. Transactions with deletes use
    /// clone-on-update (DRed needs the frozen pre-transaction state
    /// anyway).
    pub fn apply(
        &mut self,
        db: &mut Database,
        tx: &Tx,
        budget: Budget,
        cancel: Option<CancelToken>,
    ) -> Result<UpdateStats, EngineError> {
        if !self.fallback && tx.deletes().values().all(Vec::is_empty) {
            let delta = db.apply(tx);
            return match self.apply_delta_appended(db, &delta, budget, cancel) {
                Ok(stats) => Ok(stats),
                Err(e) => {
                    rollback_inserts(db, &delta);
                    Err(e)
                }
            };
        }
        // Clone-on-update: all mutation happens on `work`; the caller's
        // database is replaced only after every phase succeeded.
        let mut work = db.clone();
        let delta = work.apply(tx);
        let stats = self.apply_delta(db, &work, &delta, budget, cancel)?;
        work.compact();
        *db = work;
        Ok(stats)
    }

    /// The insert-only fast path: `post_db` already has `delta`'s rows
    /// appended (and `delta.deleted` is empty). The materialized IDB is
    /// moved — not cloned — into the propagation run; if the run fails,
    /// every relation is truncated back to its pre-transaction watermark,
    /// which exactly undoes an append-only run. The *caller* owns rolling
    /// back the EDB appends (see [`rollback_inserts`]).
    pub fn apply_delta_appended(
        &mut self,
        post_db: &Database,
        delta: &TxDelta,
        budget: Budget,
        cancel: Option<CancelToken>,
    ) -> Result<UpdateStats, EngineError> {
        debug_assert!(delta.deleted.is_empty(), "fast path is insert-only");
        debug_assert!(
            !self.fallback,
            "fast path requires the incremental fragment"
        );
        let start = Instant::now();
        let idb_marks: Vec<(Pred, usize)> = self
            .idb
            .iter()
            .map(|(&p, r)| (p, r.physical_rows()))
            .collect();
        let idb = std::mem::take(&mut self.idb);
        let mut ev =
            Evaluator::from_prepared(post_db, &self.prepared, idb, delta.edb_marks.clone())?
                .with_tuning(self.tuning)
                .with_budget(budget);
        if let Some(c) = cancel {
            ev = ev.with_cancel_token(c);
        }
        let run = ev.run();
        let rounds = ev.rounds();
        let res = ev.finish();
        let eval_stats = res.stats;
        let idb_inserted = res.stats.inserted;
        let mut idb: BTreeMap<Pred, Relation> = res.idb;
        if let Err(e) = run {
            // Append-only rollback: truncate to the watermarks, drop
            // relations the run created for previously-empty predicates.
            let mut restored = BTreeMap::new();
            for (p, keep) in idb_marks {
                if let Some(mut rel) = idb.remove(&p) {
                    rel.truncate(keep);
                    restored.insert(p, rel);
                }
            }
            self.idb = restored;
            return Err(e);
        }
        self.idb = idb;
        Ok(UpdateStats {
            from_scratch: false,
            over_deleted: 0,
            rederived: 0,
            idb_inserted,
            rounds,
            elapsed_ms: start.elapsed().as_millis() as u64,
            stats: eval_stats,
        })
    }

    /// The lower-level entry: `pre_db` is the pre-transaction database,
    /// `post_db` the post-transaction one (e.g. a clone that a
    /// [`Database::apply`] call produced `delta` on). Replaces the
    /// materialized IDB on success; leaves it untouched on any error.
    pub fn apply_delta(
        &mut self,
        pre_db: &Database,
        post_db: &Database,
        delta: &TxDelta,
        budget: Budget,
        cancel: Option<CancelToken>,
    ) -> Result<UpdateStats, EngineError> {
        let start = Instant::now();
        if self.fallback {
            return self.recompute(post_db, budget, cancel, start);
        }
        let gov = (budget.is_limited() || cancel.is_some())
            .then(|| Governor::new(&budget, cancel.clone().unwrap_or_default()));
        let mut poll = Poll::new(gov.as_ref());

        // Phase 1: DRed over-delete + re-derive on a working copy.
        let mut work_idb = self.idb.clone();
        let mut over_deleted = 0;
        let mut rederived = 0;
        let mut delta_starts = BTreeMap::new();
        if !delta.deleted.is_empty() {
            #[cfg(feature = "failpoints")]
            crate::failpoint::hit("incr.delete").map_err(EngineError::Io)?;
            let out = dred::delete_rederive(
                pre_db,
                &self.idb,
                post_db,
                &mut work_idb,
                &delta.deleted,
                self.prepared.program(),
                &mut poll,
            )?;
            over_deleted = out.over_deleted;
            rederived = out.rederived;
            delta_starts = out.delta_starts;
        }

        // Phase 2: semi-naive insert propagation seeded from the tx's
        // inserted EDB rows and the re-derived IDB rows, under whatever
        // wall-clock remains.
        let mut eval_budget = budget;
        if let Some(d) = budget.deadline {
            let left = d.saturating_sub(start.elapsed());
            if left.is_zero() {
                return Err(EngineError::DeadlineExceeded {
                    elapsed_ms: start.elapsed().as_millis() as u64,
                });
            }
            eval_budget.deadline = Some(left);
        }
        let mut ev =
            Evaluator::from_prepared(post_db, &self.prepared, work_idb, delta.edb_marks.clone())?
                .with_tuning(self.tuning)
                .with_budget(eval_budget);
        if let Some(c) = cancel {
            ev = ev.with_cancel_token(c);
        }
        for (&p, &row) in &delta_starts {
            ev.set_idb_delta_start(p, row);
        }
        ev.run()?;
        let rounds = ev.rounds();
        let res = ev.finish();
        let idb_inserted = res.stats.inserted;
        let mut idb = res.idb;
        for rel in idb.values_mut() {
            rel.compact();
        }
        self.idb = idb;
        Ok(UpdateStats {
            from_scratch: false,
            over_deleted,
            rederived,
            idb_inserted,
            rounds,
            elapsed_ms: start.elapsed().as_millis() as u64,
            stats: res.stats,
        })
    }

    /// Governed from-scratch re-evaluation over the post-tx database —
    /// the sound fallback for programs outside the incremental fragment.
    fn recompute(
        &mut self,
        post_db: &Database,
        budget: Budget,
        cancel: Option<CancelToken>,
        start: Instant,
    ) -> Result<UpdateStats, EngineError> {
        let mut ev = Evaluator::new(post_db, self.prepared.program(), Strategy::SemiNaive)?
            .with_tuning(self.tuning)
            .with_budget(budget);
        if let Some(c) = cancel {
            ev = ev.with_cancel_token(c);
        }
        ev.run()?;
        let rounds = ev.rounds();
        let res = ev.finish();
        self.idb = res.idb;
        Ok(UpdateStats {
            from_scratch: true,
            over_deleted: 0,
            rederived: 0,
            idb_inserted: res.stats.inserted,
            rounds,
            elapsed_ms: start.elapsed().as_millis() as u64,
            stats: res.stats,
        })
    }
}

/// A typed transaction-stream parse error: which line was rejected and
/// why. Unlike a batch parse failure, a stream error condemns only the
/// transaction it occurred in — the parser stays usable for the next
/// transaction, which is what keeps a serving connection alive across a
/// client's malformed line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxStreamError {
    /// 1-based line number within the stream.
    pub line: u64,
    /// What was wrong with the line.
    pub msg: String,
}

impl std::fmt::Display for TxStreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TxStreamError {}

/// What one fed line did to the stream state.
#[derive(Clone, Debug)]
pub enum TxStreamEvent {
    /// The line queued an operation into (or was a comment within) the
    /// current transaction.
    Queued,
    /// The line was `commit.`: the finished transaction is handed out
    /// and the parser is reset for the next one. An empty transaction
    /// commits as `None` (nothing to apply).
    Committed(Option<Tx>),
}

/// An incremental `+fact./-fact./commit.` parser for transaction
/// *streams* — the serving daemon's write protocol, where lines arrive
/// one at a time over a long-lived connection and a malformed line must
/// reject **that transaction** with a typed error instead of tearing
/// down the stream (the batch-file behavior of [`parse_txs`]).
///
/// Error discipline: a malformed line returns its [`TxStreamError`]
/// immediately *and* poisons the in-progress transaction; subsequent
/// operation lines are swallowed (the transaction is already doomed)
/// and the eventual `commit.` returns the original error again — so a
/// pipelining client that missed the first rejection still sees a typed
/// failure at the commit it is waiting on. Either way the parser resets
/// and the next transaction parses cleanly.
#[derive(Debug, Default)]
pub struct TxStreamParser {
    cur: Tx,
    poisoned: Option<TxStreamError>,
    line: u64,
}

impl TxStreamParser {
    /// A fresh parser at line 0 with an empty transaction.
    pub fn new() -> TxStreamParser {
        TxStreamParser::default()
    }

    /// True when the in-progress transaction has been condemned by an
    /// earlier malformed line and will fail at its `commit.`.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Queued operation count of the in-progress transaction.
    pub fn pending_ops(&self) -> usize {
        self.cur.len()
    }

    /// Hands out the in-progress transaction (e.g. a trailing
    /// transaction at end of input), resetting the parser. Errors if
    /// the transaction was poisoned.
    pub fn take_pending(&mut self) -> Result<Option<Tx>, TxStreamError> {
        if let Some(e) = self.poisoned.take() {
            self.cur = Tx::new();
            return Err(e);
        }
        let cur = std::mem::take(&mut self.cur);
        Ok((!cur.is_empty()).then_some(cur))
    }

    /// Feeds one line. Blank lines and `%`/`#` comments are queued
    /// no-ops; `+fact(…).`/`-fact(…).` queue operations; `commit.`
    /// (or bare `commit`) completes the transaction.
    pub fn feed(&mut self, raw: &str) -> Result<TxStreamEvent, TxStreamError> {
        self.line += 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('%') || line.starts_with('#') {
            return Ok(TxStreamEvent::Queued);
        }
        if line == "commit." || line == "commit" {
            if let Some(e) = self.poisoned.take() {
                self.cur = Tx::new();
                return Err(e);
            }
            let cur = std::mem::take(&mut self.cur);
            return Ok(TxStreamEvent::Committed((!cur.is_empty()).then_some(cur)));
        }
        if self.poisoned.is_some() {
            // The tx is already condemned; swallow its remaining
            // operations so the error surfaces exactly at the commit.
            return Ok(TxStreamEvent::Queued);
        }
        match parse_tx_op(line) {
            Ok((insert, fact)) => {
                if insert {
                    self.cur.insert_atom(&fact);
                } else {
                    self.cur.delete_atom(&fact);
                }
                Ok(TxStreamEvent::Queued)
            }
            Err(msg) => {
                let err = TxStreamError {
                    line: self.line,
                    msg,
                };
                self.poisoned = Some(err.clone());
                Err(err)
            }
        }
    }
}

/// Parses one `+fact(…).` / `-fact(…).` operation line (already
/// trimmed, known not to be blank/comment/commit).
fn parse_tx_op(line: &str) -> Result<(bool, Atom), String> {
    let (insert, rest) = match (line.strip_prefix('+'), line.strip_prefix('-')) {
        (Some(r), _) => (true, r),
        (_, Some(r)) => (false, r),
        _ => return Err("expected `+fact(…).`, `-fact(…).`, or `commit.`".to_string()),
    };
    let unit = semrec_datalog::parser::parse_unit(rest.trim()).map_err(|e| e.to_string())?;
    if unit.facts.len() != 1
        || !unit.rules.is_empty()
        || !unit.constraints.is_empty()
        || !unit.facts[0].is_ground()
    {
        return Err("expected exactly one ground fact".to_string());
    }
    Ok((insert, unit.facts.into_iter().next().expect("checked len")))
}

/// Renders a transaction in the `+fact(…)./-fact(…)./commit.` line
/// format [`parse_txs`] accepts — the write-ahead log's record payload,
/// chosen over a binary encoding so a WAL is inspectable with `cat` and
/// replayable through the same parser the live stream uses. Deletes
/// render first, matching [`Database::apply`]'s application order.
pub fn tx_to_stream(tx: &Tx) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let mut emit = |sign: char, pred: &Pred, ts: &[Tuple]| {
        for t in ts {
            let _ = write!(s, "{sign}{pred}(");
            for (i, v) in t.iter().enumerate() {
                let _ = if i == 0 {
                    write!(s, "{v}")
                } else {
                    write!(s, ", {v}")
                };
            }
            s.push_str(").\n");
        }
    };
    for (p, ts) in &tx.deletes {
        emit('-', p, ts);
    }
    for (p, ts) in &tx.inserts {
        emit('+', p, ts);
    }
    s.push_str("commit.\n");
    s
}

/// Parses a transaction file: one operation per line — `+fact(…).` to
/// insert, `-fact(…).` to delete — with `commit.` lines separating
/// transactions (a trailing transaction without `commit.` is included).
/// Blank lines and lines starting with `%` or `#` are comments.
///
/// Batch semantics: the first malformed line fails the whole parse.
/// Stream consumers that must survive malformed input use
/// [`TxStreamParser`] directly.
pub fn parse_txs(src: &str) -> Result<Vec<Tx>, String> {
    let mut parser = TxStreamParser::new();
    let mut txs = Vec::new();
    for raw in src.lines() {
        match parser.feed(raw).map_err(|e| e.to_string())? {
            TxStreamEvent::Queued => {}
            TxStreamEvent::Committed(Some(tx)) => txs.push(tx),
            TxStreamEvent::Committed(None) => {}
        }
    }
    if let Some(tx) = parser.take_pending().map_err(|e| e.to_string())? {
        txs.push(tx);
    }
    Ok(txs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::int_tuple;
    use semrec_datalog::parser::parse_unit;

    fn db(facts: &str) -> Database {
        Database::from_facts(&parse_unit(facts).unwrap().facts)
    }

    fn program(src: &str) -> Program {
        parse_unit(src).unwrap().program()
    }

    fn eval_scratch(db: &Database, p: &Program) -> BTreeMap<Pred, Relation> {
        let mut ev = Evaluator::new(db, p, Strategy::SemiNaive).unwrap();
        ev.run().unwrap();
        ev.finish().idb
    }

    const TC: &str = "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y).";

    #[test]
    fn insert_propagates_incrementally() {
        let mut d = db("e(1, 2). e(2, 3).");
        let p = program(TC);
        let mut m = Materialized::new(&d, &p, 1).unwrap();
        assert!(m.is_incremental());
        let mut tx = Tx::new();
        tx.insert("e", int_tuple(&[3, 4]));
        let stats = m.apply(&mut d, &tx, Budget::unlimited(), None).unwrap();
        assert!(!stats.from_scratch);
        assert!(stats.idb_inserted > 0);
        assert_eq!(m.idb(), &eval_scratch(&d, &p));
        assert!(m.relation("t").unwrap().contains(&int_tuple(&[1, 4])));
    }

    #[test]
    fn delete_runs_dred_and_agrees_with_scratch() {
        let mut d = db("e(1, 2). e(2, 3). e(3, 4). e(1, 3).");
        let p = program(TC);
        let mut m = Materialized::new(&d, &p, 1).unwrap();
        let mut tx = Tx::new();
        tx.delete("e", int_tuple(&[2, 3]));
        let stats = m.apply(&mut d, &tx, Budget::unlimited(), None).unwrap();
        assert!(stats.over_deleted > 0);
        // t(1,3) survives via e(1,3); t(1,4) is re-derived through it.
        assert_eq!(m.idb(), &eval_scratch(&d, &p));
        assert!(m.relation("t").unwrap().contains(&int_tuple(&[1, 4])));
        assert!(!m.relation("t").unwrap().contains(&int_tuple(&[2, 4])));
    }

    #[test]
    fn mixed_tx_nets_out() {
        let mut d = db("e(1, 2). e(2, 3).");
        let p = program(TC);
        let mut m = Materialized::new(&d, &p, 1).unwrap();
        let mut tx = Tx::new();
        tx.delete("e", int_tuple(&[2, 3]));
        tx.insert("e", int_tuple(&[2, 4]));
        tx.insert("e", int_tuple(&[4, 3]));
        m.apply(&mut d, &tx, Budget::unlimited(), None).unwrap();
        assert_eq!(m.idb(), &eval_scratch(&d, &p));
        assert!(m.relation("t").unwrap().contains(&int_tuple(&[1, 3])));
    }

    #[test]
    fn delete_and_reinsert_same_tuple_is_net_noop() {
        let mut d = db("e(1, 2). e(2, 3).");
        let p = program(TC);
        let mut m = Materialized::new(&d, &p, 1).unwrap();
        let before = eval_scratch(&d, &p);
        let mut tx = Tx::new();
        tx.delete("e", int_tuple(&[2, 3]));
        tx.insert("e", int_tuple(&[2, 3]));
        m.apply(&mut d, &tx, Budget::unlimited(), None).unwrap();
        assert_eq!(m.idb(), &before);
    }

    #[test]
    fn negation_falls_back_to_scratch() {
        let mut d = db("e(1, 2). v(1). v(2). v(3).");
        let p = program("r(X) :- e(_, X). u(X) :- v(X), !r(X).");
        let mut m = Materialized::new(&d, &p, 1).unwrap();
        assert!(!m.is_incremental());
        let mut tx = Tx::new();
        tx.insert("e", int_tuple(&[2, 3]));
        let stats = m.apply(&mut d, &tx, Budget::unlimited(), None).unwrap();
        assert!(stats.from_scratch);
        assert_eq!(m.idb(), &eval_scratch(&d, &p));
        assert!(!m.relation("u").unwrap().contains(&int_tuple(&[3])));
    }

    #[test]
    fn delta_ic_check_matches_full_check() {
        let ics = semrec_datalog::parser::parse_constraints("ic: e(X, Y) -> w(Y).").unwrap();
        let mut d = db("e(1, 2). w(2). w(3).");
        assert!(d.satisfies(&ics[0]));
        let mut tx = Tx::new();
        tx.insert("e", int_tuple(&[2, 3]));
        let delta = d.apply(&tx);
        assert!(ic_still_satisfied(&d, &delta, &ics[0]).unwrap());
        let mut tx2 = Tx::new();
        tx2.insert("e", int_tuple(&[3, 9]));
        let delta2 = d.apply(&tx2);
        assert!(!ic_still_satisfied(&d, &delta2, &ics[0]).unwrap());
        assert!(!d.satisfies(&ics[0]));
    }

    #[test]
    fn delta_ic_check_catches_head_witness_deletion() {
        let ics = semrec_datalog::parser::parse_constraints("ic: e(X, Y) -> w(Y).").unwrap();
        let mut d = db("e(1, 2). w(2).");
        let mut tx = Tx::new();
        tx.delete("w", int_tuple(&[2]));
        let delta = d.apply(&tx);
        assert!(!ic_still_satisfied(&d, &delta, &ics[0]).unwrap());
    }

    #[test]
    fn parse_txs_roundtrip() {
        let txs = parse_txs("% a comment\n+e(1, 2).\n-e(3, 4).\ncommit.\n+w(5).\n").unwrap();
        assert_eq!(txs.len(), 2);
        assert_eq!(txs[0].len(), 2);
        assert_eq!(txs[1].len(), 1);
        assert!(parse_txs("e(1, 2).").is_err());
    }

    #[test]
    fn stream_parser_rejects_one_tx_and_recovers() {
        let mut p = TxStreamParser::new();
        assert!(matches!(p.feed("+e(1, 2)."), Ok(TxStreamEvent::Queued)));
        // Malformed line: immediate typed error, tx poisoned.
        let err = p.feed("garbage here").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(p.is_poisoned());
        // Later operations of the doomed tx are swallowed…
        assert!(matches!(p.feed("+e(2, 3)."), Ok(TxStreamEvent::Queued)));
        // …and the commit fails with the original error, then resets.
        let at_commit = p.feed("commit.").unwrap_err();
        assert_eq!(at_commit, err);
        assert!(!p.is_poisoned());
        // The next transaction parses cleanly — the stream survived.
        assert!(matches!(p.feed("+e(5, 6)."), Ok(TxStreamEvent::Queued)));
        match p.feed("commit.").unwrap() {
            TxStreamEvent::Committed(Some(tx)) => assert_eq!(tx.len(), 1),
            other => panic!("expected a committed tx, got {other:?}"),
        }
    }

    #[test]
    fn stream_parser_empty_commit_is_a_noop_commit() {
        let mut p = TxStreamParser::new();
        match p.feed("commit.").unwrap() {
            TxStreamEvent::Committed(None) => {}
            other => panic!("expected an empty commit, got {other:?}"),
        }
    }

    #[test]
    fn stream_parser_take_pending_surfaces_poison() {
        let mut p = TxStreamParser::new();
        p.feed("+e(1, 2).").unwrap();
        assert!(p.feed("nope").is_err());
        assert!(p.take_pending().is_err());
        // Reset after the error: a fresh trailing tx hands out fine.
        p.feed("+e(3, 4).").unwrap();
        assert_eq!(p.take_pending().unwrap().unwrap().len(), 1);
        assert!(p.take_pending().unwrap().is_none());
    }

    #[test]
    fn stream_parser_rejects_non_ground_and_multi_fact_lines() {
        for bad in [
            "+e(X, 2).",
            "+e(1, 2). e(3, 4).",
            "+r(X) :- e(X, _).",
            "e(1, 2).",
        ] {
            let mut p = TxStreamParser::new();
            assert!(p.feed(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn tx_to_stream_roundtrips_through_parse_txs() {
        let mut tx = Tx::new();
        tx.insert("e", int_tuple(&[1, 2]));
        tx.insert("w", vec![semrec_datalog::term::Value::str("hello world")]);
        tx.delete("e", int_tuple(&[3, 4]));
        let text = tx_to_stream(&tx);
        let txs = parse_txs(&text).unwrap();
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].inserts(), tx.inserts());
        assert_eq!(txs[0].deletes(), tx.deletes());
    }
}
