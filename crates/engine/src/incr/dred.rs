//! DRed-style deletion: over-delete every derivation that *might* have
//! depended on a deleted fact, then re-derive the over-deleted tuples
//! that still have alternative support.
//!
//! The classic two phases map onto the flat-storage engine like this:
//!
//! 1. **Over-delete** — a worklist pass seeded by the transaction's
//!    effective EDB deletes. For each deleted tuple and each rule body
//!    position it can occupy, the remaining body literals are matched
//!    over the *frozen pre-transaction state* (original EDB + original
//!    materialization), and every derivable head tuple is tombstoned in
//!    the working IDB and queued in turn. Matching against the pre-tx
//!    state is what makes this an over-approximation: a derivation may
//!    have other support that survives the tx.
//! 2. **Re-derive** — one pass over the over-deleted tuples checks
//!    one-step derivability against the *remaining* state (post-delete
//!    EDB + pruned IDB). Survivors are re-appended past the pruned
//!    relations' watermarks, where they form the IDB delta of the
//!    subsequent insert-propagation run — which transitively re-derives
//!    anything the survivors (or the tx's inserted facts) support,
//!    including further over-deleted tuples, through the ordinary
//!    semi-naive delta rules. (A re-insert of a tombstoned row appends
//!    a fresh live row; set semantics over live rows hold throughout.)
//!
//! Negation and builtins are rejected upstream ([`super::Materialized`]
//! falls back to batch re-evaluation), so every body literal here is a
//! positive atom or a comparison.

use super::matcher::{match_body, unify_row, Poll, State};
use crate::database::Database;
use crate::error::EngineError;
use crate::relation::{Relation, Tuple};
use semrec_datalog::atom::{Atom, Pred};
use semrec_datalog::literal::{Cmp, Literal};
use semrec_datalog::program::Program;
use semrec_datalog::subst::Subst;
use std::collections::{BTreeMap, VecDeque};

/// What the deletion pass did, and where the propagation run must pick
/// up.
pub(crate) struct DredOutcome {
    /// IDB tuples tombstoned by over-deletion.
    pub over_deleted: u64,
    /// Over-deleted tuples with surviving one-step support, re-appended.
    pub rederived: u64,
    /// Per IDB predicate, the physical row id where re-derived appends
    /// begin — the predicate's delta start for the propagation run.
    pub delta_starts: BTreeMap<Pred, u32>,
}

/// Splits a rule body into its positive atoms (with body positions) and
/// comparison literals.
fn body_parts(body: &[Literal]) -> (Vec<(usize, &Atom)>, Vec<&Cmp>) {
    let mut atoms = Vec::new();
    let mut cmps = Vec::new();
    for (i, l) in body.iter().enumerate() {
        match l {
            Literal::Atom(a) => atoms.push((i, a)),
            Literal::Cmp(c) => cmps.push(c),
            Literal::Neg(_) => unreachable!("negation is rejected before the DRed pass"),
        }
    }
    (atoms, cmps)
}

/// Grounds `head` under a complete body binding.
fn ground_head(head: &Atom, theta: &Subst) -> Tuple {
    theta
        .apply_atom(head)
        .args
        .iter()
        .map(|t| {
            t.as_const()
                .expect("safe rule left a head variable unbound")
        })
        .collect()
}

/// Runs both DRed phases. `pre_edb`/`pre_idb` are the frozen
/// pre-transaction state; `post_edb` already has the tx's deletes
/// tombstoned (and its inserts appended — extra support can only make
/// re-derivation more complete); `work_idb` is the clone being pruned.
pub(crate) fn delete_rederive(
    pre_edb: &Database,
    pre_idb: &BTreeMap<Pred, Relation>,
    post_edb: &Database,
    work_idb: &mut BTreeMap<Pred, Relation>,
    deleted: &BTreeMap<Pred, Vec<Tuple>>,
    program: &Program,
    poll: &mut Poll<'_>,
) -> Result<DredOutcome, EngineError> {
    let pre_state = State {
        edb: pre_edb,
        idb: pre_idb,
    };
    // Phase 1: over-delete. The worklist starts from the EDB deletes;
    // IDB tuples join it as their derivations are invalidated.
    let mut queue: VecDeque<(Pred, Tuple)> = deleted
        .iter()
        .flat_map(|(&p, ts)| ts.iter().map(move |t| (p, t.clone())))
        .collect();
    let mut over: Vec<(Pred, Tuple)> = Vec::new();
    while let Some((p, t)) = queue.pop_front() {
        poll.tick()?;
        for rule in &program.rules {
            let (atoms, cmps) = body_parts(&rule.body);
            for &(li, atom) in &atoms {
                if atom.pred != p {
                    continue;
                }
                let mut theta = Subst::new();
                if !unify_row(atom, &t, &mut theta) {
                    continue;
                }
                let rest: Vec<&Atom> = atoms
                    .iter()
                    .filter(|&&(lj, _)| lj != li)
                    .map(|&(_, a)| a)
                    .collect();
                let head = &rule.head;
                let mut hit = Vec::new();
                match_body(&pre_state, &rest, &cmps, &mut theta, poll, &mut |th| {
                    hit.push(ground_head(head, th));
                    true
                })?;
                for h in hit {
                    // `delete` is false for tuples already tombstoned
                    // (or never derived), so each tuple is over-deleted
                    // and queued at most once.
                    if work_idb
                        .get_mut(&rule.head.pred)
                        .is_some_and(|r| r.delete(&h))
                    {
                        over.push((rule.head.pred, h.clone()));
                        queue.push_back((rule.head.pred, h));
                    }
                }
            }
        }
    }

    // Phase 2: re-derive. Record each predicate's watermark first, so
    // the appends land in the propagation run's delta window. The
    // derivability checks read the pruned state as of the end of phase
    // 1 (appends are deferred): tuples whose support returns only
    // transitively are re-derived by the propagation fixpoint instead.
    let mut delta_starts: BTreeMap<Pred, u32> = BTreeMap::new();
    for (&p, rel) in work_idb.iter() {
        delta_starts.insert(p, rel.physical_rows() as u32);
    }
    let mut rederived: Vec<(Pred, Tuple)> = Vec::new();
    {
        let post_state = State {
            edb: post_edb,
            idb: work_idb,
        };
        'tuples: for (p, t) in &over {
            poll.tick()?;
            for rule in &program.rules {
                if rule.head.pred != *p {
                    continue;
                }
                let mut theta = Subst::new();
                if !unify_row(&rule.head, t, &mut theta) {
                    continue;
                }
                let (atoms, cmps) = body_parts(&rule.body);
                let rest: Vec<&Atom> = atoms.iter().map(|&(_, a)| a).collect();
                let mut derivable = false;
                match_body(&post_state, &rest, &cmps, &mut theta, poll, &mut |_| {
                    derivable = true;
                    false // existence established; stop enumerating
                })?;
                if derivable {
                    rederived.push((*p, t.clone()));
                    continue 'tuples;
                }
            }
        }
    }
    let nrederived = rederived.len() as u64;
    for (p, t) in rederived {
        let rel = work_idb
            .get_mut(&p)
            .expect("re-derived tuple for unknown idb predicate");
        let inserted = rel.insert(&t[..]);
        debug_assert!(inserted, "re-derived tuple was still live");
    }
    Ok(DredOutcome {
        over_deleted: over.len() as u64,
        rederived: nrederived,
        delta_starts,
    })
}
