//! Delta-driven integrity-constraint monitoring.
//!
//! `Database::satisfies` enumerates every body binding of a constraint —
//! fine for batch validation, wasteful per transaction. For a constraint
//! that held *before* the transaction, only bindings that involve the
//! delta can newly violate it:
//!
//! - An **insert** into a body-atom predicate can complete a body
//!   binding that the head fails. Each body position whose predicate
//!   received inserts is seeded with each inserted tuple; the remaining
//!   body atoms enumerate the full post-transaction EDB.
//! - A **delete** from the head-atom predicate can strip the witness of
//!   a previously satisfied body binding. The constraint is re-checked
//!   in full — still delta-driven, because the full check only runs
//!   when that specific predicate shrank.
//!
//! Deletes from body predicates and inserts into the head predicate can
//! only *remove* violations, so a held constraint stays held under them.
//! Constraints already violated are outside this module's scope: the
//! maintenance layer re-checks those in full until they hold again.

use super::matcher::{match_body, unify_row, Poll, State};
use super::TxDelta;
use crate::database::Database;
use crate::error::EngineError;
use crate::relation::{Relation, Tuple};
use semrec_datalog::atom::Pred;
use semrec_datalog::constraint::{Constraint, IcHead};
use semrec_datalog::subst::Subst;
use std::collections::BTreeMap;

/// True if the constraint's head holds under a complete body binding,
/// mirroring the head semantics of `Database::violations`.
fn head_holds(db: &Database, ic: &Constraint, theta: &Subst) -> bool {
    match &ic.head {
        IcHead::None => false,
        IcHead::Cmp(c) => theta.apply_cmp(c).eval_ground() == Some(true),
        IcHead::Atom(a) => {
            let g = theta.apply_atom(a);
            let Some(rel) = db.get(g.pred) else {
                return false;
            };
            if g.is_ground() {
                let t: Tuple = g.args.iter().map(|t| t.as_const().unwrap()).collect();
                rel.contains(&t)
            } else {
                // Existential head variables: any tuple matching the
                // bound positions witnesses the head.
                rel.iter().any(|row| {
                    g.args.iter().zip(row).all(|(t, v)| match t.as_const() {
                        Some(c) => c == *v,
                        None => true,
                    })
                })
            }
        }
    }
}

/// Whether `ic` — known to hold before the transaction — still holds
/// after it, examining only bindings the delta can have created.
/// `post` is the post-transaction database.
pub(crate) fn still_satisfied(
    post: &Database,
    delta: &TxDelta,
    ic: &Constraint,
    poll: &mut Poll<'_>,
) -> Result<bool, EngineError> {
    #[cfg(feature = "failpoints")]
    crate::failpoint::hit("incr.icheck").map_err(EngineError::Io)?;
    let empty: BTreeMap<Pred, Relation> = BTreeMap::new();
    let state = State {
        edb: post,
        idb: &empty,
    };
    let cmps: Vec<_> = ic.body_cmps.iter().collect();
    for (i, atom) in ic.body_atoms.iter().enumerate() {
        let Some(inserted) = delta.inserted.get(&atom.pred) else {
            continue;
        };
        let rest: Vec<_> = ic
            .body_atoms
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, a)| a)
            .collect();
        for t in inserted {
            poll.tick()?;
            let mut theta = Subst::new();
            if !unify_row(atom, t, &mut theta) {
                continue;
            }
            let mut violated = false;
            match_body(&state, &rest, &cmps, &mut theta, poll, &mut |th| {
                if head_holds(post, ic, th) {
                    true // keep searching for a violating binding
                } else {
                    violated = true;
                    false
                }
            })?;
            if violated {
                return Ok(false);
            }
        }
    }
    if let IcHead::Atom(h) = &ic.head {
        if delta.deleted.contains_key(&h.pred) {
            return Ok(post.satisfies(ic));
        }
    }
    Ok(true)
}
