//! Engine error type.

use std::fmt;

/// Errors raised by compilation and evaluation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// A rule cannot be compiled because some variable cannot be bound.
    UnsafeRule {
        /// The offending rule, pretty-printed.
        rule: String,
        /// Why it is unsafe.
        detail: String,
    },
    /// A predicate is used with inconsistent arity.
    ArityMismatch(String),
    /// The iteration limit was exceeded before reaching a fixpoint.
    IterationLimit(usize),
    /// The program uses negation inside a recursive cycle.
    NotStratified(String),
    /// A data import/export failure.
    Io(String),
    /// The evaluation was cancelled through a
    /// [`CancelToken`](crate::governor::CancelToken).
    Cancelled,
    /// The evaluation's wall-clock deadline passed. Cooperative checks
    /// inside pool jobs make this fire mid-round, so `elapsed_ms` stays
    /// close to the requested deadline even on long rounds.
    DeadlineExceeded {
        /// Wall-clock milliseconds elapsed when the deadline tripped.
        elapsed_ms: u64,
    },
    /// A resource budget other than the deadline was exhausted.
    BudgetExceeded {
        /// Which budget tripped (`"idb_rows"` or `"resident_bytes"`).
        resource: &'static str,
        /// The configured limit.
        limit: u64,
        /// The measured usage that exceeded it.
        used: u64,
    },
    /// A pool job panicked on a worker thread. The round's partial
    /// derivations were discarded; committed relations stay valid.
    WorkerPanicked {
        /// The failing job kind (`"pool.join"` or `"pool.merge"`).
        job: String,
        /// The panic payload, stringified.
        payload: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnsafeRule { rule, detail } => {
                write!(f, "unsafe rule `{rule}`: {detail}")
            }
            EngineError::ArityMismatch(msg) => write!(f, "arity mismatch: {msg}"),
            EngineError::IterationLimit(n) => {
                write!(f, "fixpoint not reached within {n} iterations")
            }
            EngineError::NotStratified(msg) => write!(f, "not stratified: {msg}"),
            EngineError::Io(msg) => write!(f, "io error: {msg}"),
            EngineError::Cancelled => write!(f, "evaluation cancelled"),
            EngineError::DeadlineExceeded { elapsed_ms } => {
                write!(f, "deadline exceeded after {elapsed_ms} ms")
            }
            EngineError::BudgetExceeded {
                resource,
                limit,
                used,
            } => write!(
                f,
                "budget exceeded: {resource} used {used} of limit {limit}"
            ),
            EngineError::WorkerPanicked { job, payload } => {
                write!(f, "worker panicked in {job}: {payload}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<semrec_datalog::Error> for EngineError {
    fn from(e: semrec_datalog::Error) -> Self {
        EngineError::ArityMismatch(e.to_string())
    }
}
