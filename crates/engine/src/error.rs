//! Engine error type.

use std::fmt;

/// Errors raised by compilation and evaluation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// A rule cannot be compiled because some variable cannot be bound.
    UnsafeRule {
        /// The offending rule, pretty-printed.
        rule: String,
        /// Why it is unsafe.
        detail: String,
    },
    /// A predicate is used with inconsistent arity.
    ArityMismatch(String),
    /// The iteration limit was exceeded before reaching a fixpoint.
    IterationLimit(usize),
    /// The program uses negation inside a recursive cycle.
    NotStratified(String),
    /// A data import/export failure.
    Io(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnsafeRule { rule, detail } => {
                write!(f, "unsafe rule `{rule}`: {detail}")
            }
            EngineError::ArityMismatch(msg) => write!(f, "arity mismatch: {msg}"),
            EngineError::IterationLimit(n) => {
                write!(f, "fixpoint not reached within {n} iterations")
            }
            EngineError::NotStratified(msg) => write!(f, "not stratified: {msg}"),
            EngineError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<semrec_datalog::Error> for EngineError {
    fn from(e: semrec_datalog::Error) -> Self {
        EngineError::ArityMismatch(e.to_string())
    }
}
