//! Post-hoc derivation explanation: reconstructs a proof tree for a
//! derived fact against the materialized IDB, with zero evaluation-time
//! overhead.
//!
//! Given the fixpoint result, every derived fact has at least one acyclic
//! derivation; [`explain`] finds one by matching rules top-down against
//! the materialized relations, refusing to use a fact inside its own
//! support (the `visiting` set). This powers the CLI's `why` command and
//! complements `semrec-iqa`'s proof-tree reasoning with *instance-level*
//! explanations.

use crate::database::Database;
use crate::relation::{Relation, Tuple};
use semrec_datalog::atom::Pred;
use semrec_datalog::literal::Literal;
use semrec_datalog::program::Program;
use semrec_datalog::subst::Subst;
use semrec_datalog::term::{Term, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A derivation tree for one fact.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Derivation {
    /// The derived (or base) fact.
    pub pred: Pred,
    /// Its tuple.
    pub tuple: Tuple,
    /// The rule index used (None for EDB facts).
    pub rule: Option<usize>,
    /// Sub-derivations for the rule's database premises, in body order.
    pub children: Vec<Derivation>,
}

impl Derivation {
    /// Number of rule applications in the tree.
    pub fn size(&self) -> usize {
        usize::from(self.rule.is_some()) + self.children.iter().map(Derivation::size).sum::<usize>()
    }

    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        let cells: Vec<String> = self.tuple.iter().map(ToString::to_string).collect();
        match self.rule {
            Some(r) => writeln!(f, "{pad}{}({})   [rule {r}]", self.pred, cells.join(", "))?,
            None => writeln!(f, "{pad}{}({})   [fact]", self.pred, cells.join(", "))?,
        }
        for c in &self.children {
            c.fmt_indent(f, depth + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for Derivation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

/// Explains how `(pred, tuple)` was derived, against the EDB `db` and the
/// materialized IDB relations `idb`. Returns `None` if the fact does not
/// hold (or, for malformed inputs, cannot be reconstructed).
pub fn explain(
    db: &Database,
    idb: &BTreeMap<Pred, Relation>,
    program: &Program,
    pred: Pred,
    tuple: &Tuple,
) -> Option<Derivation> {
    let mut visiting = BTreeSet::new();
    go(db, idb, program, pred, tuple, &mut visiting)
}

fn lookup<'a>(
    db: &'a Database,
    idb: &'a BTreeMap<Pred, Relation>,
    pred: Pred,
) -> Option<&'a Relation> {
    idb.get(&pred).or_else(|| db.get(pred))
}

fn go(
    db: &Database,
    idb: &BTreeMap<Pred, Relation>,
    program: &Program,
    pred: Pred,
    tuple: &[Value],
    visiting: &mut BTreeSet<(Pred, Tuple)>,
) -> Option<Derivation> {
    let rel = lookup(db, idb, pred)?;
    if !rel.contains(tuple) {
        return None;
    }
    // EDB facts (or facts also present in the EDB) are leaves.
    if db.get(pred).is_some_and(|r| r.contains(tuple)) {
        return Some(Derivation {
            pred,
            tuple: tuple.to_vec(),
            rule: None,
            children: vec![],
        });
    }
    let key = (pred, tuple.to_vec());
    if !visiting.insert(key.clone()) {
        return None; // already on the current support path
    }
    let result = derive_via_rules(db, idb, program, pred, tuple, visiting);
    visiting.remove(&key);
    result
}

fn derive_via_rules(
    db: &Database,
    idb: &BTreeMap<Pred, Relation>,
    program: &Program,
    pred: Pred,
    tuple: &[Value],
    visiting: &mut BTreeSet<(Pred, Tuple)>,
) -> Option<Derivation> {
    for ri in program.rules_for(pred) {
        let rule = &program.rules[ri];
        // Bind head variables from the tuple.
        let mut theta = Subst::new();
        let mut ok = true;
        for (t, v) in rule.head.args.iter().zip(tuple) {
            match t {
                Term::Const(c) => {
                    if c != v {
                        ok = false;
                        break;
                    }
                }
                Term::Var(x) => match theta.get(*x) {
                    Some(Term::Const(prev)) if prev == *v => {}
                    Some(_) => {
                        ok = false;
                        break;
                    }
                    None => {
                        theta.insert(*x, Term::Const(*v));
                    }
                },
            }
        }
        if !ok {
            continue;
        }
        if let Some(children) = match_body(db, idb, program, rule, 0, theta, visiting) {
            return Some(Derivation {
                pred,
                tuple: tuple.to_vec(),
                rule: Some(ri),
                children,
            });
        }
    }
    None
}

fn match_body(
    db: &Database,
    idb: &BTreeMap<Pred, Relation>,
    program: &Program,
    rule: &semrec_datalog::rule::Rule,
    li: usize,
    theta: Subst,
    visiting: &mut BTreeSet<(Pred, Tuple)>,
) -> Option<Vec<Derivation>> {
    let Some(lit) = rule.body.get(li) else {
        return Some(vec![]);
    };
    match lit {
        Literal::Cmp(c) => {
            let g = theta.apply_cmp(c);
            match g.eval_ground() {
                Some(true) => match_body(db, idb, program, rule, li + 1, theta, visiting),
                _ => None,
            }
        }
        Literal::Neg(a) => {
            let g = theta.apply_atom(a);
            if !g.is_ground() {
                return None;
            }
            let t: Tuple = g.args.iter().map(|x| x.as_const().unwrap()).collect();
            let absent = lookup(db, idb, g.pred).is_none_or(|r| !r.contains(&t));
            if absent {
                match_body(db, idb, program, rule, li + 1, theta, visiting)
            } else {
                None
            }
        }
        Literal::Atom(a) if crate::builtins::BuiltinOp::of(a.pred).is_some() => {
            let op = crate::builtins::BuiltinOp::of(a.pred).unwrap();
            let g = theta.apply_atom(a);
            let vals: Vec<Option<Value>> = g.args.iter().map(|t| t.as_const()).collect();
            if vals.iter().filter(|v| v.is_some()).count() == 3 {
                if op.check(vals[0].unwrap(), vals[1].unwrap(), vals[2].unwrap()) {
                    return match_body(db, idb, program, rule, li + 1, theta, visiting);
                }
                return None;
            }
            if let Some(pos) = vals.iter().position(Option::is_none) {
                if vals.iter().filter(|v| v.is_some()).count() == 2 {
                    if let Some(v) = op.solve([vals[0], vals[1], vals[2]]) {
                        let Term::Var(x) = g.args[pos] else {
                            return None;
                        };
                        let mut t2 = theta.clone();
                        t2.insert(x, Term::Const(v));
                        return match_body(db, idb, program, rule, li + 1, t2, visiting);
                    }
                }
            }
            None
        }
        Literal::Atom(a) => {
            let rel = lookup(db, idb, a.pred)?;
            'rows: for row in rel.iter() {
                let mut t2 = theta.clone();
                for (arg, v) in a.args.iter().zip(row) {
                    let resolved = t2.apply_term(*arg);
                    match resolved {
                        Term::Const(c) => {
                            if c != *v {
                                continue 'rows;
                            }
                        }
                        Term::Var(x) => {
                            t2.insert(x, Term::Const(*v));
                        }
                    }
                }
                // The premise must itself be explainable (acyclically).
                let Some(child) = go(db, idb, program, a.pred, row, visiting) else {
                    continue 'rows;
                };
                if let Some(mut rest) = match_body(db, idb, program, rule, li + 1, t2, visiting) {
                    let mut children = vec![child];
                    children.append(&mut rest);
                    return Some(children);
                }
            }
            None
        }
    }
}

/// Convenience: explains a ground goal written as an atom string, after an
/// evaluation.
pub fn explain_fact(
    db: &Database,
    result: &crate::eval::EvalResult,
    program: &Program,
    goal: &semrec_datalog::atom::Atom,
) -> Option<Derivation> {
    let tuple: Option<Tuple> = goal
        .args
        .iter()
        .map(|t| t.as_const())
        .collect::<Option<Vec<Value>>>();
    explain(db, &result.idb, program, goal.pred, &tuple?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::int_tuple;
    use crate::eval::{evaluate, Strategy};
    use semrec_datalog::parser::{parse_atom, parse_unit};

    fn setup() -> (Database, Program) {
        let unit = parse_unit(
            "t(X, Y) :- e(X, Y).
             t(X, Y) :- e(X, Z), t(Z, Y).",
        )
        .unwrap();
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            db.insert("e", int_tuple(&[a, b]));
        }
        (db, unit.program())
    }

    #[test]
    fn explains_base_and_derived_facts() {
        let (db, prog) = setup();
        let res = evaluate(&db, &prog, Strategy::SemiNaive).unwrap();
        let d = explain_fact(&db, &res, &prog, &parse_atom("t(1, 4)").unwrap()).unwrap();
        assert_eq!(d.rule, Some(1));
        // The tree bottoms out in e-facts.
        assert_eq!(d.size(), 3); // three rule applications for a 3-hop path
        let text = d.to_string();
        assert!(text.contains("[fact]"));
        assert!(text.contains("t(1, 4)"));
    }

    #[test]
    fn nonfacts_are_unexplainable() {
        let (db, prog) = setup();
        let res = evaluate(&db, &prog, Strategy::SemiNaive).unwrap();
        assert!(explain_fact(&db, &res, &prog, &parse_atom("t(4, 1)").unwrap()).is_none());
        assert!(explain_fact(&db, &res, &prog, &parse_atom("ghost(1)").unwrap()).is_none());
    }

    #[test]
    fn cyclic_data_still_yields_acyclic_derivations() {
        let unit = parse_unit(
            "t(X, Y) :- e(X, Y).
             t(X, Y) :- e(X, Z), t(Z, Y).",
        )
        .unwrap();
        let mut db = Database::new();
        for (a, b) in [(0, 1), (1, 0)] {
            db.insert("e", int_tuple(&[a, b]));
        }
        let prog = unit.program();
        let res = evaluate(&db, &prog, Strategy::SemiNaive).unwrap();
        for goal in ["t(0, 0)", "t(0, 1)", "t(1, 1)"] {
            let d = explain_fact(&db, &res, &prog, &parse_atom(goal).unwrap())
                .unwrap_or_else(|| panic!("{goal} unexplained"));
            assert!(d.size() <= 4);
        }
    }

    #[test]
    fn explains_facts_with_comparisons() {
        let unit = parse_unit("big(X, Y) :- e(X, Y), Y >= 3.").unwrap();
        let mut db = Database::new();
        db.insert("e", int_tuple(&[1, 5]));
        db.insert("e", int_tuple(&[1, 2]));
        let prog = unit.program();
        let res = evaluate(&db, &prog, Strategy::SemiNaive).unwrap();
        assert!(explain_fact(&db, &res, &prog, &parse_atom("big(1, 5)").unwrap()).is_some());
        assert!(explain_fact(&db, &res, &prog, &parse_atom("big(1, 2)").unwrap()).is_none());
    }
}

#[cfg(test)]
mod builtin_tests {
    use super::*;
    use crate::database::int_tuple;
    use crate::eval::{evaluate, Strategy};
    use semrec_datalog::parser::{parse_atom, parse_unit};

    #[test]
    fn derivations_through_builtins() {
        let unit = parse_unit(
            "dist(X, Y, 1) :- e(X, Y).
             dist(X, Y, N) :- dist(X, Z, M), e(Z, Y), plus(M, 1, N).",
        )
        .unwrap();
        let mut db = Database::new();
        for i in 0..3 {
            db.insert("e", int_tuple(&[i, i + 1]));
        }
        let prog = unit.program();
        let res = evaluate(&db, &prog, Strategy::SemiNaive).unwrap();
        let d = explain_fact(&db, &res, &prog, &parse_atom("dist(0, 3, 3)").unwrap())
            .expect("explained");
        assert_eq!(d.size(), 3);
    }
}
