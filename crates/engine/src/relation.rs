//! Append-only relations with lazily built, incrementally extended hash
//! indexes on column subsets.
//!
//! Rows are never removed, which makes semi-naive evaluation's
//! old/delta/total views simple row-id ranges: `old = [0, watermark)`,
//! `delta = [watermark, len)`, `total = [0, len)`.

use parking_lot::RwLock;
use semrec_datalog::term::Value;
use std::collections::{HashMap, HashSet};

/// A database tuple.
pub type Tuple = Vec<Value>;

/// A half-open range of row ids, used to express old/delta/total views.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RowRange {
    /// First row id (inclusive).
    pub start: u32,
    /// One past the last row id.
    pub end: u32,
}

impl RowRange {
    /// True if `row` lies in the range.
    pub fn contains(self, row: u32) -> bool {
        self.start <= row && row < self.end
    }

    /// Number of rows in the range.
    pub fn len(self) -> usize {
        (self.end - self.start) as usize
    }

    /// True if the range is empty.
    pub fn is_empty(self) -> bool {
        self.start >= self.end
    }
}

#[derive(Debug)]
struct ColumnIndex {
    cols: Vec<usize>,
    map: HashMap<Vec<Value>, Vec<u32>>,
    /// Rows `[0, built)` have been added to `map`.
    built: usize,
}

/// An append-only relation of fixed arity with set semantics.
///
/// The lazy index cache sits behind an `RwLock`, so `&Relation` can be
/// shared across threads during a (read-only) evaluation round — see
/// [`crate::eval::Evaluator::with_parallelism`]. Call
/// [`Relation::ensure_index`] before a parallel phase to avoid write-lock
/// contention on first probe.
#[derive(Debug)]
pub struct Relation {
    arity: usize,
    rows: Vec<Tuple>,
    dedup: HashSet<Tuple>,
    indexes: RwLock<HashMap<Vec<usize>, ColumnIndex>>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            rows: Vec::new(),
            dedup: HashSet::new(),
            indexes: RwLock::new(HashMap::new()),
        }
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The full row range.
    pub fn all_rows(&self) -> RowRange {
        RowRange {
            start: 0,
            end: self.rows.len() as u32,
        }
    }

    /// Inserts a tuple; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the tuple arity does not match the relation arity.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(t.len(), self.arity, "tuple arity mismatch");
        if self.dedup.contains(&t) {
            return false;
        }
        self.dedup.insert(t.clone());
        self.rows.push(t);
        true
    }

    /// Membership test.
    pub fn contains(&self, t: &[Value]) -> bool {
        self.dedup.contains(t)
    }

    /// The tuple at `row`.
    pub fn row(&self, row: u32) -> &[Value] {
        &self.rows[row as usize]
    }

    /// Iterates over all tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter()
    }

    /// Iterates over the tuples of a row range.
    pub fn iter_range(&self, range: RowRange) -> impl Iterator<Item = (u32, &Tuple)> {
        (range.start..range.end.min(self.rows.len() as u32))
            .map(move |r| (r, &self.rows[r as usize]))
    }

    /// Row ids within `range` whose columns `cols` equal `key`, using (and
    /// if necessary extending) the hash index on `cols`.
    ///
    /// Probing with an empty `cols` is an error — use [`Relation::iter_range`].
    pub fn probe(&self, cols: &[usize], key: &[Value], range: RowRange) -> Vec<u32> {
        debug_assert!(!cols.is_empty(), "probe with no bound columns");
        debug_assert_eq!(cols.len(), key.len());
        // Fast path: the index exists and is current — shared read lock.
        {
            let indexes = self.indexes.read();
            if let Some(idx) = indexes.get(cols) {
                if idx.built == self.rows.len() {
                    return Self::index_hits(idx, key, range);
                }
            }
        }
        self.ensure_index(cols);
        let indexes = self.indexes.read();
        Self::index_hits(&indexes[cols], key, range)
    }

    fn index_hits(idx: &ColumnIndex, key: &[Value], range: RowRange) -> Vec<u32> {
        match idx.map.get(key) {
            None => Vec::new(),
            Some(rows) => rows
                .iter()
                .copied()
                .filter(|&r| range.contains(r))
                .collect(),
        }
    }

    /// Builds (or extends) the hash index on `cols` so that subsequent
    /// probes only take the shared read lock. Called automatically by
    /// [`Relation::probe`]; call it eagerly before sharing the relation
    /// across threads.
    pub fn ensure_index(&self, cols: &[usize]) {
        let mut indexes = self.indexes.write();
        let idx = indexes.entry(cols.to_vec()).or_insert_with(|| ColumnIndex {
            cols: cols.to_vec(),
            map: HashMap::new(),
            built: 0,
        });
        for r in idx.built..self.rows.len() {
            let k: Vec<Value> = idx.cols.iter().map(|&c| self.rows[r][c]).collect();
            idx.map.entry(k).or_default().push(r as u32);
        }
        idx.built = self.rows.len();
    }

    /// Row ids within `range` exactly equal to `key` (all columns bound).
    /// Fast path over the dedup set when the range covers everything.
    pub fn probe_all_columns(&self, key: &[Value], range: RowRange) -> Vec<u32> {
        if range.start == 0 && range.end as usize >= self.rows.len() {
            return if self.dedup.contains(key) {
                vec![u32::MAX] // sentinel row id; only existence matters
            } else {
                Vec::new()
            };
        }
        let cols: Vec<usize> = (0..self.arity).collect();
        self.probe(&cols, key, range)
    }

    /// All tuples, sorted, for deterministic comparisons in tests.
    pub fn sorted_tuples(&self) -> Vec<Tuple> {
        let mut v = self.rows.clone();
        v.sort();
        v
    }
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        Relation {
            arity: self.arity,
            rows: self.rows.clone(),
            dedup: self.dedup.clone(),
            indexes: RwLock::new(HashMap::new()),
        }
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity && self.dedup == other.dedup
    }
}

impl Eq for Relation {}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn insert_dedups() {
        let mut r = Relation::new(2);
        assert!(r.insert(t(&[1, 2])));
        assert!(!r.insert(t(&[1, 2])));
        assert!(r.insert(t(&[1, 3])));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&t(&[1, 2])));
        assert!(!r.contains(&t(&[9, 9])));
    }

    #[test]
    fn probe_uses_and_extends_index() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[1, 3]));
        r.insert(t(&[2, 3]));
        let hits = r.probe(&[0], &[Value::Int(1)], r.all_rows());
        assert_eq!(hits, vec![0, 1]);
        // Appending after an index exists must extend it.
        r.insert(t(&[1, 9]));
        let hits = r.probe(&[0], &[Value::Int(1)], r.all_rows());
        assert_eq!(hits, vec![0, 1, 3]);
    }

    #[test]
    fn probe_respects_row_range() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[1, 3]));
        r.insert(t(&[1, 4]));
        let delta = RowRange { start: 2, end: 3 };
        let hits = r.probe(&[0], &[Value::Int(1)], delta);
        assert_eq!(hits, vec![2]);
    }

    #[test]
    fn multi_column_probe() {
        let mut r = Relation::new(3);
        r.insert(t(&[1, 2, 3]));
        r.insert(t(&[1, 2, 4]));
        r.insert(t(&[1, 5, 3]));
        let hits = r.probe(&[0, 1], &[Value::Int(1), Value::Int(2)], r.all_rows());
        assert_eq!(hits.len(), 2);
        let hits = r.probe(&[2], &[Value::Int(3)], r.all_rows());
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn iter_range_views() {
        let mut r = Relation::new(1);
        r.insert(t(&[1]));
        r.insert(t(&[2]));
        r.insert(t(&[3]));
        let old = RowRange { start: 0, end: 2 };
        assert_eq!(r.iter_range(old).count(), 2);
        let delta = RowRange { start: 2, end: 3 };
        let vals: Vec<_> = r.iter_range(delta).map(|(_, t)| t[0]).collect();
        assert_eq!(vals, vec![Value::Int(3)]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(t(&[1]));
    }
}
