//! Append-only relations over *flat columnar storage* with lazily built,
//! incrementally extended hash indexes on column subsets.
//!
//! Rows live in one contiguous `Vec<Value>` with an arity stride: row `r`
//! is the slice `data[r * arity .. (r + 1) * arity]`. `Value` is a 16-byte
//! `Copy` enum, so appending a row is a bulk copy into the flat buffer and
//! reading one is slicing — no per-tuple heap allocation anywhere on the
//! fixpoint hot path. Dedup and the column indexes bucket rows by
//! precomputed FxHash (see [`crate::fxhash`]) and verify candidates by
//! comparing the flat slices, so they never own key vectors either.
//!
//! Rows are never *moved*, which makes semi-naive evaluation's
//! old/delta/total views simple row-id ranges: `old = [0, watermark)`,
//! `delta = [watermark, len)`, `total = [0, len)`. Deletion — needed by
//! the incremental maintenance layer's DRed pass — is by tombstone: the
//! row's dedup entry is removed and a dead bit set, so physical row ids
//! stay stable and membership stays correct, while iteration and probes
//! skip dead rows. [`Relation::compact`] rebuilds the flat store to
//! reclaim tombstones; the evaluator itself only ever sees compacted
//! (tombstone-free) relations, so its range views never straddle a
//! dead row.

use crate::fxhash::{hash_slice, FxHashMap, PrehashedMap};
use semrec_datalog::term::Value;
use std::sync::RwLock;

/// An owned database tuple (boundary type: results, test fixtures, I/O).
/// Inside the engine rows are `&[Value]` slices of the flat store.
pub type Tuple = Vec<Value>;

/// A half-open range of row ids, used to express old/delta/total views.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RowRange {
    /// First row id (inclusive).
    pub start: u32,
    /// One past the last row id.
    pub end: u32,
}

impl RowRange {
    /// True if `row` lies in the range.
    pub fn contains(self, row: u32) -> bool {
        self.start <= row && row < self.end
    }

    /// Number of rows in the range.
    pub fn len(self) -> usize {
        (self.end.saturating_sub(self.start)) as usize
    }

    /// True if the range is empty.
    pub fn is_empty(self) -> bool {
        self.start >= self.end
    }

    /// The intersection of two ranges (empty if disjoint).
    pub fn intersect(self, other: RowRange) -> RowRange {
        RowRange {
            start: self.start.max(other.start),
            end: self.end.min(other.end),
        }
    }

    /// Splits the range into `n` near-equal contiguous chunks, dropping
    /// empty ones. Used to data-parallelize a scan across pool workers.
    pub fn split(self, n: usize) -> Vec<RowRange> {
        let n = n.max(1) as u32;
        let len = self.end.saturating_sub(self.start);
        let chunk = len.div_ceil(n).max(1);
        let mut out = Vec::new();
        let mut s = self.start;
        while s < self.end {
            let e = (s + chunk).min(self.end);
            out.push(RowRange { start: s, end: e });
            s = e;
        }
        out
    }
}

/// A hash index on a column subset: bucket rows by the FxHash of their key
/// columns; collisions are resolved by comparing the actual columns.
///
/// Stored boxed in the index cache so that a [`ProbeHandle`] can point at
/// it directly: cache-map rehashes move the box pointer, never the index.
#[derive(Debug)]
struct ColumnIndex {
    cols: Vec<usize>,
    map: PrehashedMap<Vec<u32>>,
    /// Rows `[0, built)` have been added to `map`.
    built: usize,
}

/// A generation-checked raw handle to a current column index, acquired
/// once per task (one read-lock acquisition) and then probed lock-free:
/// [`ProbeHandle::bucket`] returns the borrowed row-id bucket for a key
/// hash, and the caller filters range/tombstone/key-collision lazily at
/// iteration time ([`Relation::probe_hit`]). This is the evaluator's
/// zero-allocation probe path: no per-probe lock, no per-probe `Vec`.
///
/// # Validity
/// The handle is valid only while the relation and the index are not
/// mutated: no row inserts/deletes/compaction, and no index extension.
/// The evaluator guarantees this per round — relations are immutable
/// while tasks run, new rows commit only between rounds, and
/// `ensure_index` on an already-current index does not touch bucket
/// storage. [`ProbeHandle::generation`] records the row count at
/// acquisition so callers can `debug_assert` currency before use.
#[derive(Clone, Copy, Debug)]
pub struct ProbeHandle {
    idx: *const ColumnIndex,
    built: usize,
}

impl ProbeHandle {
    /// Physical row count the index covered when the handle was taken.
    pub fn generation(&self) -> usize {
        self.built
    }

    /// The candidate row-id bucket for a key hash (empty slice if none).
    /// Candidates still need [`Relation::probe_hit`] filtering.
    ///
    /// # Safety
    /// The relation and index must not have been mutated since
    /// [`Relation::probe_handle`] returned this handle (see type docs).
    #[inline]
    pub unsafe fn bucket(&self, key_hash: u64) -> &[u32] {
        // SAFETY: caller guarantees the index (and the cache map slot
        // holding its box) outlives and is not mutated during this call.
        match unsafe { &*self.idx }.map.get(&key_hash) {
            Some(rows) => rows,
            None => &[],
        }
    }
}

/// An append-only relation of fixed arity with set semantics over flat
/// columnar storage.
///
/// The lazy index cache sits behind a `std::sync::RwLock`, so `&Relation`
/// can be shared across threads during a (read-only) evaluation round —
/// see [`crate::eval::Evaluator::with_parallelism`]. Call
/// [`Relation::ensure_index`] before a parallel phase so the workers only
/// ever take the shared read lock.
#[derive(Debug)]
pub struct Relation {
    arity: usize,
    /// Flat row storage, `nrows * arity` values.
    data: Vec<Value>,
    nrows: usize,
    /// Row-content hash → candidate row ids (set semantics). Holds only
    /// *live* rows: deleting a row removes its entry here first.
    dedup: PrehashedMap<Vec<u32>>,
    /// Tombstone bitset over physical rows, one bit per row, lazily
    /// allocated on first delete. Empty ⇔ no row was ever deleted since
    /// the last compaction.
    dead: Vec<u64>,
    /// Number of set bits in `dead`.
    ndead: usize,
    indexes: RwLock<FxHashMap<Vec<usize>, Box<ColumnIndex>>>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            data: Vec::new(),
            nrows: 0,
            dedup: PrehashedMap::default(),
            dead: Vec::new(),
            ndead: 0,
            indexes: RwLock::new(FxHashMap::default()),
        }
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of live (distinct) tuples.
    pub fn len(&self) -> usize {
        self.nrows - self.ndead
    }

    /// True if the relation holds no live tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of physical rows in the flat store, including tombstoned
    /// ones. Row-range views are expressed over physical ids, so marks
    /// and watermarks must use this, not [`Relation::len`]. Equal to
    /// `len()` whenever the relation is compacted.
    pub fn physical_rows(&self) -> usize {
        self.nrows
    }

    /// True if some rows are tombstoned (delete since last compaction).
    pub fn has_tombstones(&self) -> bool {
        self.ndead != 0
    }

    /// True if physical row `r` is tombstoned.
    #[inline]
    pub fn is_dead(&self, r: u32) -> bool {
        self.ndead != 0
            && self
                .dead
                .get(r as usize / 64)
                .is_some_and(|w| w & (1u64 << (r as usize % 64)) != 0)
    }

    /// The full (physical) row range.
    pub fn all_rows(&self) -> RowRange {
        RowRange {
            start: 0,
            end: self.nrows as u32,
        }
    }

    /// Inserts a tuple; returns `true` if it was new. Accepts any slice of
    /// values (owned `Tuple`s and flat-store row slices alike) and copies
    /// it into the flat buffer — the caller keeps ownership.
    ///
    /// # Panics
    /// Panics if the tuple arity does not match the relation arity.
    pub fn insert(&mut self, t: impl AsRef<[Value]>) -> bool {
        let t = t.as_ref();
        self.insert_hashed(t, hash_slice(t))
    }

    /// [`Relation::insert`] with the row-content hash already computed
    /// (the fixpoint loop hashes each derived tuple once, at derivation
    /// time, and reuses the hash for shard routing and insertion).
    pub fn insert_hashed(&mut self, t: &[Value], h: u64) -> bool {
        assert_eq!(t.len(), self.arity, "tuple arity mismatch");
        debug_assert_eq!(h, hash_slice(t), "stale row hash");
        let arity = self.arity;
        let data = &self.data;
        let bucket = self.dedup.entry(h).or_default();
        if bucket
            .iter()
            .any(|&r| &data[r as usize * arity..(r as usize + 1) * arity] == t)
        {
            return false;
        }
        bucket.push(self.nrows as u32);
        self.data.extend_from_slice(t);
        self.nrows += 1;
        true
    }

    /// Membership test.
    pub fn contains(&self, t: &[Value]) -> bool {
        self.contains_hashed(t, hash_slice(t))
    }

    /// [`Relation::contains`] with the row hash already computed. Takes
    /// `&self` only and touches nothing but the (round-immutable) dedup
    /// buckets, so shard-merge workers can safely call it concurrently
    /// while the control thread is blocked on the merge phase.
    pub fn contains_hashed(&self, t: &[Value], h: u64) -> bool {
        if t.len() != self.arity {
            return false;
        }
        debug_assert_eq!(h, hash_slice(t), "stale row hash");
        match self.dedup.get(&h) {
            None => false,
            Some(bucket) => bucket.iter().any(|&r| self.row(r) == t),
        }
    }

    /// Deletes a tuple by tombstoning its physical row; returns `true`
    /// if the tuple was present (and live). The flat store keeps the
    /// row's bytes — only the dedup entry goes away and the dead bit is
    /// set — so earlier row ids held by callers stay valid. A later
    /// [`Relation::insert`] of an equal tuple appends a *fresh* physical
    /// row; set semantics hold over live rows throughout.
    pub fn delete(&mut self, t: &[Value]) -> bool {
        self.delete_hashed(t, hash_slice(t))
    }

    /// [`Relation::delete`] with the row-content hash already computed.
    pub fn delete_hashed(&mut self, t: &[Value], h: u64) -> bool {
        if t.len() != self.arity {
            return false;
        }
        debug_assert_eq!(h, hash_slice(t), "stale row hash");
        let arity = self.arity;
        let data = &self.data;
        let Some(bucket) = self.dedup.get_mut(&h) else {
            return false;
        };
        let Some(pos) = bucket
            .iter()
            .position(|&r| &data[r as usize * arity..(r as usize + 1) * arity] == t)
        else {
            return false;
        };
        let r = bucket.swap_remove(pos) as usize;
        if bucket.is_empty() {
            self.dedup.remove(&h);
        }
        if self.dead.len() * 64 < self.nrows {
            self.dead.resize(self.nrows.div_ceil(64), 0);
        }
        self.dead[r / 64] |= 1u64 << (r % 64);
        self.ndead += 1;
        true
    }

    /// Removes every row with physical id `keep` and above, exactly
    /// undoing a run of appends: the rows' dedup entries are unhashed,
    /// the flat store and tombstone bitset are truncated, and the column
    /// indexes are dropped (they may cache the removed ids). This is the
    /// incremental layer's cheap rollback — O(rows removed), not
    /// O(relation) — for transactions that only appended.
    pub fn truncate(&mut self, keep: usize) {
        if keep >= self.nrows {
            return;
        }
        for r in keep..self.nrows {
            let h = hash_slice(&self.data[r * self.arity..(r + 1) * self.arity]);
            if let Some(bucket) = self.dedup.get_mut(&h) {
                if let Some(pos) = bucket.iter().position(|&id| id == r as u32) {
                    bucket.swap_remove(pos);
                }
                if bucket.is_empty() {
                    self.dedup.remove(&h);
                }
            }
        }
        self.data.truncate(keep * self.arity);
        self.nrows = keep;
        self.dead.truncate(keep.div_ceil(64));
        if !keep.is_multiple_of(64) {
            if let Some(last) = self.dead.last_mut() {
                *last &= (1u64 << (keep % 64)) - 1;
            }
        }
        self.ndead = self.dead.iter().map(|w| w.count_ones() as usize).sum();
        self.indexes.write().expect("index lock poisoned").clear();
    }

    /// Rebuilds the flat store without tombstoned rows, renumbering the
    /// surviving rows in order and rebuilding the dedup map. Column
    /// indexes are dropped (they cache stale row ids) and rebuilt lazily
    /// on the next probe. No-op when there are no tombstones.
    pub fn compact(&mut self) {
        if self.ndead == 0 {
            return;
        }
        let mut data = Vec::with_capacity((self.nrows - self.ndead) * self.arity);
        let mut dedup = PrehashedMap::<Vec<u32>>::default();
        let mut next = 0u32;
        for r in 0..self.nrows as u32 {
            if self.is_dead(r) {
                continue;
            }
            let row = self.row(r);
            data.extend_from_slice(row);
            dedup.entry(hash_slice(row)).or_default().push(next);
            next += 1;
        }
        self.nrows = next as usize;
        self.data = data;
        self.dedup = dedup;
        self.dead.clear();
        self.ndead = 0;
        self.indexes.write().expect("index lock poisoned").clear();
    }

    /// Bulk-appends a pre-deduplicated segment of new rows: `data` holds
    /// `hashes.len()` rows in flat layout and `hashes[i]` is the content
    /// hash of row `i`. This is the control thread's shard-concat path:
    /// the merge phase already guaranteed every row is absent from the
    /// relation and the rows are pairwise distinct, so committing is one
    /// `memcpy` plus a dedup-bucket push per row — no hashing, no
    /// comparisons.
    ///
    /// Returns the number of rows appended.
    ///
    /// # Panics
    /// Panics if `data` is not `hashes.len() * arity` values long. With
    /// debug assertions, also panics if a row was already present (a
    /// violated merge-phase contract would silently corrupt set
    /// semantics otherwise).
    pub fn commit_new_rows(&mut self, data: &[Value], hashes: &[u64]) -> usize {
        assert_eq!(
            data.len(),
            hashes.len() * self.arity,
            "segment length does not match hash count × arity"
        );
        for (i, &h) in hashes.iter().enumerate() {
            let row = &data[i * self.arity..(i + 1) * self.arity];
            debug_assert!(
                !self.contains_hashed(row, h),
                "commit_new_rows given a duplicate row"
            );
            self.dedup.entry(h).or_default().push(self.nrows as u32);
            self.data.extend_from_slice(row);
            self.nrows += 1;
        }
        hashes.len()
    }

    /// The tuple at `row`, as a slice into the flat store.
    pub fn row(&self, row: u32) -> &[Value] {
        let r = row as usize;
        &self.data[r * self.arity..(r + 1) * self.arity]
    }

    /// Iterates over all live tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> {
        (0..self.nrows as u32)
            .filter(move |&r| !self.is_dead(r))
            .map(move |r| self.row(r))
    }

    /// Iterates over the live tuples of a row range.
    pub fn iter_range(&self, range: RowRange) -> impl Iterator<Item = (u32, &[Value])> {
        (range.start..range.end.min(self.nrows as u32))
            .filter(move |&r| !self.is_dead(r))
            .map(move |r| (r, self.row(r)))
    }

    /// Row ids within `range` whose columns `cols` equal `key`, using (and
    /// if necessary extending) the hash index on `cols`. Convenience
    /// wrapper over [`Relation::probe_into`]; the evaluator's hot path
    /// uses [`Relation::probe_handle`] + [`ProbeHandle::bucket`] instead
    /// to avoid the per-probe allocation.
    ///
    /// Probing with an empty `cols` is an error — use [`Relation::iter_range`].
    pub fn probe(&self, cols: &[usize], key: &[Value], range: RowRange) -> Vec<u32> {
        let mut out = Vec::new();
        self.probe_into(cols, key, range, &mut out);
        out
    }

    /// [`Relation::probe`] writing the hits into a caller-owned buffer
    /// (cleared first), so repeat probes reuse one allocation. On an
    /// index miss the build-then-probe happens under a single write-lock
    /// acquisition — no drop-read/take-write/re-take-read dance.
    pub fn probe_into(&self, cols: &[usize], key: &[Value], range: RowRange, out: &mut Vec<u32>) {
        debug_assert!(!cols.is_empty(), "probe with no bound columns");
        debug_assert_eq!(cols.len(), key.len());
        out.clear();
        // Fast path: the index exists and is current — shared read lock.
        {
            let indexes = self.indexes.read().expect("index lock poisoned");
            if let Some(idx) = indexes.get(cols) {
                if idx.built == self.nrows {
                    self.index_hits_into(idx, key, range, out);
                    return;
                }
            }
        }
        // Miss: build (or extend) and probe under one write acquisition.
        let mut indexes = self.indexes.write().expect("index lock poisoned");
        let idx = Self::entry_index(&mut indexes, cols);
        self.extend_index(idx);
        self.index_hits_into(idx, key, range, out);
    }

    fn index_hits_into(
        &self,
        idx: &ColumnIndex,
        key: &[Value],
        range: RowRange,
        out: &mut Vec<u32>,
    ) {
        if let Some(rows) = idx.map.get(&hash_slice(key)) {
            out.extend(
                rows.iter()
                    .copied()
                    .filter(|&r| self.probe_hit(r, &idx.cols, key, range)),
            );
        }
    }

    /// The lazy per-candidate filter matching what an eager probe would
    /// have applied: candidate `r` is a real hit iff it lies in `range`,
    /// is live, and its `cols` columns equal `key` (hash-collision
    /// check). Used by [`ProbeHandle`] consumers iterating borrowed
    /// buckets.
    #[inline]
    pub fn probe_hit(&self, r: u32, cols: &[usize], key: &[Value], range: RowRange) -> bool {
        range.contains(r) && !self.is_dead(r) && {
            let row = self.row(r);
            cols.iter().zip(key).all(|(&c, k)| row[c] == *k)
        }
    }

    fn entry_index<'a>(
        indexes: &'a mut FxHashMap<Vec<usize>, Box<ColumnIndex>>,
        cols: &[usize],
    ) -> &'a mut ColumnIndex {
        indexes.entry(cols.to_vec()).or_insert_with(|| {
            Box::new(ColumnIndex {
                cols: cols.to_vec(),
                map: PrehashedMap::default(),
                built: 0,
            })
        })
    }

    fn extend_index(&self, idx: &mut ColumnIndex) {
        let mut key: Vec<Value> = Vec::with_capacity(idx.cols.len());
        for r in idx.built..self.nrows {
            let row = &self.data[r * self.arity..(r + 1) * self.arity];
            key.clear();
            key.extend(idx.cols.iter().map(|&c| row[c]));
            idx.map.entry(hash_slice(&key)).or_default().push(r as u32);
        }
        idx.built = self.nrows;
    }

    /// Builds (or extends) the hash index on `cols` so that subsequent
    /// probes only take the shared read lock. Called automatically by
    /// [`Relation::probe_into`]; call it eagerly before sharing the
    /// relation across threads or taking a [`ProbeHandle`].
    pub fn ensure_index(&self, cols: &[usize]) {
        let mut indexes = self.indexes.write().expect("index lock poisoned");
        let idx = Self::entry_index(&mut indexes, cols);
        self.extend_index(idx);
    }

    /// A raw borrowed handle to the current index on `cols`, or `None`
    /// if the index is missing or stale (call [`Relation::ensure_index`]
    /// and retry). One shared-lock acquisition; see [`ProbeHandle`] for
    /// the validity contract.
    pub fn probe_handle(&self, cols: &[usize]) -> Option<ProbeHandle> {
        let indexes = self.indexes.read().expect("index lock poisoned");
        let idx = indexes.get(cols)?;
        if idx.built != self.nrows {
            return None;
        }
        Some(ProbeHandle {
            idx: &**idx as *const ColumnIndex,
            built: idx.built,
        })
    }

    /// Row ids within `range` exactly equal to `key` (all columns bound).
    /// Fast path over the dedup buckets when the range covers everything.
    pub fn probe_all_columns(&self, key: &[Value], range: RowRange) -> Vec<u32> {
        if range.start == 0 && range.end as usize >= self.nrows {
            return if self.contains(key) {
                vec![u32::MAX] // sentinel row id; only existence matters
            } else {
                Vec::new()
            };
        }
        // Partial range: dedup buckets already map content hash → row ids.
        match self.dedup.get(&hash_slice(key)) {
            None => Vec::new(),
            Some(bucket) => bucket
                .iter()
                .copied()
                .filter(|&r| range.contains(r) && self.row(r) == key)
                .collect(),
        }
    }

    /// Existence test for an exact tuple within a row range, iterating
    /// the borrowed dedup bucket directly — the allocation-free form of
    /// [`Relation::probe_all_columns`] used by negation steps. Dedup
    /// buckets hold only live rows, so no tombstone check is needed.
    pub fn contains_in_range(&self, key: &[Value], h: u64, range: RowRange) -> bool {
        if key.len() != self.arity {
            return false;
        }
        debug_assert_eq!(h, hash_slice(key), "stale key hash");
        if range.start == 0 && range.end as usize >= self.nrows {
            return self.contains_hashed(key, h);
        }
        match self.dedup.get(&h) {
            None => false,
            Some(bucket) => bucket
                .iter()
                .any(|&r| range.contains(r) && self.row(r) == key),
        }
    }

    /// All tuples, sorted, for deterministic comparisons in tests.
    pub fn sorted_tuples(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.iter().map(<[Value]>::to_vec).collect();
        v.sort();
        v
    }

    /// Estimated resident bytes of this relation: the flat store's
    /// capacity plus the dedup map's buckets and row-id entries. Column
    /// indexes are excluded — they are derived caches, reconstructible
    /// at any time, and counting them would make the memory budget
    /// depend on which plans happened to probe. Used by the evaluator's
    /// `max_resident_bytes` budget check; an estimate, not an allocator
    /// census.
    pub fn estimated_bytes(&self) -> u64 {
        let data = self.data.capacity() * std::mem::size_of::<Value>();
        // Per dedup bucket: one (u64 hash, Vec header) map slot; per
        // row: one u32 id inside some bucket.
        let dedup = self.dedup.len() * (8 + std::mem::size_of::<Vec<u32>>())
            + (self.nrows - self.ndead) * std::mem::size_of::<u32>();
        let tombstones = self.dead.capacity() * std::mem::size_of::<u64>();
        (data + dedup + tombstones) as u64
    }

    /// Verifies the relation's structural invariants, returning a
    /// description of the first violation: flat storage sized exactly
    /// `nrows × arity`, every dedup entry pointing at an in-bounds *live*
    /// row whose content hash matches its bucket, exactly one dedup
    /// entry per live row, no duplicate rows within a bucket, and the
    /// tombstone population count matching the bitset. Budget, cancel,
    /// and panic exits must leave every committed relation passing this
    /// check — `tests/governance.rs` asserts it after every forced
    /// abort.
    pub fn check_invariant(&self) -> Result<(), String> {
        if self.data.len() != self.nrows * self.arity {
            return Err(format!(
                "flat store holds {} values, want {} rows × {} arity",
                self.data.len(),
                self.nrows,
                self.arity
            ));
        }
        let popcount: usize = self
            .dead
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum::<usize>();
        if popcount != self.ndead {
            return Err(format!(
                "tombstone bitset holds {popcount} bits for ndead = {}",
                self.ndead
            ));
        }
        if self.ndead > self.nrows {
            return Err(format!(
                "more tombstones ({}) than rows ({})",
                self.ndead, self.nrows
            ));
        }
        let mut entries = 0usize;
        for (&h, bucket) in self.dedup.iter() {
            if bucket.is_empty() {
                return Err(format!("empty dedup bucket left behind for hash {h:#x}"));
            }
            for (i, &r) in bucket.iter().enumerate() {
                if r as usize >= self.nrows {
                    return Err(format!("dedup entry {r} out of bounds ({})", self.nrows));
                }
                if self.is_dead(r) {
                    return Err(format!("dedup entry {r} points at a tombstoned row"));
                }
                let row = self.row(r);
                if hash_slice(row) != h {
                    return Err(format!("row {r} filed under wrong hash bucket"));
                }
                if bucket[..i].iter().any(|&q| self.row(q) == row) {
                    return Err(format!("row {r} duplicates an earlier row"));
                }
                entries += 1;
            }
        }
        if entries != self.nrows - self.ndead {
            return Err(format!(
                "dedup map holds {entries} entries for {} live rows",
                self.nrows - self.ndead
            ));
        }
        Ok(())
    }
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        Relation {
            arity: self.arity,
            data: self.data.clone(),
            nrows: self.nrows,
            dedup: self.dedup.clone(),
            dead: self.dead.clone(),
            ndead: self.ndead,
            indexes: RwLock::new(FxHashMap::default()),
        }
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity
            && self.len() == other.len()
            && self.iter().all(|row| other.contains(row))
    }
}

impl Eq for Relation {}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn insert_dedups() {
        let mut r = Relation::new(2);
        assert!(r.insert(t(&[1, 2])));
        assert!(!r.insert(t(&[1, 2])));
        assert!(r.insert(t(&[1, 3])));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&t(&[1, 2])));
        assert!(!r.contains(&t(&[9, 9])));
    }

    #[test]
    fn flat_storage_layout_is_contiguous() {
        let mut r = Relation::new(3);
        r.insert(t(&[1, 2, 3]));
        r.insert(t(&[4, 5, 6]));
        assert_eq!(r.row(0), &t(&[1, 2, 3])[..]);
        assert_eq!(r.row(1), &t(&[4, 5, 6])[..]);
        // Appending does not disturb earlier row slices' contents.
        r.insert(t(&[7, 8, 9]));
        assert_eq!(r.row(0), &t(&[1, 2, 3])[..]);
        assert_eq!(r.row(2), &t(&[7, 8, 9])[..]);
    }

    #[test]
    fn insert_accepts_borrowed_row_slices() {
        let mut a = Relation::new(2);
        a.insert(t(&[1, 2]));
        let row: Tuple = a.row(0).to_vec();
        let mut b = Relation::new(2);
        assert!(b.insert(&row[..]));
        assert!(b.contains(&row));
    }

    #[test]
    fn probe_uses_and_extends_index() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[1, 3]));
        r.insert(t(&[2, 3]));
        let hits = r.probe(&[0], &[Value::Int(1)], r.all_rows());
        assert_eq!(hits, vec![0, 1]);
        // Appending after an index exists must extend it.
        r.insert(t(&[1, 9]));
        let hits = r.probe(&[0], &[Value::Int(1)], r.all_rows());
        assert_eq!(hits, vec![0, 1, 3]);
    }

    #[test]
    fn probe_respects_row_range() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[1, 3]));
        r.insert(t(&[1, 4]));
        let delta = RowRange { start: 2, end: 3 };
        let hits = r.probe(&[0], &[Value::Int(1)], delta);
        assert_eq!(hits, vec![2]);
    }

    #[test]
    fn multi_column_probe() {
        let mut r = Relation::new(3);
        r.insert(t(&[1, 2, 3]));
        r.insert(t(&[1, 2, 4]));
        r.insert(t(&[1, 5, 3]));
        let hits = r.probe(&[0, 1], &[Value::Int(1), Value::Int(2)], r.all_rows());
        assert_eq!(hits.len(), 2);
        let hits = r.probe(&[2], &[Value::Int(3)], r.all_rows());
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn probe_all_columns_partial_range() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[3, 4]));
        r.insert(t(&[5, 6]));
        let delta = RowRange { start: 1, end: 3 };
        assert_eq!(r.probe_all_columns(&t(&[3, 4]), delta), vec![1]);
        assert!(r.probe_all_columns(&t(&[1, 2]), delta).is_empty());
        // Full range uses the existence fast path.
        assert!(!r.probe_all_columns(&t(&[1, 2]), r.all_rows()).is_empty());
    }

    #[test]
    fn iter_range_views() {
        let mut r = Relation::new(1);
        r.insert(t(&[1]));
        r.insert(t(&[2]));
        r.insert(t(&[3]));
        let old = RowRange { start: 0, end: 2 };
        assert_eq!(r.iter_range(old).count(), 2);
        let delta = RowRange { start: 2, end: 3 };
        let vals: Vec<_> = r.iter_range(delta).map(|(_, t)| t[0]).collect();
        assert_eq!(vals, vec![Value::Int(3)]);
    }

    #[test]
    fn row_range_split_covers_exactly() {
        let range = RowRange { start: 3, end: 100 };
        for n in [1usize, 2, 3, 7, 64, 200] {
            let parts = range.split(n);
            assert!(parts.len() <= n.max(1));
            assert_eq!(parts[0].start, 3);
            assert_eq!(parts.last().unwrap().end, 100);
            for w in parts.windows(2) {
                assert_eq!(w[0].end, w[1].start, "chunks must tile");
            }
            assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), range.len());
        }
        assert!(RowRange { start: 5, end: 5 }.split(4).is_empty());
    }

    #[test]
    fn row_range_intersect() {
        let a = RowRange { start: 0, end: 10 };
        let b = RowRange { start: 6, end: 20 };
        assert_eq!(a.intersect(b), RowRange { start: 6, end: 10 });
        let c = RowRange { start: 12, end: 14 };
        assert!(a.intersect(c).is_empty());
    }

    #[test]
    fn equality_is_set_semantics() {
        let mut a = Relation::new(2);
        let mut b = Relation::new(2);
        a.insert(t(&[1, 2]));
        a.insert(t(&[3, 4]));
        b.insert(t(&[3, 4]));
        b.insert(t(&[1, 2]));
        assert_eq!(a, b); // insertion order does not matter
        b.insert(t(&[5, 6]));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(t(&[1]));
    }

    #[test]
    fn delete_tombstones_and_membership() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[3, 4]));
        r.insert(t(&[5, 6]));
        assert!(r.delete(&t(&[3, 4])));
        assert!(!r.delete(&t(&[3, 4])), "double delete must be a no-op");
        assert!(!r.delete(&t(&[9, 9])), "deleting an absent row is false");
        assert_eq!(r.len(), 2);
        assert_eq!(r.physical_rows(), 3);
        assert!(r.has_tombstones());
        assert!(!r.contains(&t(&[3, 4])));
        assert!(r.contains(&t(&[1, 2])));
        assert!(r.contains(&t(&[5, 6])));
        let live: Vec<Tuple> = r.iter().map(<[Value]>::to_vec).collect();
        assert_eq!(live, vec![t(&[1, 2]), t(&[5, 6])]);
        r.check_invariant().unwrap();
    }

    #[test]
    fn truncate_undoes_appends_and_probes_stay_consistent() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[3, 4]));
        // Warm an index, then append past the watermark.
        assert_eq!(r.probe(&[0], &[Value::Int(1)], r.all_rows()).len(), 1);
        let mark = r.physical_rows();
        r.insert(t(&[5, 6]));
        r.insert(t(&[7, 8]));
        r.truncate(mark);
        assert_eq!(r.len(), 2);
        assert_eq!(r.physical_rows(), 2);
        assert!(!r.contains(&t(&[5, 6])));
        assert!(r.contains(&t(&[1, 2])));
        r.check_invariant().unwrap();
        // The removed tuple can be re-inserted as a fresh row and probed.
        assert!(r.insert(t(&[5, 6])));
        assert_eq!(r.probe(&[0], &[Value::Int(5)], r.all_rows()).len(), 1);
        assert_eq!(r.sorted_tuples(), vec![t(&[1, 2]), t(&[3, 4]), t(&[5, 6])]);
        r.check_invariant().unwrap();
        // Truncating to the current size (or past it) is a no-op.
        r.truncate(r.physical_rows());
        assert_eq!(r.len(), 3);
        r.check_invariant().unwrap();
    }

    #[test]
    fn truncate_with_tombstones_below_keep_preserves_them() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[3, 4]));
        assert!(r.delete(&t(&[1, 2])));
        let mark = r.physical_rows();
        r.insert(t(&[5, 6]));
        r.truncate(mark);
        assert_eq!(r.len(), 1);
        assert_eq!(r.physical_rows(), 2);
        assert!(r.has_tombstones());
        assert_eq!(r.sorted_tuples(), vec![t(&[3, 4])]);
        r.check_invariant().unwrap();
    }

    #[test]
    fn insert_after_delete_of_equal_row_does_not_duplicate() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[3, 4]));
        assert!(r.delete(&t(&[1, 2])));
        // Re-inserting the equal row appends a fresh physical row; the
        // old one stays dead, so the live set holds exactly one copy.
        assert!(r.insert(t(&[1, 2])), "row was deleted, reinsert is new");
        assert!(!r.insert(t(&[1, 2])), "second reinsert must dedup");
        assert_eq!(r.len(), 2);
        assert_eq!(r.physical_rows(), 3);
        assert_eq!(r.sorted_tuples(), vec![t(&[1, 2]), t(&[3, 4])]);
        r.check_invariant().unwrap();
        // Compaction reclaims the tombstone and keeps the same live set.
        r.compact();
        assert_eq!(r.len(), 2);
        assert_eq!(r.physical_rows(), 2);
        assert!(!r.has_tombstones());
        assert_eq!(r.sorted_tuples(), vec![t(&[1, 2]), t(&[3, 4])]);
        r.check_invariant().unwrap();
    }

    #[test]
    fn probes_skip_tombstoned_rows() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[1, 3]));
        r.insert(t(&[1, 4]));
        // Build the column index first, then delete: index_hits must
        // filter the dead row id even though the index still lists it.
        let hits = r.probe(&[0], &[Value::Int(1)], r.all_rows());
        assert_eq!(hits, vec![0, 1, 2]);
        assert!(r.delete(&t(&[1, 3])));
        let hits = r.probe(&[0], &[Value::Int(1)], r.all_rows());
        assert_eq!(hits, vec![0, 2]);
        // Dedup-backed exact probe also skips the dead row.
        let range = RowRange { start: 0, end: 2 };
        assert!(r.probe_all_columns(&t(&[1, 3]), range).is_empty());
        assert!(r.probe_all_columns(&t(&[1, 3]), r.all_rows()).is_empty());
        r.check_invariant().unwrap();
    }

    #[test]
    fn compact_after_deletes_keeps_dedup_and_index_consistent() {
        let mut r = Relation::new(2);
        for i in 0..100i64 {
            r.insert(t(&[i % 10, i]));
        }
        for i in (0..100i64).step_by(3) {
            assert!(r.delete(&t(&[i % 10, i])));
        }
        let before = r.sorted_tuples();
        r.check_invariant().unwrap();
        r.compact();
        r.check_invariant().unwrap();
        assert_eq!(r.sorted_tuples(), before);
        assert_eq!(r.physical_rows(), r.len());
        // Post-compaction probes rebuild the index over renumbered rows.
        for t_ in &before {
            assert!(r.contains(t_));
            assert!(!r.probe(&[0, 1], t_, r.all_rows()).is_empty());
        }
        assert!(!r.contains(&t(&[0, 0])));
        // Deleted rows must not resurface through any probe path.
        assert!(r.probe(&[1], &[Value::Int(0)], r.all_rows()).is_empty());
    }

    #[test]
    fn clone_carries_tombstones() {
        let mut r = Relation::new(1);
        r.insert(t(&[1]));
        r.insert(t(&[2]));
        r.delete(&t(&[1]));
        let c = r.clone();
        assert_eq!(c.len(), 1);
        assert!(!c.contains(&t(&[1])));
        assert_eq!(r, c);
        c.check_invariant().unwrap();
    }

    #[test]
    fn probe_into_reuses_buffer_and_matches_probe() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[1, 3]));
        r.insert(t(&[2, 3]));
        let mut buf = Vec::new();
        // First call hits the miss path (build + probe under one write
        // lock); the second reuses the warm index and the same buffer.
        r.probe_into(&[0], &[Value::Int(1)], r.all_rows(), &mut buf);
        assert_eq!(buf, vec![0, 1]);
        r.probe_into(&[0], &[Value::Int(2)], r.all_rows(), &mut buf);
        assert_eq!(buf, vec![2]);
        assert_eq!(buf, r.probe(&[0], &[Value::Int(2)], r.all_rows()));
    }

    #[test]
    fn probe_handle_buckets_filter_lazily() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[1, 3]));
        r.insert(t(&[2, 3]));
        assert!(r.probe_handle(&[0]).is_none(), "no index built yet");
        r.ensure_index(&[0]);
        let h = r.probe_handle(&[0]).expect("index is current");
        assert_eq!(h.generation(), 3);
        let key = [Value::Int(1)];
        let bucket = unsafe { h.bucket(hash_slice(&key)) };
        let hits: Vec<u32> = bucket
            .iter()
            .copied()
            .filter(|&row| r.probe_hit(row, &[0], &key, r.all_rows()))
            .collect();
        assert_eq!(hits, vec![0, 1]);
        // Range and tombstone filtering happen at iteration time.
        let delta = RowRange { start: 1, end: 3 };
        let hits: Vec<u32> = bucket
            .iter()
            .copied()
            .filter(|&row| r.probe_hit(row, &[0], &key, delta))
            .collect();
        assert_eq!(hits, vec![1]);
        let _ = h;
        // Appending makes handles unavailable until re-ensured.
        r.insert(t(&[1, 9]));
        assert!(r.probe_handle(&[0]).is_none(), "index went stale");
        r.ensure_index(&[0]);
        assert!(r.probe_handle(&[0]).is_some());
    }

    #[test]
    fn contains_in_range_matches_probe_all_columns() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[3, 4]));
        r.insert(t(&[5, 6]));
        let delta = RowRange { start: 1, end: 3 };
        let h = |t_: &Tuple| crate::fxhash::hash_slice(t_);
        assert!(r.contains_in_range(&t(&[3, 4]), h(&t(&[3, 4])), delta));
        assert!(!r.contains_in_range(&t(&[1, 2]), h(&t(&[1, 2])), delta));
        assert!(r.contains_in_range(&t(&[1, 2]), h(&t(&[1, 2])), r.all_rows()));
        // Deleted rows never resurface.
        r.delete(&t(&[3, 4]));
        assert!(!r.contains_in_range(&t(&[3, 4]), h(&t(&[3, 4])), delta));
    }

    #[test]
    fn equality_ignores_tombstones() {
        let mut a = Relation::new(1);
        a.insert(t(&[1]));
        a.insert(t(&[2]));
        a.delete(&t(&[2]));
        let mut b = Relation::new(1);
        b.insert(t(&[1]));
        assert_eq!(a, b);
        a.compact();
        assert_eq!(a, b);
    }
}
