//! Append-only relations over *flat columnar storage* with lazily built,
//! incrementally extended hash indexes on column subsets.
//!
//! Rows live in one contiguous `Vec<Value>` with an arity stride: row `r`
//! is the slice `data[r * arity .. (r + 1) * arity]`. `Value` is a 16-byte
//! `Copy` enum, so appending a row is a bulk copy into the flat buffer and
//! reading one is slicing — no per-tuple heap allocation anywhere on the
//! fixpoint hot path. Dedup is a flat fingerprinted open-addressing
//! table over precomputed FxHash (see [`crate::fxhash`]) and the column
//! indexes dictionary-encode key groups as dense row-id runs; both
//! verify candidates by comparing the flat slices, so they never own
//! key vectors either.
//!
//! Rows are never *moved*, which makes semi-naive evaluation's
//! old/delta/total views simple row-id ranges: `old = [0, watermark)`,
//! `delta = [watermark, len)`, `total = [0, len)`. Deletion — needed by
//! the incremental maintenance layer's DRed pass — is by tombstone: the
//! row's dedup entry is removed and a dead bit set, so physical row ids
//! stay stable and membership stays correct, while iteration and probes
//! skip dead rows. [`Relation::compact`] rebuilds the flat store to
//! reclaim tombstones; the evaluator itself only ever sees compacted
//! (tombstone-free) relations, so its range views never straddle a
//! dead row.

use crate::fxhash::{hash_slice, FxHashMap};
use semrec_datalog::term::Value;
use std::sync::RwLock;

/// An owned database tuple (boundary type: results, test fixtures, I/O).
/// Inside the engine rows are `&[Value]` slices of the flat store.
pub type Tuple = Vec<Value>;

/// A half-open range of row ids, used to express old/delta/total views.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RowRange {
    /// First row id (inclusive).
    pub start: u32,
    /// One past the last row id.
    pub end: u32,
}

impl RowRange {
    /// True if `row` lies in the range.
    pub fn contains(self, row: u32) -> bool {
        self.start <= row && row < self.end
    }

    /// Number of rows in the range.
    pub fn len(self) -> usize {
        (self.end.saturating_sub(self.start)) as usize
    }

    /// True if the range is empty.
    pub fn is_empty(self) -> bool {
        self.start >= self.end
    }

    /// The intersection of two ranges (empty if disjoint).
    pub fn intersect(self, other: RowRange) -> RowRange {
        RowRange {
            start: self.start.max(other.start),
            end: self.end.min(other.end),
        }
    }

    /// Splits the range into `n` near-equal contiguous chunks, dropping
    /// empty ones. Used to data-parallelize a scan across pool workers.
    pub fn split(self, n: usize) -> Vec<RowRange> {
        let n = n.max(1) as u32;
        let len = self.end.saturating_sub(self.start);
        let chunk = len.div_ceil(n).max(1);
        let mut out = Vec::new();
        let mut s = self.start;
        while s < self.end {
            let e = (s + chunk).min(self.end);
            out.push(RowRange { start: s, end: e });
            s = e;
        }
        out
    }
}

/// Empty slot marker in [`RowSet`] and [`CodeMap`] (the slot's low
/// half).
const EMPTY: u32 = u32::MAX;
/// Deleted-slot marker in [`RowSet`] (the slot's id half): does not stop
/// a probe walk, may be reused by a later insert.
const TOMB: u32 = u32::MAX - 1;
/// Mask selecting the fingerprint half of a [`RowSet`] slot: the high 32
/// bits of the row-content hash (the low bits pick the probe start, so
/// the halves are independent).
const FP_MASK: u64 = 0xFFFF_FFFF_0000_0000;

/// The relation's set-semantics membership structure: a flat
/// open-addressing table probed linearly from a row-content hash. Each
/// slot packs a physical row id (low half) with the hash's high 32 bits
/// as a fingerprint (high half), so a probe step decides
/// almost-certainly-equal/unequal from the slot line alone — no
/// dependent load of a hash column — and only fingerprint matches touch
/// the flat row store to verify by content. Probes therefore touch one
/// predictable cache line per step, and the drain loop can
/// software-prefetch that line for a whole batch of pending rows before
/// walking any of them. A std `HashMap` keeps its control bytes and
/// entries behind an opaque allocation, which makes that batching
/// impossible; on the insert-heavy fixpoint drain the prefetched flat
/// table is ~2x faster.
#[derive(Debug, Clone, Default)]
struct RowSet {
    /// Power-of-two array of `fingerprint << 32 | row id` slots; the id
    /// half is [`EMPTY`] or [`TOMB`] for vacant slots.
    slots: Vec<u64>,
    mask: usize,
    /// Occupied (live row) slots.
    live: usize,
    /// Tombstoned slots (deleted rows); reclaimed on grow.
    tombs: usize,
}

impl RowSet {
    /// First slot of the probe sequence for hash `h`.
    #[inline]
    fn start(&self, h: u64) -> usize {
        (h as usize) & self.mask
    }

    /// Packs a row id with its hash's fingerprint half.
    #[inline]
    fn entry(h: u64, id: u32) -> u64 {
        (h & FP_MASK) | id as u64
    }

    /// Grows (or initially sizes) the table to an explicit power-of-two
    /// capacity, re-inserting every live row id; `row_hash` is the
    /// relation's per-row hash column. A caller that knows how many
    /// inserts are coming jumps here once instead of paying a chain of
    /// doubling rehashes mid-drain ([`Relation::grow_for_insert`]).
    #[cold]
    fn grow_to(&mut self, cap: usize, row_hash: &[u64]) {
        let old = std::mem::replace(&mut self.slots, vec![EMPTY as u64; cap]);
        self.mask = cap - 1;
        self.tombs = 0;
        for slot in old {
            let id = slot as u32;
            if id == EMPTY || id == TOMB {
                continue;
            }
            let h = row_hash[id as usize];
            let mut s = self.start(h);
            while self.slots[s] as u32 != EMPTY {
                s = (s + 1) & self.mask;
            }
            self.slots[s] = RowSet::entry(h, id);
        }
    }

    /// True when an insert must [`RowSet::grow`] first: the table is
    /// unallocated, or live entries would exceed ½ capacity, or live
    /// plus tombstones would exceed ¾ (probe walks stay short).
    #[inline]
    fn needs_grow(&self) -> bool {
        let cap = self.slots.len();
        cap == 0 || 2 * (self.live + 1) > cap || 4 * (self.live + self.tombs + 1) > 3 * cap
    }

    /// Rebuilds the table from scratch for a relation whose rows
    /// `0..row_hash.len()` are all live (post-compaction state).
    fn rebuild(&mut self, row_hash: &[u64]) {
        let cap = (4 * (row_hash.len() + 1)).next_power_of_two();
        self.slots.clear();
        self.slots.resize(cap, EMPTY as u64);
        self.mask = cap - 1;
        self.live = row_hash.len();
        self.tombs = 0;
        for (id, &h) in row_hash.iter().enumerate() {
            let mut s = self.start(h);
            while self.slots[s] as u32 != EMPTY {
                s = (s + 1) & self.mask;
            }
            self.slots[s] = RowSet::entry(h, id as u32);
        }
    }
}

/// A purpose-built flat open-addressing map from key-tuple hashes to
/// dictionary codes: the [`RowSet`] slot discipline (packed
/// `fingerprint << 32 | code` words, linear probing from the hash's low
/// bits) applied to the dictionary side of the probe path. Compared to
/// the `PrehashedMap` it replaces, the slot array is a plain `Vec<u64>`
/// the caller can software-prefetch by hash ([`CodeMap::prefetch`]
/// mirrors [`Relation::prefetch_hash`]) — a std `HashMap` hides its
/// control bytes behind an opaque allocation, so the per-sort-group
/// random access behind [`ProbeHandle::encode`] could never be
/// overlapped. Dictionaries never delete, so there is no tombstone
/// state: every slot is either vacant or a live fingerprint|code pair,
/// and probe walks terminate at the first vacant slot.
///
/// The map does not store keys; lookups verify fingerprint matches
/// through a caller closure comparing the candidate code's key tuple,
/// and grows re-derive each entry's hash the same way. Full 64-bit hash
/// collisions are therefore handled by the probe walk itself: a
/// fingerprint match whose key comparison fails just keeps walking.
#[derive(Debug, Clone, Default)]
pub struct CodeMap {
    /// Power-of-two array of `fingerprint << 32 | code` slots; the code
    /// half is `u32::MAX` for vacant slots.
    slots: Vec<u64>,
    mask: usize,
    /// Occupied slots.
    len: usize,
}

impl CodeMap {
    /// First slot of the probe sequence for hash `h`.
    #[inline]
    fn start(&self, h: u64) -> usize {
        (h as usize) & self.mask
    }

    /// Packs a code with its key hash's fingerprint half.
    #[inline]
    fn entry(h: u64, code: u32) -> u64 {
        (h & FP_MASK) | code as u64
    }

    /// Number of stored codes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no code is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The code filed under `hash` whose key the caller confirms via
    /// `eq` (called with a candidate code, almost always once), or
    /// `None`. `eq` must compare the candidate's key tuple against the
    /// probe key — fingerprints are 32 bits, so a match is necessary but
    /// not sufficient.
    #[inline]
    pub fn get(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let fp = hash & FP_MASK;
        let mut s = self.start(hash);
        loop {
            let slot = self.slots[s];
            let code = slot as u32;
            if code == EMPTY {
                return None;
            }
            if slot & FP_MASK == fp && eq(code) {
                return Some(code);
            }
            s = (s + 1) & self.mask;
        }
    }

    /// Files `code` under `hash`. The caller must have verified absence
    /// (via [`CodeMap::get`]) first — the map holds one entry per
    /// distinct key. `key_hash` re-derives the hash of an existing code
    /// when the insert forces a grow.
    pub fn insert(&mut self, hash: u64, code: u32, key_hash: impl Fn(u32) -> u64) {
        debug_assert_ne!(code, EMPTY, "code u32::MAX is the vacant-slot marker");
        let cap = self.slots.len();
        if cap == 0 || 2 * (self.len + 1) > cap {
            self.grow(&key_hash);
        }
        let mut s = self.start(hash);
        while self.slots[s] as u32 != EMPTY {
            s = (s + 1) & self.mask;
        }
        self.slots[s] = CodeMap::entry(hash, code);
        self.len += 1;
    }

    /// Grows (or initially sizes) the slot array so one more insert
    /// keeps the load factor at most ½, re-filing every code under the
    /// hash `key_hash` derives for it.
    #[cold]
    fn grow(&mut self, key_hash: &impl Fn(u32) -> u64) {
        let cap = (4 * (self.len + 1)).next_power_of_two();
        let old = std::mem::replace(&mut self.slots, vec![EMPTY as u64; cap]);
        self.mask = cap - 1;
        for slot in old {
            let code = slot as u32;
            if code == EMPTY {
                continue;
            }
            let h = key_hash(code);
            let mut s = self.start(h);
            while self.slots[s] as u32 != EMPTY {
                s = (s + 1) & self.mask;
            }
            self.slots[s] = CodeMap::entry(h, code);
        }
    }

    /// Drops every entry but keeps the slot allocation, for memo
    /// invalidation: the next fill cycle reuses the array.
    pub fn clear(&mut self) {
        self.slots.fill(EMPTY as u64);
        self.len = 0;
    }

    /// Prefetches the slot-array cache line `hash` will probe first, so
    /// a caller resolving a batch of keys can overlap the map's cold
    /// misses instead of stalling on each in turn. Purely a hint; no-op
    /// off x86-64.
    #[inline]
    pub fn prefetch(&self, hash: u64) {
        #[cfg(target_arch = "x86_64")]
        if !self.slots.is_empty() {
            // SAFETY: `start` is masked into bounds; prefetch reads no
            // memory architecturally.
            unsafe {
                core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                    self.slots.as_ptr().add(self.start(hash)) as *const i8,
                );
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = hash;
    }

    /// Resident bytes of the slot array.
    pub fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<u64>()
    }
}

/// A dictionary index on a column subset: every distinct key tuple gets a
/// dense `u32` *code*, rows are grouped per code, and each physical row
/// carries its code in a dense column (`row_codes`) — the relation's
/// dictionary-encoded key view. Probing resolves a key to its code once
/// (one hash lookup plus a key comparison per same-hash code) and then
/// iterates the exact row group — no per-row key comparisons, unlike the
/// former hash-bucket index whose buckets mixed hash collisions.
///
/// Stored boxed in the index cache so that a [`ProbeHandle`] can point at
/// it directly: cache-map rehashes move the box pointer, never the index.
#[derive(Debug)]
struct ColumnIndex {
    cols: Vec<usize>,
    /// Key-tuple hash → code, a prefetchable flat [`CodeMap`]. Lookups
    /// verify candidates against `keys`, and same-hash codes simply
    /// occupy adjacent probe slots — no chain storage.
    map: CodeMap,
    /// Flat store of the distinct key tuples, `cols.len()` stride; code
    /// `c`'s tuple is at `c * cols.len()`.
    keys: Vec<Value>,
    /// Row ids per code, in insertion order. Tombstoned and out-of-range
    /// rows are filtered lazily at iteration time.
    groups: Vec<Vec<u32>>,
    /// Dense per-row key code, parallel to the relation's physical rows:
    /// the `u32` column view batch kernels sort-group on.
    row_codes: Vec<u32>,
    /// Rows `[0, built)` have been dictionary-encoded.
    built: usize,
}

impl ColumnIndex {
    /// The key tuple code `c` encodes.
    #[inline]
    fn key_of(&self, c: u32) -> &[Value] {
        let w = self.cols.len();
        let at = c as usize * w;
        &self.keys[at..at + w]
    }

    /// The code of `key` (whose hash is `key_hash`), or `None` if no row
    /// ever carried it.
    #[inline]
    fn encode(&self, key_hash: u64, key: &[Value]) -> Option<u32> {
        self.map.get(key_hash, |c| self.key_of(c) == key)
    }

    /// The code of `key`, minting a fresh one on first sight.
    fn encode_or_insert(&mut self, key_hash: u64, key: &[Value]) -> u32 {
        if let Some(c) = self.encode(key_hash, key) {
            return c;
        }
        let c = self.groups.len() as u32;
        self.keys.extend_from_slice(key);
        self.groups.push(Vec::new());
        let w = self.cols.len();
        let keys = &self.keys;
        self.map.insert(key_hash, c, |code| {
            hash_slice(&keys[code as usize * w..(code as usize + 1) * w])
        });
        c
    }
}

/// A generation-checked raw handle to a current column index, acquired
/// once per task (one read-lock acquisition) and then probed lock-free:
/// [`ProbeHandle::encode`] resolves a probe key to its dictionary code
/// and [`ProbeHandle::group`] returns the borrowed row-id group for a
/// code. Group rows match the key exactly; the caller only filters range
/// and tombstones lazily at iteration time ([`Relation::row_visible`]).
/// This is the evaluator's zero-allocation probe path: no per-probe
/// lock, no per-probe `Vec`, no per-row key comparison.
///
/// # Validity
/// The handle is valid only while the relation and the index are not
/// mutated: no row inserts/deletes/compaction, and no index extension.
/// The evaluator guarantees this per round — relations are immutable
/// while tasks run, new rows commit only between rounds, and
/// `ensure_index` on an already-current index does not touch group
/// storage. [`ProbeHandle::generation`] records the row count at
/// acquisition so callers can `debug_assert` currency before use.
#[derive(Clone, Copy, Debug)]
pub struct ProbeHandle {
    idx: *const ColumnIndex,
    built: usize,
}

impl ProbeHandle {
    /// Physical row count the index covered when the handle was taken.
    pub fn generation(&self) -> usize {
        self.built
    }

    /// The dictionary code of `key` (whose precomputed hash is
    /// `key_hash`), or `None` when no row ever carried this key — the
    /// probe can produce no rows.
    ///
    /// # Safety
    /// The relation and index must not have been mutated since
    /// [`Relation::probe_handle`] returned this handle (see type docs).
    #[inline]
    pub unsafe fn encode(&self, key_hash: u64, key: &[Value]) -> Option<u32> {
        // SAFETY: caller guarantees the index (and the cache map slot
        // holding its box) outlives and is not mutated during this call.
        unsafe { &*self.idx }.encode(key_hash, key)
    }

    /// Prefetches the dictionary-map cache line `key_hash` will probe
    /// first, so a batch caller can overlap the per-group random access
    /// [`ProbeHandle::encode`] would otherwise stall on. Purely a hint.
    ///
    /// # Safety
    /// Same contract as [`ProbeHandle::encode`].
    #[inline]
    pub unsafe fn prefetch_key(&self, key_hash: u64) {
        // SAFETY: as in `encode`.
        unsafe { &*self.idx }.map.prefetch(key_hash);
    }

    /// The key tuple a dictionary code encodes, for callers verifying a
    /// memoized key→code pair against the live dictionary.
    ///
    /// # Safety
    /// Same contract as [`ProbeHandle::encode`]; `code` must have come
    /// from this index's [`ProbeHandle::encode`] (codes are dense, so
    /// any out-of-range code panics on the slice).
    #[inline]
    pub unsafe fn code_key(&self, code: u32) -> &[Value] {
        // SAFETY: as in `encode`.
        unsafe { &*self.idx }.key_of(code)
    }

    /// The row-id group of a dictionary code. Every group row's key
    /// columns equal the code's key tuple; callers still filter range
    /// and tombstones ([`Relation::row_visible`]).
    ///
    /// # Safety
    /// Same contract as [`ProbeHandle::encode`].
    #[inline]
    pub unsafe fn group(&self, code: u32) -> &[u32] {
        // SAFETY: as in `encode`.
        &unsafe { &*self.idx }.groups[code as usize]
    }
}

/// A summary of one dictionary index's key-group shape, read by the
/// cost planner's statistics collector ([`Relation::key_distribution`]).
/// All counts are over *physical* rows (tombstones included), so every
/// number is an upper bound on the live distribution — the direction
/// size-bound estimation needs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KeyDistribution {
    /// Distinct key tuples ever inserted under the indexed columns.
    pub distinct: usize,
    /// Physical rows in the largest key group (the worst-case probe
    /// fanout).
    pub max_group: usize,
    /// Total physical rows indexed (sum of group sizes).
    pub rows: usize,
    /// log2 histogram of group sizes: bucket `i` counts groups of size
    /// in `[2^i, 2^(i+1))`; the last bucket absorbs everything larger.
    pub histogram: [usize; 16],
}

impl KeyDistribution {
    /// Mean rows per distinct key (the average probe fanout), 0 when the
    /// index is empty.
    pub fn mean_fanout(&self) -> f64 {
        if self.distinct == 0 {
            0.0
        } else {
            self.rows as f64 / self.distinct as f64
        }
    }
}

/// An append-only relation of fixed arity with set semantics over flat
/// columnar storage.
///
/// The lazy index cache sits behind a `std::sync::RwLock`, so `&Relation`
/// can be shared across threads during a (read-only) evaluation round —
/// see [`crate::eval::Evaluator::with_parallelism`]. Call
/// [`Relation::ensure_index`] before a parallel phase so the workers only
/// ever take the shared read lock.
#[derive(Debug)]
pub struct Relation {
    arity: usize,
    /// Flat row storage, `nrows * arity` values.
    data: Vec<Value>,
    nrows: usize,
    /// Membership table over live rows (set semantics): flat
    /// open-addressing row-id slots, probed from the row-content hash.
    set: RowSet,
    /// Per physical row: its content hash, parallel to the flat store.
    /// Lets table probes verify candidates — and the table grow — without
    /// rehashing row values.
    row_hash: Vec<u64>,
    /// Tombstone bitset over physical rows, one bit per row, lazily
    /// allocated on first delete. Empty ⇔ no row was ever deleted since
    /// the last compaction.
    dead: Vec<u64>,
    /// Number of set bits in `dead`.
    ndead: usize,
    /// Learned fraction of derived rows that survive dedup, an EWMA over
    /// drain rounds (see [`Relation::reserve_for_derived`]). Starts at
    /// 1.0 — assume everything is new until a round proves otherwise —
    /// so the first reservation can only over-size, never under-size.
    uniq_ewma: f64,
    /// Dedup-table rehashes forced mid-insert after the table was first
    /// sized — the stall [`Relation::reserve_for_derived`] exists to
    /// eliminate (surfaced as `Stats::dedup_regrows`).
    regrows: u64,
    /// Pending reservation: the slot capacity [`Relation::reserve_rows`]
    /// computed, consumed by the next grow-triggering insert (0 = none).
    /// Deferring the jump to the natural ½-load trigger keeps the rehash
    /// on the lazy schedule — the table is warm from the very probes
    /// that tripped the trigger — while still replacing a chain of
    /// doublings with one sized jump.
    reserve_hint: usize,
    /// Monotonic mutation counter: bumped by every call that changes the
    /// live tuple set (insert, delete, truncate, compact, bulk commit).
    /// Unlike [`Relation::physical_rows`] — which a truncate-then-insert
    /// sequence can return to its old value — two observations of an
    /// equal generation guarantee the relation content is unchanged, so
    /// generation stamps are what the kernel memos and the serving
    /// layer's copy-on-write snapshots key change detection on.
    generation: u64,
    /// Snapshot publication mark: `(epoch, row watermark)` recorded by
    /// [`Relation::publish_epoch`]. Rows below the watermark are the
    /// immutable per-epoch view readers iterate via
    /// [`Relation::snapshot_rows`]; `None` means never published (the
    /// snapshot view is then the full live relation).
    published: Option<(u64, u32)>,
    indexes: RwLock<FxHashMap<Vec<usize>, Box<ColumnIndex>>>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            data: Vec::new(),
            nrows: 0,
            set: RowSet::default(),
            row_hash: Vec::new(),
            dead: Vec::new(),
            ndead: 0,
            uniq_ewma: 1.0,
            regrows: 0,
            reserve_hint: 0,
            generation: 0,
            published: None,
            indexes: RwLock::new(FxHashMap::default()),
        }
    }

    /// The monotonic mutation counter: strictly increases on every
    /// content change and never repeats, so callers caching work derived
    /// from this relation (kernel key→code memos, published snapshots)
    /// can compare generations to detect *any* intervening mutation —
    /// including truncate-then-reinsert sequences that leave
    /// [`Relation::physical_rows`] unchanged.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Marks the current contents as the published snapshot for `epoch`:
    /// records the epoch id and the current physical row watermark.
    /// Under the serving layer's copy-on-write discipline the published
    /// relation object is never mutated again, so rows below the
    /// watermark form an immutable row-range view concurrent readers
    /// iterate without coordination ([`Relation::snapshot_rows`]).
    pub fn publish_epoch(&mut self, epoch: u64) {
        self.published = Some((epoch, self.nrows as u32));
    }

    /// The epoch this relation was published at, or `None` if
    /// [`Relation::publish_epoch`] was never called on it.
    pub fn published_epoch(&self) -> Option<u64> {
        self.published.map(|(e, _)| e)
    }

    /// The published row-range snapshot: physical rows below the
    /// watermark recorded by the last [`Relation::publish_epoch`], or
    /// the full row range if never published. Iterate it with
    /// [`Relation::iter_range`]; tombstones are filtered there as usual.
    pub fn snapshot_rows(&self) -> RowRange {
        match self.published {
            Some((_, end)) => RowRange { start: 0, end },
            None => self.all_rows(),
        }
    }

    /// Live tuples of the published snapshot, sorted, for deterministic
    /// comparisons against a serial replay at the same epoch.
    pub fn snapshot_sorted_tuples(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self
            .iter_range(self.snapshot_rows())
            .map(|(_, row)| row.to_vec())
            .collect();
        v.sort();
        v
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of live (distinct) tuples.
    pub fn len(&self) -> usize {
        self.nrows - self.ndead
    }

    /// True if the relation holds no live tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of physical rows in the flat store, including tombstoned
    /// ones. Row-range views are expressed over physical ids, so marks
    /// and watermarks must use this, not [`Relation::len`]. Equal to
    /// `len()` whenever the relation is compacted.
    pub fn physical_rows(&self) -> usize {
        self.nrows
    }

    /// True if some rows are tombstoned (delete since last compaction).
    pub fn has_tombstones(&self) -> bool {
        self.ndead != 0
    }

    /// True if physical row `r` is tombstoned.
    #[inline]
    pub fn is_dead(&self, r: u32) -> bool {
        self.ndead != 0
            && self
                .dead
                .get(r as usize / 64)
                .is_some_and(|w| w & (1u64 << (r as usize % 64)) != 0)
    }

    /// The full (physical) row range.
    pub fn all_rows(&self) -> RowRange {
        RowRange {
            start: 0,
            end: self.nrows as u32,
        }
    }

    /// Inserts a tuple; returns `true` if it was new. Accepts any slice of
    /// values (owned `Tuple`s and flat-store row slices alike) and copies
    /// it into the flat buffer — the caller keeps ownership.
    ///
    /// # Panics
    /// Panics if the tuple arity does not match the relation arity.
    pub fn insert(&mut self, t: impl AsRef<[Value]>) -> bool {
        let t = t.as_ref();
        self.insert_hashed(t, hash_slice(t))
    }

    /// [`Relation::insert`] with the row-content hash already computed
    /// (the fixpoint loop hashes each derived tuple once, at derivation
    /// time, and reuses the hash for shard routing and insertion).
    pub fn insert_hashed(&mut self, t: &[Value], h: u64) -> bool {
        assert_eq!(t.len(), self.arity, "tuple arity mismatch");
        debug_assert_eq!(h, hash_slice(t), "stale row hash");
        if self.set.needs_grow() {
            self.grow_for_insert();
        }
        let arity = self.arity;
        let mut s = self.set.start(h);
        let mut free = usize::MAX;
        loop {
            let slot = self.set.slots[s];
            let id = slot as u32;
            if id == EMPTY {
                break;
            }
            if id == TOMB {
                if free == usize::MAX {
                    free = s;
                }
            } else if slot & FP_MASK == h & FP_MASK
                && &self.data[id as usize * arity..(id as usize + 1) * arity] == t
            {
                return false;
            }
            s = (s + 1) & self.set.mask;
        }
        if free != usize::MAX {
            s = free;
            self.set.tombs -= 1;
        }
        self.set.slots[s] = RowSet::entry(h, self.nrows as u32);
        self.set.live += 1;
        self.row_hash.push(h);
        self.data.extend_from_slice(t);
        self.nrows += 1;
        self.generation += 1;
        true
    }

    /// Prefetches the membership-table cache line a row hash will probe
    /// first, so a caller holding a batch of pending rows can overlap
    /// the table's cold misses instead of paying them serially inside
    /// [`Relation::insert_hashed`]. Purely a hint; no-op off x86-64.
    #[inline]
    pub fn prefetch_hash(&self, h: u64) {
        #[cfg(target_arch = "x86_64")]
        if !self.set.slots.is_empty() {
            // SAFETY: `start` is masked into bounds; prefetch reads no
            // memory architecturally.
            unsafe {
                core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                    self.set.slots.as_ptr().add(self.set.start(h)) as *const i8,
                );
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = h;
    }

    /// The precomputed content hash of row `r` (the one every insert
    /// path stores at derivation time). Callers re-emitting a stored
    /// row verbatim can reuse it instead of rehashing.
    #[inline]
    pub fn row_hash_at(&self, r: u32) -> u64 {
        self.row_hash[r as usize]
    }

    /// Prefetches the flat-store cache line holding row `r`'s values,
    /// for callers about to walk a batch of scattered row ids. Purely a
    /// hint; no-op off x86-64.
    #[inline]
    pub fn prefetch_row(&self, r: u32) {
        #[cfg(target_arch = "x86_64")]
        {
            let i = r as usize * self.arity;
            if i < self.data.len() {
                // SAFETY: `i` is in bounds; prefetch reads no memory
                // architecturally.
                unsafe {
                    core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                        self.data.as_ptr().add(i) as *const i8,
                    );
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = r;
    }

    /// Membership test.
    pub fn contains(&self, t: &[Value]) -> bool {
        self.contains_hashed(t, hash_slice(t))
    }

    /// [`Relation::contains`] with the row hash already computed. Takes
    /// `&self` only and touches nothing but the (round-immutable) dedup
    /// table, so shard-merge workers can safely call it concurrently
    /// while the control thread is blocked on the merge phase.
    pub fn contains_hashed(&self, t: &[Value], h: u64) -> bool {
        if t.len() != self.arity {
            return false;
        }
        debug_assert_eq!(h, hash_slice(t), "stale row hash");
        self.hash_matches(h).any(|r| self.row(r) == t)
    }

    /// Iterates the live rows whose hash *fingerprint* matches `h`, by
    /// walking the membership table's probe sequence for `h` until an
    /// empty slot. Candidates are almost always content-equal but every
    /// caller still verifies by row comparison (fingerprints are 32
    /// bits).
    #[inline]
    fn hash_matches(&self, h: u64) -> impl Iterator<Item = u32> + '_ {
        let mut s = self.set.start(h);
        let done = self.set.slots.is_empty();
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            loop {
                let slot = self.set.slots[s];
                let id = slot as u32;
                if id == EMPTY {
                    return None;
                }
                s = (s + 1) & self.set.mask;
                if id != TOMB && slot & FP_MASK == h & FP_MASK {
                    return Some(id);
                }
            }
        })
    }

    /// Deletes a tuple by tombstoning its physical row; returns `true`
    /// if the tuple was present (and live). The flat store keeps the
    /// row's bytes — only the dedup entry goes away and the dead bit is
    /// set — so earlier row ids held by callers stay valid. A later
    /// [`Relation::insert`] of an equal tuple appends a *fresh* physical
    /// row; set semantics hold over live rows throughout.
    pub fn delete(&mut self, t: &[Value]) -> bool {
        self.delete_hashed(t, hash_slice(t))
    }

    /// [`Relation::delete`] with the row-content hash already computed.
    pub fn delete_hashed(&mut self, t: &[Value], h: u64) -> bool {
        if t.len() != self.arity {
            return false;
        }
        debug_assert_eq!(h, hash_slice(t), "stale row hash");
        let Some(r) = self.unlink_row(h, |_, row| row == t) else {
            return false;
        };
        let r = r as usize;
        if self.dead.len() * 64 < self.nrows {
            self.dead.resize(self.nrows.div_ceil(64), 0);
        }
        self.dead[r / 64] |= 1u64 << (r % 64);
        self.ndead += 1;
        self.generation += 1;
        true
    }

    /// Removes the live row under hash `h` satisfying `is_target` from
    /// the membership table (tombstoning its slot), returning its id.
    fn unlink_row(&mut self, h: u64, is_target: impl Fn(u32, &[Value]) -> bool) -> Option<u32> {
        if self.set.slots.is_empty() {
            return None;
        }
        let mut s = self.set.start(h);
        loop {
            let slot = self.set.slots[s];
            let id = slot as u32;
            if id == EMPTY {
                return None;
            }
            if id != TOMB && slot & FP_MASK == h & FP_MASK && is_target(id, self.row(id)) {
                self.set.slots[s] = TOMB as u64;
                self.set.live -= 1;
                self.set.tombs += 1;
                return Some(id);
            }
            s = (s + 1) & self.set.mask;
        }
    }

    /// Removes every row with physical id `keep` and above, exactly
    /// undoing a run of appends: the rows' dedup entries are unhashed,
    /// the flat store and tombstone bitset are truncated, and the column
    /// indexes are dropped (they may cache the removed ids). This is the
    /// incremental layer's cheap rollback — O(rows removed), not
    /// O(relation) — for transactions that only appended.
    pub fn truncate(&mut self, keep: usize) {
        if keep >= self.nrows {
            return;
        }
        // Already-tombstoned rows are not in the table and simply are
        // not found; live removed rows get their slot tombstoned.
        for r in keep..self.nrows {
            self.unlink_row(self.row_hash[r], |id, _| id == r as u32);
        }
        self.row_hash.truncate(keep);
        self.data.truncate(keep * self.arity);
        self.nrows = keep;
        self.dead.truncate(keep.div_ceil(64));
        if !keep.is_multiple_of(64) {
            if let Some(last) = self.dead.last_mut() {
                *last &= (1u64 << (keep % 64)) - 1;
            }
        }
        self.ndead = self.dead.iter().map(|w| w.count_ones() as usize).sum();
        self.generation += 1;
        self.indexes.write().expect("index lock poisoned").clear();
    }

    /// Rebuilds the flat store without tombstoned rows, renumbering the
    /// surviving rows in order and rebuilding the dedup map. Column
    /// indexes are dropped (they cache stale row ids) and rebuilt lazily
    /// on the next probe. No-op when there are no tombstones.
    pub fn compact(&mut self) {
        if self.ndead == 0 {
            return;
        }
        let live = self.nrows - self.ndead;
        let mut data = Vec::with_capacity(live * self.arity);
        let mut row_hash = Vec::with_capacity(live);
        for r in 0..self.nrows as u32 {
            if self.is_dead(r) {
                continue;
            }
            data.extend_from_slice(self.row(r));
            row_hash.push(self.row_hash[r as usize]);
        }
        self.nrows = live;
        self.data = data;
        self.row_hash = row_hash;
        self.set.rebuild(&self.row_hash);
        self.dead.clear();
        self.ndead = 0;
        self.generation += 1;
        self.indexes.write().expect("index lock poisoned").clear();
    }

    /// Bulk-appends a pre-deduplicated segment of new rows: `data` holds
    /// `hashes.len()` rows in flat layout and `hashes[i]` is the content
    /// hash of row `i`. This is the control thread's shard-concat path:
    /// the merge phase already guaranteed every row is absent from the
    /// relation and the rows are pairwise distinct, so committing is one
    /// `memcpy` plus a dedup-slot insert per row — no hashing, no
    /// comparisons.
    ///
    /// Returns the number of rows appended.
    ///
    /// # Panics
    /// Panics if `data` is not `hashes.len() * arity` values long. With
    /// debug assertions, also panics if a row was already present (a
    /// violated merge-phase contract would silently corrupt set
    /// semantics otherwise).
    pub fn commit_new_rows(&mut self, data: &[Value], hashes: &[u64]) -> usize {
        assert_eq!(
            data.len(),
            hashes.len() * self.arity,
            "segment length does not match hash count × arity"
        );
        // The segment is pre-deduplicated, so its exact row count is
        // known: size the table once up front instead of doubling
        // mid-append.
        self.reserve_rows(hashes.len());
        for (i, &h) in hashes.iter().enumerate() {
            let row = &data[i * self.arity..(i + 1) * self.arity];
            debug_assert!(
                !self.contains_hashed(row, h),
                "commit_new_rows given a duplicate row"
            );
            if self.set.needs_grow() {
                self.grow_for_insert();
            }
            let mut s = self.set.start(h);
            while !matches!(self.set.slots[s] as u32, EMPTY | TOMB) {
                s = (s + 1) & self.set.mask;
            }
            if self.set.slots[s] as u32 == TOMB {
                self.set.tombs -= 1;
            }
            self.set.slots[s] = RowSet::entry(h, self.nrows as u32);
            self.set.live += 1;
            self.row_hash.push(h);
            self.data.extend_from_slice(row);
            self.nrows += 1;
        }
        self.generation += hashes.len() as u64;
        hashes.len()
    }

    /// Reserves dedup-table capacity for `extra` more live rows: records
    /// the smallest power-of-two capacity whose ½-load grow trigger
    /// `live + extra` stays under, to be consumed by the next
    /// grow-triggering insert ([`Relation::grow_for_insert`]). The
    /// reservation is *deferred*, not executed here: rehashing eagerly
    /// would scan a cache-cold table between rounds, while the natural
    /// trigger fires mid-insert when the table is warm from the very
    /// probes that tripped it. The target stays on the lazy doubling
    /// schedule — pre-sizing must not inflate the table beyond it, or
    /// every insert probe pays the cache footprint of a map twice as
    /// large.
    pub fn reserve_rows(&mut self, extra: usize) {
        let cap = (2 * (self.set.live + extra + 1)).next_power_of_two();
        let cur = self.set.slots.len();
        // Also arm when tombstones alone would trip the ¾ live+tombs
        // trigger during the run (the jump reclaims them).
        if cap > cur || 4 * (self.set.live + self.set.tombs + extra + 1) > 3 * cur {
            self.reserve_hint = self.reserve_hint.max(cap.max(cur));
        }
    }

    /// Grows the dedup table for one more insert: a pending reservation
    /// jumps straight to its recorded capacity (not a regrow — this is
    /// the reservation executing); an unreserved or reservation-exceeding
    /// grow is the mid-insert stall `Stats::dedup_regrows` surfaces.
    #[cold]
    fn grow_for_insert(&mut self) {
        let natural = (4 * (self.set.live + 1)).next_power_of_two();
        self.regrows += (self.reserve_hint == 0 && !self.set.slots.is_empty()) as u64;
        let target = natural.max(self.reserve_hint);
        self.reserve_hint = 0;
        self.set.grow_to(target, &self.row_hash);
    }

    /// Pre-sizes the dedup table for a drain of `derived` rows *before
    /// dedup*, scaled by the unique-fraction EWMA learned from earlier
    /// rounds — the fix for the duplicate-inflation overshoot of sizing
    /// by raw derived counts: a fanout round deriving 10× duplicates
    /// would otherwise allocate a table 10× too big every round. The
    /// reservation doubles the expectation (capped at `derived`, the
    /// true upper bound), so the no-regrow guarantee survives a ~2×
    /// under-estimate while steady-state capacity stays on the lazy
    /// doubling schedule — the headroom rides on the round's expected
    /// inserts, not on the whole live set.
    pub fn reserve_for_derived(&mut self, derived: usize) {
        let expect = (derived as f64 * self.uniq_ewma).ceil() as usize;
        self.reserve_rows((2 * expect).min(derived));
    }

    /// Folds a finished drain round's observed unique fraction
    /// (`inserted` of `derived` rows survived dedup) into the EWMA
    /// consulted by [`Relation::reserve_for_derived`].
    pub fn note_drain(&mut self, derived: usize, inserted: usize) {
        if derived == 0 {
            return;
        }
        let frac = (inserted as f64 / derived as f64).clamp(0.05, 1.0);
        self.uniq_ewma = 0.7 * self.uniq_ewma + 0.3 * frac;
    }

    /// Number of mid-insert dedup-table rehashes since creation. A
    /// correctly pre-sized drain keeps this flat across rounds
    /// (`Stats::dedup_regrows` samples it before/after each drain).
    pub fn regrows(&self) -> u64 {
        self.regrows
    }

    /// The tuple at `row`, as a slice into the flat store.
    pub fn row(&self, row: u32) -> &[Value] {
        let r = row as usize;
        &self.data[r * self.arity..(r + 1) * self.arity]
    }

    /// Iterates over all live tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> {
        (0..self.nrows as u32)
            .filter(move |&r| !self.is_dead(r))
            .map(move |r| self.row(r))
    }

    /// Iterates over the live tuples of a row range.
    pub fn iter_range(&self, range: RowRange) -> impl Iterator<Item = (u32, &[Value])> {
        (range.start..range.end.min(self.nrows as u32))
            .filter(move |&r| !self.is_dead(r))
            .map(move |r| (r, self.row(r)))
    }

    /// Row ids within `range` whose columns `cols` equal `key`, using (and
    /// if necessary extending) the hash index on `cols`. Convenience
    /// wrapper over [`Relation::probe_into`]; the evaluator's hot path
    /// uses [`Relation::probe_handle`] + [`ProbeHandle::encode`] /
    /// [`ProbeHandle::group`] instead to avoid the per-probe allocation.
    ///
    /// Probing with an empty `cols` is an error — use [`Relation::iter_range`].
    pub fn probe(&self, cols: &[usize], key: &[Value], range: RowRange) -> Vec<u32> {
        let mut out = Vec::new();
        self.probe_into(cols, key, range, &mut out);
        out
    }

    /// [`Relation::probe`] writing the hits into a caller-owned buffer
    /// (cleared first), so repeat probes reuse one allocation. On an
    /// index miss the build-then-probe happens under a single write-lock
    /// acquisition — no drop-read/take-write/re-take-read dance.
    pub fn probe_into(&self, cols: &[usize], key: &[Value], range: RowRange, out: &mut Vec<u32>) {
        debug_assert!(!cols.is_empty(), "probe with no bound columns");
        debug_assert_eq!(cols.len(), key.len());
        out.clear();
        // Fast path: the index exists and is current — shared read lock.
        {
            let indexes = self.indexes.read().expect("index lock poisoned");
            if let Some(idx) = indexes.get(cols) {
                if idx.built == self.nrows {
                    self.index_hits_into(idx, key, range, out);
                    return;
                }
            }
        }
        // Miss: build (or extend) and probe under one write acquisition.
        let mut indexes = self.indexes.write().expect("index lock poisoned");
        let idx = Self::entry_index(&mut indexes, cols);
        self.extend_index(idx);
        self.index_hits_into(idx, key, range, out);
    }

    fn index_hits_into(
        &self,
        idx: &ColumnIndex,
        key: &[Value],
        range: RowRange,
        out: &mut Vec<u32>,
    ) {
        if let Some(code) = idx.encode(hash_slice(key), key) {
            out.extend(
                idx.groups[code as usize]
                    .iter()
                    .copied()
                    .filter(|&r| self.row_visible(r, range)),
            );
        }
    }

    /// The lazy per-candidate filter for dictionary-group iteration:
    /// group rows already match the probe key exactly, so a candidate is
    /// a real hit iff it lies in `range` and is live. Used by
    /// [`ProbeHandle`] consumers iterating borrowed groups.
    #[inline]
    pub fn row_visible(&self, r: u32, range: RowRange) -> bool {
        range.contains(r) && !self.is_dead(r)
    }

    /// The eager form of the per-candidate filter, retained for callers
    /// (and tests) that still hold raw key values: `r` is a hit iff it
    /// is visible and its `cols` columns equal `key`.
    #[inline]
    pub fn probe_hit(&self, r: u32, cols: &[usize], key: &[Value], range: RowRange) -> bool {
        self.row_visible(r, range) && {
            let row = self.row(r);
            cols.iter().zip(key).all(|(&c, k)| row[c] == *k)
        }
    }

    fn entry_index<'a>(
        indexes: &'a mut FxHashMap<Vec<usize>, Box<ColumnIndex>>,
        cols: &[usize],
    ) -> &'a mut ColumnIndex {
        indexes.entry(cols.to_vec()).or_insert_with(|| {
            Box::new(ColumnIndex {
                cols: cols.to_vec(),
                map: CodeMap::default(),
                keys: Vec::new(),
                groups: Vec::new(),
                row_codes: Vec::new(),
                built: 0,
            })
        })
    }

    fn extend_index(&self, idx: &mut ColumnIndex) {
        let mut key: Vec<Value> = Vec::with_capacity(idx.cols.len());
        for r in idx.built..self.nrows {
            let row = &self.data[r * self.arity..(r + 1) * self.arity];
            key.clear();
            key.extend(idx.cols.iter().map(|&c| row[c]));
            let code = idx.encode_or_insert(hash_slice(&key), &key);
            idx.groups[code as usize].push(r as u32);
            idx.row_codes.push(code);
        }
        idx.built = self.nrows;
    }

    /// Builds (or extends) the hash index on `cols` so that subsequent
    /// probes only take the shared read lock. Called automatically by
    /// [`Relation::probe_into`]; call it eagerly before sharing the
    /// relation across threads or taking a [`ProbeHandle`].
    pub fn ensure_index(&self, cols: &[usize]) {
        let mut indexes = self.indexes.write().expect("index lock poisoned");
        let idx = Self::entry_index(&mut indexes, cols);
        self.extend_index(idx);
    }

    /// A raw borrowed handle to the current index on `cols`, or `None`
    /// if the index is missing or stale (call [`Relation::ensure_index`]
    /// and retry). One shared-lock acquisition; see [`ProbeHandle`] for
    /// the validity contract.
    pub fn probe_handle(&self, cols: &[usize]) -> Option<ProbeHandle> {
        let indexes = self.indexes.read().expect("index lock poisoned");
        let idx = indexes.get(cols)?;
        if idx.built != self.nrows {
            return None;
        }
        Some(ProbeHandle {
            idx: &**idx as *const ColumnIndex,
            built: idx.built,
        })
    }

    /// Reads the key-group distribution of the dictionary index on
    /// `cols`, building or extending the index first (so on an
    /// already-indexed relation this is one pass over the group
    /// headers, no row data touched). This is the cost planner's
    /// statistics source: `distinct` bounds join selectivity from
    /// below, `max_group`/the histogram bound per-probe fanout from
    /// above. Groups count *physical* rows — tombstoned rows inflate
    /// the totals until [`Relation::compact`] — which keeps the numbers
    /// valid as upper bounds, the direction the size-bound estimator
    /// needs.
    pub fn key_distribution(&self, cols: &[usize]) -> KeyDistribution {
        let mut indexes = self.indexes.write().expect("index lock poisoned");
        let idx = Self::entry_index(&mut indexes, cols);
        self.extend_index(idx);
        let mut d = KeyDistribution {
            distinct: idx.groups.len(),
            ..KeyDistribution::default()
        };
        for g in &idx.groups {
            let n = g.len();
            d.rows += n;
            d.max_group = d.max_group.max(n);
            if n > 0 {
                let bucket = (usize::BITS - 1 - n.leading_zeros()) as usize;
                d.histogram[bucket.min(d.histogram.len() - 1)] += 1;
            }
        }
        d
    }

    /// The min/max integer value ever inserted in column `col`, read off
    /// the single-column dictionary index's distinct-key store (one pass
    /// over `distinct` keys, not rows). `None` if the column holds no
    /// integer values. Like [`Relation::key_distribution`], deleted
    /// values stay in the dictionary until compaction, so the range is
    /// an over-approximation — sound for bounding.
    pub fn column_int_range(&self, col: usize) -> Option<(i64, i64)> {
        let mut indexes = self.indexes.write().expect("index lock poisoned");
        let idx = Self::entry_index(&mut indexes, &[col]);
        self.extend_index(idx);
        let mut range: Option<(i64, i64)> = None;
        for v in &idx.keys {
            if let Value::Int(i) = v {
                range = Some(match range {
                    Some((lo, hi)) => (lo.min(*i), hi.max(*i)),
                    None => (*i, *i),
                });
            }
        }
        range
    }

    /// Row ids within `range` exactly equal to `key` (all columns bound).
    /// Fast path over the dedup table when the range covers everything.
    pub fn probe_all_columns(&self, key: &[Value], range: RowRange) -> Vec<u32> {
        if range.start == 0 && range.end as usize >= self.nrows {
            return if self.contains(key) {
                vec![u32::MAX] // sentinel row id; only existence matters
            } else {
                Vec::new()
            };
        }
        // Partial range: the membership table already maps content
        // hash → row ids.
        self.hash_matches(hash_slice(key))
            .filter(|&r| range.contains(r) && self.row(r) == key)
            .collect()
    }

    /// Existence test for an exact tuple within a row range, walking the
    /// dedup table's fingerprint-matching slots directly — the
    /// allocation-free form of [`Relation::probe_all_columns`] used by
    /// negation steps. The table holds only live rows, so no tombstone
    /// check is needed.
    pub fn contains_in_range(&self, key: &[Value], h: u64, range: RowRange) -> bool {
        if key.len() != self.arity {
            return false;
        }
        debug_assert_eq!(h, hash_slice(key), "stale key hash");
        if range.start == 0 && range.end as usize >= self.nrows {
            return self.contains_hashed(key, h);
        }
        self.hash_matches(h)
            .any(|r| range.contains(r) && self.row(r) == key)
    }

    /// All tuples, sorted, for deterministic comparisons in tests.
    pub fn sorted_tuples(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.iter().map(<[Value]>::to_vec).collect();
        v.sort();
        v
    }

    /// Estimated resident bytes of this relation: the flat store's
    /// capacity, the dedup table's slot array and row-hash column, the
    /// tombstone bitset, and every dictionary index's maps, key store,
    /// row groups and dense code column. Indexes are derived caches, but
    /// under the dictionary-encoded probe path they are also the bulk of
    /// steady-state residency beyond the rows themselves, so the
    /// evaluator's `max_resident_bytes` budget counts them — a byte
    /// limit that ignored them would under-report real footprint by the
    /// size of every probed key column. An estimate, not an allocator
    /// census.
    pub fn estimated_bytes(&self) -> u64 {
        let data = self.data.capacity() * std::mem::size_of::<Value>();
        // The membership table's packed fingerprint|id slots plus the
        // per-row hash column.
        let dedup = self.set.slots.capacity() * std::mem::size_of::<u64>()
            + self.row_hash.capacity() * std::mem::size_of::<u64>();
        let tombstones = self.dead.capacity() * std::mem::size_of::<u64>();
        let mut indexes = 0usize;
        for idx in self.indexes.read().expect("index lock poisoned").values() {
            // The flat hash → code slot array.
            indexes += idx.map.heap_bytes();
            // Distinct-key store, per-code group headers and their row
            // ids, and the dense per-row code column.
            indexes += idx.keys.capacity() * std::mem::size_of::<Value>()
                + idx.groups.capacity() * std::mem::size_of::<Vec<u32>>()
                + idx
                    .groups
                    .iter()
                    .map(|g| g.capacity() * std::mem::size_of::<u32>())
                    .sum::<usize>()
                + idx.row_codes.capacity() * std::mem::size_of::<u32>();
        }
        (data + dedup + tombstones + indexes) as u64
    }

    /// Verifies the relation's structural invariants, returning a
    /// description of the first violation: flat storage and the per-row
    /// hash column sized exactly to `nrows`, every membership-table slot
    /// pointing at an in-bounds *live* row filed under its own hash,
    /// exactly one slot per live row, no two live rows with equal
    /// content, every live row findable by probing from its hash, and
    /// the tombstone population count matching the bitset. Budget,
    /// cancel, and panic exits must leave every committed relation
    /// passing this check — `tests/governance.rs` asserts it after
    /// every forced abort.
    pub fn check_invariant(&self) -> Result<(), String> {
        if self.data.len() != self.nrows * self.arity {
            return Err(format!(
                "flat store holds {} values, want {} rows × {} arity",
                self.data.len(),
                self.nrows,
                self.arity
            ));
        }
        let popcount: usize = self
            .dead
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum::<usize>();
        if popcount != self.ndead {
            return Err(format!(
                "tombstone bitset holds {popcount} bits for ndead = {}",
                self.ndead
            ));
        }
        if self.ndead > self.nrows {
            return Err(format!(
                "more tombstones ({}) than rows ({})",
                self.ndead, self.nrows
            ));
        }
        if self.row_hash.len() != self.nrows {
            return Err(format!(
                "hash column holds {} hashes for {} rows",
                self.row_hash.len(),
                self.nrows
            ));
        }
        for r in 0..self.nrows as u32 {
            if self.row_hash[r as usize] != hash_slice(self.row(r)) {
                return Err(format!("row {r} carries a stale content hash"));
            }
        }
        let mut seen = vec![false; self.nrows];
        let mut entries = 0usize;
        let mut tombs = 0usize;
        for &slot in &self.set.slots {
            let id = slot as u32;
            if id == EMPTY {
                continue;
            }
            if id == TOMB {
                tombs += 1;
                continue;
            }
            if id as usize >= self.nrows {
                return Err(format!("table entry {id} out of bounds ({})", self.nrows));
            }
            if self.is_dead(id) {
                return Err(format!("table entry {id} points at a tombstoned row"));
            }
            if slot & FP_MASK != self.row_hash[id as usize] & FP_MASK {
                return Err(format!("table entry {id} carries a stale fingerprint"));
            }
            if seen[id as usize] {
                return Err(format!("row {id} occupies two table slots"));
            }
            seen[id as usize] = true;
            entries += 1;
        }
        if entries != self.nrows - self.ndead {
            return Err(format!(
                "membership table holds {entries} entries for {} live rows",
                self.nrows - self.ndead
            ));
        }
        if entries != self.set.live || tombs != self.set.tombs {
            return Err(format!(
                "table load counters drifted: {entries}/{tombs} counted, {}/{} recorded",
                self.set.live, self.set.tombs
            ));
        }
        for r in 0..self.nrows as u32 {
            if self.is_dead(r) {
                continue;
            }
            let row = self.row(r);
            let found: Vec<u32> = self
                .hash_matches(self.row_hash[r as usize])
                .filter(|&q| self.row(q) == row)
                .collect();
            if found != [r] {
                return Err(format!(
                    "probing for row {r} found {found:?} — a duplicate or a broken probe chain"
                ));
            }
        }
        Ok(())
    }
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        Relation {
            arity: self.arity,
            data: self.data.clone(),
            nrows: self.nrows,
            set: self.set.clone(),
            row_hash: self.row_hash.clone(),
            dead: self.dead.clone(),
            ndead: self.ndead,
            uniq_ewma: self.uniq_ewma,
            regrows: self.regrows,
            reserve_hint: self.reserve_hint,
            // The clone starts content-identical, so it inherits the
            // generation: a snapshot publisher comparing a clone's
            // generation against the original must see "unchanged".
            generation: self.generation,
            published: self.published,
            indexes: RwLock::new(FxHashMap::default()),
        }
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity
            && self.len() == other.len()
            && self.iter().all(|row| other.contains(row))
    }
}

impl Eq for Relation {}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn insert_dedups() {
        let mut r = Relation::new(2);
        assert!(r.insert(t(&[1, 2])));
        assert!(!r.insert(t(&[1, 2])));
        assert!(r.insert(t(&[1, 3])));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&t(&[1, 2])));
        assert!(!r.contains(&t(&[9, 9])));
    }

    #[test]
    fn flat_storage_layout_is_contiguous() {
        let mut r = Relation::new(3);
        r.insert(t(&[1, 2, 3]));
        r.insert(t(&[4, 5, 6]));
        assert_eq!(r.row(0), &t(&[1, 2, 3])[..]);
        assert_eq!(r.row(1), &t(&[4, 5, 6])[..]);
        // Appending does not disturb earlier row slices' contents.
        r.insert(t(&[7, 8, 9]));
        assert_eq!(r.row(0), &t(&[1, 2, 3])[..]);
        assert_eq!(r.row(2), &t(&[7, 8, 9])[..]);
    }

    #[test]
    fn insert_accepts_borrowed_row_slices() {
        let mut a = Relation::new(2);
        a.insert(t(&[1, 2]));
        let row: Tuple = a.row(0).to_vec();
        let mut b = Relation::new(2);
        assert!(b.insert(&row[..]));
        assert!(b.contains(&row));
    }

    #[test]
    fn probe_uses_and_extends_index() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[1, 3]));
        r.insert(t(&[2, 3]));
        let hits = r.probe(&[0], &[Value::Int(1)], r.all_rows());
        assert_eq!(hits, vec![0, 1]);
        // Appending after an index exists must extend it.
        r.insert(t(&[1, 9]));
        let hits = r.probe(&[0], &[Value::Int(1)], r.all_rows());
        assert_eq!(hits, vec![0, 1, 3]);
    }

    #[test]
    fn probe_respects_row_range() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[1, 3]));
        r.insert(t(&[1, 4]));
        let delta = RowRange { start: 2, end: 3 };
        let hits = r.probe(&[0], &[Value::Int(1)], delta);
        assert_eq!(hits, vec![2]);
    }

    #[test]
    fn multi_column_probe() {
        let mut r = Relation::new(3);
        r.insert(t(&[1, 2, 3]));
        r.insert(t(&[1, 2, 4]));
        r.insert(t(&[1, 5, 3]));
        let hits = r.probe(&[0, 1], &[Value::Int(1), Value::Int(2)], r.all_rows());
        assert_eq!(hits.len(), 2);
        let hits = r.probe(&[2], &[Value::Int(3)], r.all_rows());
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn probe_all_columns_partial_range() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[3, 4]));
        r.insert(t(&[5, 6]));
        let delta = RowRange { start: 1, end: 3 };
        assert_eq!(r.probe_all_columns(&t(&[3, 4]), delta), vec![1]);
        assert!(r.probe_all_columns(&t(&[1, 2]), delta).is_empty());
        // Full range uses the existence fast path.
        assert!(!r.probe_all_columns(&t(&[1, 2]), r.all_rows()).is_empty());
    }

    #[test]
    fn iter_range_views() {
        let mut r = Relation::new(1);
        r.insert(t(&[1]));
        r.insert(t(&[2]));
        r.insert(t(&[3]));
        let old = RowRange { start: 0, end: 2 };
        assert_eq!(r.iter_range(old).count(), 2);
        let delta = RowRange { start: 2, end: 3 };
        let vals: Vec<_> = r.iter_range(delta).map(|(_, t)| t[0]).collect();
        assert_eq!(vals, vec![Value::Int(3)]);
    }

    #[test]
    fn row_range_split_covers_exactly() {
        let range = RowRange { start: 3, end: 100 };
        for n in [1usize, 2, 3, 7, 64, 200] {
            let parts = range.split(n);
            assert!(parts.len() <= n.max(1));
            assert_eq!(parts[0].start, 3);
            assert_eq!(parts.last().unwrap().end, 100);
            for w in parts.windows(2) {
                assert_eq!(w[0].end, w[1].start, "chunks must tile");
            }
            assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), range.len());
        }
        assert!(RowRange { start: 5, end: 5 }.split(4).is_empty());
    }

    #[test]
    fn row_range_intersect() {
        let a = RowRange { start: 0, end: 10 };
        let b = RowRange { start: 6, end: 20 };
        assert_eq!(a.intersect(b), RowRange { start: 6, end: 10 });
        let c = RowRange { start: 12, end: 14 };
        assert!(a.intersect(c).is_empty());
    }

    #[test]
    fn equality_is_set_semantics() {
        let mut a = Relation::new(2);
        let mut b = Relation::new(2);
        a.insert(t(&[1, 2]));
        a.insert(t(&[3, 4]));
        b.insert(t(&[3, 4]));
        b.insert(t(&[1, 2]));
        assert_eq!(a, b); // insertion order does not matter
        b.insert(t(&[5, 6]));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(t(&[1]));
    }

    #[test]
    fn delete_tombstones_and_membership() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[3, 4]));
        r.insert(t(&[5, 6]));
        assert!(r.delete(&t(&[3, 4])));
        assert!(!r.delete(&t(&[3, 4])), "double delete must be a no-op");
        assert!(!r.delete(&t(&[9, 9])), "deleting an absent row is false");
        assert_eq!(r.len(), 2);
        assert_eq!(r.physical_rows(), 3);
        assert!(r.has_tombstones());
        assert!(!r.contains(&t(&[3, 4])));
        assert!(r.contains(&t(&[1, 2])));
        assert!(r.contains(&t(&[5, 6])));
        let live: Vec<Tuple> = r.iter().map(<[Value]>::to_vec).collect();
        assert_eq!(live, vec![t(&[1, 2]), t(&[5, 6])]);
        r.check_invariant().unwrap();
    }

    #[test]
    fn truncate_undoes_appends_and_probes_stay_consistent() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[3, 4]));
        // Warm an index, then append past the watermark.
        assert_eq!(r.probe(&[0], &[Value::Int(1)], r.all_rows()).len(), 1);
        let mark = r.physical_rows();
        r.insert(t(&[5, 6]));
        r.insert(t(&[7, 8]));
        r.truncate(mark);
        assert_eq!(r.len(), 2);
        assert_eq!(r.physical_rows(), 2);
        assert!(!r.contains(&t(&[5, 6])));
        assert!(r.contains(&t(&[1, 2])));
        r.check_invariant().unwrap();
        // The removed tuple can be re-inserted as a fresh row and probed.
        assert!(r.insert(t(&[5, 6])));
        assert_eq!(r.probe(&[0], &[Value::Int(5)], r.all_rows()).len(), 1);
        assert_eq!(r.sorted_tuples(), vec![t(&[1, 2]), t(&[3, 4]), t(&[5, 6])]);
        r.check_invariant().unwrap();
        // Truncating to the current size (or past it) is a no-op.
        r.truncate(r.physical_rows());
        assert_eq!(r.len(), 3);
        r.check_invariant().unwrap();
    }

    #[test]
    fn truncate_with_tombstones_below_keep_preserves_them() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[3, 4]));
        assert!(r.delete(&t(&[1, 2])));
        let mark = r.physical_rows();
        r.insert(t(&[5, 6]));
        r.truncate(mark);
        assert_eq!(r.len(), 1);
        assert_eq!(r.physical_rows(), 2);
        assert!(r.has_tombstones());
        assert_eq!(r.sorted_tuples(), vec![t(&[3, 4])]);
        r.check_invariant().unwrap();
    }

    #[test]
    fn insert_after_delete_of_equal_row_does_not_duplicate() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[3, 4]));
        assert!(r.delete(&t(&[1, 2])));
        // Re-inserting the equal row appends a fresh physical row; the
        // old one stays dead, so the live set holds exactly one copy.
        assert!(r.insert(t(&[1, 2])), "row was deleted, reinsert is new");
        assert!(!r.insert(t(&[1, 2])), "second reinsert must dedup");
        assert_eq!(r.len(), 2);
        assert_eq!(r.physical_rows(), 3);
        assert_eq!(r.sorted_tuples(), vec![t(&[1, 2]), t(&[3, 4])]);
        r.check_invariant().unwrap();
        // Compaction reclaims the tombstone and keeps the same live set.
        r.compact();
        assert_eq!(r.len(), 2);
        assert_eq!(r.physical_rows(), 2);
        assert!(!r.has_tombstones());
        assert_eq!(r.sorted_tuples(), vec![t(&[1, 2]), t(&[3, 4])]);
        r.check_invariant().unwrap();
    }

    #[test]
    fn probes_skip_tombstoned_rows() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[1, 3]));
        r.insert(t(&[1, 4]));
        // Build the column index first, then delete: index_hits must
        // filter the dead row id even though the index still lists it.
        let hits = r.probe(&[0], &[Value::Int(1)], r.all_rows());
        assert_eq!(hits, vec![0, 1, 2]);
        assert!(r.delete(&t(&[1, 3])));
        let hits = r.probe(&[0], &[Value::Int(1)], r.all_rows());
        assert_eq!(hits, vec![0, 2]);
        // Dedup-backed exact probe also skips the dead row.
        let range = RowRange { start: 0, end: 2 };
        assert!(r.probe_all_columns(&t(&[1, 3]), range).is_empty());
        assert!(r.probe_all_columns(&t(&[1, 3]), r.all_rows()).is_empty());
        r.check_invariant().unwrap();
    }

    #[test]
    fn compact_after_deletes_keeps_dedup_and_index_consistent() {
        let mut r = Relation::new(2);
        for i in 0..100i64 {
            r.insert(t(&[i % 10, i]));
        }
        for i in (0..100i64).step_by(3) {
            assert!(r.delete(&t(&[i % 10, i])));
        }
        let before = r.sorted_tuples();
        r.check_invariant().unwrap();
        r.compact();
        r.check_invariant().unwrap();
        assert_eq!(r.sorted_tuples(), before);
        assert_eq!(r.physical_rows(), r.len());
        // Post-compaction probes rebuild the index over renumbered rows.
        for t_ in &before {
            assert!(r.contains(t_));
            assert!(!r.probe(&[0, 1], t_, r.all_rows()).is_empty());
        }
        assert!(!r.contains(&t(&[0, 0])));
        // Deleted rows must not resurface through any probe path.
        assert!(r.probe(&[1], &[Value::Int(0)], r.all_rows()).is_empty());
    }

    #[test]
    fn clone_carries_tombstones() {
        let mut r = Relation::new(1);
        r.insert(t(&[1]));
        r.insert(t(&[2]));
        r.delete(&t(&[1]));
        let c = r.clone();
        assert_eq!(c.len(), 1);
        assert!(!c.contains(&t(&[1])));
        assert_eq!(r, c);
        c.check_invariant().unwrap();
    }

    #[test]
    fn probe_into_reuses_buffer_and_matches_probe() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[1, 3]));
        r.insert(t(&[2, 3]));
        let mut buf = Vec::new();
        // First call hits the miss path (build + probe under one write
        // lock); the second reuses the warm index and the same buffer.
        r.probe_into(&[0], &[Value::Int(1)], r.all_rows(), &mut buf);
        assert_eq!(buf, vec![0, 1]);
        r.probe_into(&[0], &[Value::Int(2)], r.all_rows(), &mut buf);
        assert_eq!(buf, vec![2]);
        assert_eq!(buf, r.probe(&[0], &[Value::Int(2)], r.all_rows()));
    }

    #[test]
    fn probe_handle_groups_filter_lazily() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[1, 3]));
        r.insert(t(&[2, 3]));
        assert!(r.probe_handle(&[0]).is_none(), "no index built yet");
        r.ensure_index(&[0]);
        let h = r.probe_handle(&[0]).expect("index is current");
        assert_eq!(h.generation(), 3);
        let key = [Value::Int(1)];
        let code = unsafe { h.encode(hash_slice(&key), &key) }.expect("key was inserted");
        let group = unsafe { h.group(code) };
        let hits: Vec<u32> = group
            .iter()
            .copied()
            .filter(|&row| r.row_visible(row, r.all_rows()))
            .collect();
        assert_eq!(hits, vec![0, 1]);
        // Range and tombstone filtering happen at iteration time.
        let delta = RowRange { start: 1, end: 3 };
        let hits: Vec<u32> = group
            .iter()
            .copied()
            .filter(|&row| r.row_visible(row, delta))
            .collect();
        assert_eq!(hits, vec![1]);
        // A key no row ever carried has no code at all.
        let missing = [Value::Int(99)];
        assert_eq!(unsafe { h.encode(hash_slice(&missing), &missing) }, None);
        let _ = h;
        // Appending makes handles unavailable until re-ensured.
        r.insert(t(&[1, 9]));
        assert!(r.probe_handle(&[0]).is_none(), "index went stale");
        r.ensure_index(&[0]);
        assert!(r.probe_handle(&[0]).is_some());
    }

    #[test]
    fn contains_in_range_matches_probe_all_columns() {
        let mut r = Relation::new(2);
        r.insert(t(&[1, 2]));
        r.insert(t(&[3, 4]));
        r.insert(t(&[5, 6]));
        let delta = RowRange { start: 1, end: 3 };
        let h = |t_: &Tuple| crate::fxhash::hash_slice(t_);
        assert!(r.contains_in_range(&t(&[3, 4]), h(&t(&[3, 4])), delta));
        assert!(!r.contains_in_range(&t(&[1, 2]), h(&t(&[1, 2])), delta));
        assert!(r.contains_in_range(&t(&[1, 2]), h(&t(&[1, 2])), r.all_rows()));
        // Deleted rows never resurface.
        r.delete(&t(&[3, 4]));
        assert!(!r.contains_in_range(&t(&[3, 4]), h(&t(&[3, 4])), delta));
    }

    /// A deterministic but scattered per-code hash for driving CodeMap
    /// directly (the map never sees keys, only hashes + a verifier).
    fn code_hash(c: u32) -> u64 {
        (c as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(17)
    }

    #[test]
    fn codemap_grow_preserves_every_entry() {
        let mut m = CodeMap::default();
        for c in 0..5000u32 {
            assert_eq!(m.get(code_hash(c), |got| got == c), None);
            m.insert(code_hash(c), c, code_hash);
        }
        assert_eq!(m.len(), 5000);
        // Every code survives the doubling chain and resolves under its
        // own hash with the verifier confirming identity.
        for c in 0..5000u32 {
            assert_eq!(m.get(code_hash(c), |got| got == c), Some(c));
        }
        // A hash never inserted terminates at an empty slot.
        assert_eq!(m.get(code_hash(9999), |_| true), None);
    }

    #[test]
    fn codemap_fingerprint_collisions_resolved_by_verifier() {
        // Two codes filed under the *identical* 64-bit hash: same probe
        // start, same fingerprint. Only the eq closure separates them.
        let mut m = CodeMap::default();
        let h = 0xDEAD_BEEF_CAFE_F00Du64;
        m.insert(h, 1, |_| h);
        m.insert(h, 2, |_| h);
        assert_eq!(m.get(h, |c| c == 1), Some(1));
        assert_eq!(m.get(h, |c| c == 2), Some(2));
        assert_eq!(m.get(h, |c| c == 3), None, "verifier rejects all");
        // Same fingerprint, different probe start (low bits differ): the
        // walk from the other start must not see code 1 or 2.
        let h2 = h ^ 1;
        assert_eq!(m.get(h2, |_| true), None);
        m.insert(h2, 3, move |c| if c == 3 { h2 } else { h });
        assert_eq!(m.get(h2, |c| c == 3), Some(3));
    }

    #[test]
    fn codemap_is_tombstone_free_and_clear_retains_capacity() {
        let mut m = CodeMap::default();
        for c in 0..100u32 {
            m.insert(code_hash(c), c, code_hash);
        }
        // No delete API exists, so every slot is either vacant or a live
        // entry and the occupancy count is exact — the invariant that
        // keeps probe walks short without tombstone reclamation.
        let live = m.slots.iter().filter(|&&s| s as u32 != EMPTY).count();
        assert_eq!(live, m.len());
        assert!(2 * m.len() <= m.slots.len(), "load factor stays ≤ ½");
        let cap = m.heap_bytes();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.heap_bytes(), cap, "clear keeps the allocation");
        assert_eq!(m.get(code_hash(7), |_| true), None);
        m.insert(code_hash(7), 7, code_hash);
        assert_eq!(m.get(code_hash(7), |c| c == 7), Some(7));
    }

    #[test]
    fn reserve_rows_eliminates_mid_drain_regrows() {
        // Unreserved: a thousand inserts pay a chain of doubling grows.
        let mut cold = Relation::new(2);
        for i in 0..1000i64 {
            cold.insert(t(&[i, i + 1]));
        }
        assert!(cold.regrows() > 0, "unreserved inserts must have regrown");
        // Reserved up front: the same inserts never rehash.
        let mut warm = Relation::new(2);
        warm.reserve_rows(1000);
        for i in 0..1000i64 {
            warm.insert(t(&[i, i + 1]));
        }
        assert_eq!(warm.regrows(), 0, "pre-sized table must not regrow");
        assert_eq!(warm.len(), cold.len());
        warm.check_invariant().unwrap();
    }

    #[test]
    fn derived_reservation_follows_learned_unique_fraction() {
        let mut r = Relation::new(1);
        // Teach the EWMA that only ~10% of derived rows are new.
        for _ in 0..20 {
            r.note_drain(100, 10);
        }
        // A 2000-row derived burst then expects ~200 unique; the ¼-load
        // sizing tolerates up to ~2× that before any rehash.
        r.reserve_for_derived(2000);
        for i in 0..350i64 {
            r.insert(t(&[i]));
        }
        assert_eq!(r.regrows(), 0, "2x under-estimate must stay regrow-free");
        r.check_invariant().unwrap();
    }

    #[test]
    fn equality_ignores_tombstones() {
        let mut a = Relation::new(1);
        a.insert(t(&[1]));
        a.insert(t(&[2]));
        a.delete(&t(&[2]));
        let mut b = Relation::new(1);
        b.insert(t(&[1]));
        assert_eq!(a, b);
        a.compact();
        assert_eq!(a, b);
    }

    #[test]
    fn generation_advances_on_every_content_change() {
        let mut r = Relation::new(1);
        let g0 = r.generation();
        assert!(r.insert(t(&[1])));
        let g1 = r.generation();
        assert!(g1 > g0, "insert must bump the generation");
        // A duplicate insert changes nothing and must not bump.
        assert!(!r.insert(t(&[1])));
        assert_eq!(r.generation(), g1);
        assert!(r.delete(&t(&[1])));
        let g2 = r.generation();
        assert!(g2 > g1, "delete must bump the generation");
        // A miss delete changes nothing.
        assert!(!r.delete(&t(&[9])));
        assert_eq!(r.generation(), g2);
        r.compact();
        assert!(r.generation() > g2, "compact must bump the generation");
    }

    #[test]
    fn generation_distinguishes_truncate_reinsert_from_no_op() {
        // `physical_rows` alone cannot tell these states apart — the
        // whole reason the counter exists (kernel memos, COW snapshots).
        let mut r = Relation::new(1);
        r.insert(t(&[1]));
        r.insert(t(&[2]));
        let rows = r.physical_rows();
        let gen = r.generation();
        r.truncate(1);
        r.insert(t(&[3]));
        assert_eq!(r.physical_rows(), rows, "row count returned to old value");
        assert!(r.generation() > gen, "generation must not");
    }

    #[test]
    fn truncate_noop_keeps_generation() {
        let mut r = Relation::new(1);
        r.insert(t(&[1]));
        let gen = r.generation();
        r.truncate(5); // keep >= nrows: nothing to undo
        assert_eq!(r.generation(), gen);
        r.compact(); // no tombstones: no-op
        assert_eq!(r.generation(), gen);
    }

    #[test]
    fn publish_epoch_freezes_a_row_range_view() {
        let mut r = Relation::new(1);
        r.insert(t(&[1]));
        r.insert(t(&[2]));
        assert_eq!(r.published_epoch(), None);
        assert_eq!(r.snapshot_rows(), r.all_rows());
        r.publish_epoch(7);
        assert_eq!(r.published_epoch(), Some(7));
        // Later appends land above the published watermark: the
        // snapshot view still shows exactly the two published rows.
        r.insert(t(&[3]));
        assert_eq!(r.snapshot_rows(), RowRange { start: 0, end: 2 });
        assert_eq!(r.snapshot_sorted_tuples(), vec![t(&[1]), t(&[2])]);
        assert_eq!(r.sorted_tuples(), vec![t(&[1]), t(&[2]), t(&[3])]);
    }

    #[test]
    fn clone_preserves_generation_and_publication() {
        let mut r = Relation::new(1);
        r.insert(t(&[1]));
        r.publish_epoch(3);
        let c = r.clone();
        assert_eq!(c.generation(), r.generation());
        assert_eq!(c.published_epoch(), Some(3));
        assert_eq!(c.snapshot_rows(), r.snapshot_rows());
    }
}
