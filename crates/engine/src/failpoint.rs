//! Deterministic fault injection for robustness tests.
//!
//! Compiled only under `--features failpoints`; without the feature the
//! module does not exist and every call site compiles to nothing, so
//! production builds pay zero cost. With the feature, named failpoints
//! embedded in the engine (and, via the `semrec-core/failpoints`
//! feature, the optimizer) consult a global schedule on every hit and
//! can panic, delay, or return an error — letting tests drive the
//! engine through worker panics, mid-round slowdowns, and I/O failures
//! on a reproducible, seed-derived schedule (the test harness draws
//! schedules from `semrec_gen::rng::Rng`, the workspace SplitMix64).
//!
//! ## Sites
//!
//! | name             | where                                   | `Err` action means |
//! |------------------|------------------------------------------|--------------------|
//! | `pool.join`      | inside every parallel join task          | panics (job has no error channel) |
//! | `pool.merge`     | inside every per-shard merge job         | panics (ditto) |
//! | `eval.round`     | start of every fixpoint round            | `EngineError::Io` |
//! | `optimizer.push` | before the optimizer's push stage        | analysis error |
//! | `io.load`        | per CSV file in [`crate::io::load_file`] | `EngineError::Io` |
//! | `incr.delete`    | before the DRed over-deletion pass of an incremental update | `EngineError::Io` |
//! | `incr.icheck`    | before the delta IC re-check of an incremental update | `EngineError::Io` |
//! | `serve.accept`   | per accepted server connection (`semrec-serve`) | connection refused, daemon lives |
//! | `serve.reader`   | at the start of every admitted read query  | typed I/O error to that client |
//! | `wal.append`     | before a WAL record write                  | commit rejected, log truncated back |
//! | `wal.fsync`      | before the WAL fsync-on-commit             | commit rejected, log truncated back |
//! | `snapshot.publish` | before an epoch snapshot is published    | commit durable+applied, publish deferred |
//!
//! A schedule entry is one-shot: after firing it disarms, so a single
//! armed fault injects exactly one failure per evaluation regardless of
//! how many times the site is hit.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

/// What an armed failpoint does when its scheduled hit arrives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailAction {
    /// Panic at the site (`panic!`). At pool sites this exercises the
    /// worker panic-recovery path; elsewhere it tests callers'
    /// `catch_unwind` recovery.
    Panic,
    /// Sleep this many milliseconds, then continue normally. Used to
    /// push evaluations over tight deadlines mid-round.
    DelayMs(u64),
    /// Return an injected error from the site (see the site table for
    /// how each site surfaces it).
    Err,
}

#[derive(Clone, Copy, Debug)]
struct Site {
    action: FailAction,
    /// Fires when the site's 0-based hit counter equals this.
    fire_at: u64,
    hits: u64,
    armed: bool,
}

fn registry() -> &'static Mutex<HashMap<&'static str, Site>> {
    static REGISTRY: std::sync::OnceLock<Mutex<HashMap<&'static str, Site>>> =
        std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The failpoint names the engine and optimizer embed.
pub const SITES: [&str; 12] = [
    "pool.join",
    "pool.merge",
    "eval.round",
    "optimizer.push",
    "io.load",
    "incr.delete",
    "incr.icheck",
    "serve.accept",
    "serve.reader",
    "wal.append",
    "wal.fsync",
    "snapshot.publish",
];

fn intern(site: &str) -> Option<&'static str> {
    SITES.iter().copied().find(|s| *s == site)
}

/// Arms `site` to perform `action` on its `fire_at`-th hit (0-based),
/// replacing any previous schedule for the site and resetting its hit
/// counter.
///
/// # Panics
/// Panics on an unknown site name — a typo'd schedule would otherwise
/// silently test nothing.
pub fn arm(site: &str, fire_at: u64, action: FailAction) {
    let site = intern(site).unwrap_or_else(|| panic!("unknown failpoint `{site}`"));
    registry().lock().unwrap_or_else(|e| e.into_inner()).insert(
        site,
        Site {
            action,
            fire_at,
            hits: 0,
            armed: true,
        },
    );
}

/// Disarms every site and resets all hit counters. Call between test
/// cases; schedules are global process state.
pub fn clear() {
    registry().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// A failpoint call site. Returns `Err` with a description when the
/// site's armed `FailAction::Err` fires; panics when `Panic` fires;
/// sleeps and returns `Ok` when `DelayMs` fires; returns `Ok`
/// otherwise.
pub fn hit(site: &str) -> Result<(), String> {
    let fired = {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        match reg.get_mut(site) {
            None => return Ok(()),
            Some(s) => {
                let n = s.hits;
                s.hits += 1;
                if s.armed && n == s.fire_at {
                    s.armed = false;
                    Some(s.action)
                } else {
                    None
                }
            }
        }
    };
    match fired {
        None => Ok(()),
        Some(FailAction::Panic) => panic!("injected panic at failpoint `{site}`"),
        Some(FailAction::DelayMs(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(())
        }
        Some(FailAction::Err) => Err(format!("injected error at failpoint `{site}`")),
    }
}

/// [`hit`] for sites that have no error channel (pool jobs): an armed
/// `Err` action panics instead, which the pool surfaces as
/// [`EngineError::WorkerPanicked`](crate::error::EngineError).
pub fn hit_or_panic(site: &str) {
    if let Err(msg) = hit(site) {
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Failpoint schedules are process-global; tests in this module
    // serialize on the lock and fully clear state behind themselves.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn unarmed_site_is_silent() {
        let _g = serial();
        clear();
        assert_eq!(hit("eval.round"), Ok(()));
    }

    #[test]
    fn err_fires_once_on_scheduled_hit() {
        let _g = serial();
        clear();
        arm("io.load", 2, FailAction::Err);
        assert!(hit("io.load").is_ok()); // hit 0
        assert!(hit("io.load").is_ok()); // hit 1
        assert!(hit("io.load").is_err()); // hit 2 fires
        assert!(hit("io.load").is_ok()); // one-shot: disarmed
        clear();
    }

    #[test]
    fn panic_action_panics() {
        let _g = serial();
        clear();
        arm("pool.join", 0, FailAction::Panic);
        let r = std::panic::catch_unwind(|| hit_or_panic("pool.join"));
        clear();
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "unknown failpoint")]
    fn unknown_site_is_rejected() {
        arm("no.such.site", 0, FailAction::Err);
    }
}
